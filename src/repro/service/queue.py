"""The daemon's bounded admission queue.

Overload policy is *explicit refusal*, never unbounded buffering: when
the queue (or one tenant's share of it) is full, :meth:`offer` refuses
immediately and the caller answers ``RETRY_AFTER`` — the client knows
within one round-trip, instead of a request silently aging in an
ever-growing backlog.  The per-tenant share cap is the fairness half
of the same policy: one noisy tenant flooding requests fills only its
own share, so other tenants keep being admitted.

Workers drain the queue in small same-options batches
(:meth:`take_batch`) so the batch engine's canonicalize-then-dedup
front-end sees whole groups of concurrent requests at once — identical
instances submitted together are solved once.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable

#: offer() outcomes.
ADMITTED = "ok"
REJECT_FULL = "full"
REJECT_TENANT = "tenant"
REJECT_DRAINING = "draining"


@dataclass
class QueueStats:
    admitted: int = 0
    rejected_full: int = 0
    rejected_tenant: int = 0
    rejected_draining: int = 0
    peak_depth: int = 0
    batches: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "admitted": self.admitted,
            "rejected_full": self.rejected_full,
            "rejected_tenant": self.rejected_tenant,
            "rejected_draining": self.rejected_draining,
            "peak_depth": self.peak_depth,
            "batches": self.batches,
        }


@dataclass
class _Item:
    value: Any
    tenant: str = ""

    # deque of _Item; dataclass keeps repr useful in diagnostics
    __hash__ = None  # type: ignore[assignment]


class BoundedRequestQueue:
    """A depth-bounded FIFO with per-tenant admission fairness.

    ``tenant_share`` caps any single tenant's pending requests at
    ``max(1, int(depth * tenant_share))`` — full isolation would be
    per-tenant queues, but a share cap gives the property that matters
    (no tenant can occupy the whole queue) without reserving capacity
    idle tenants never use.
    """

    def __init__(self, depth: int, tenant_share: float = 0.5):
        if depth < 1:
            raise ValueError(f"queue depth must be >= 1, got {depth}")
        if not 0.0 < tenant_share <= 1.0:
            raise ValueError(
                f"tenant_share must be in (0, 1], got {tenant_share}"
            )
        self.depth = depth
        self.tenant_cap = max(1, int(depth * tenant_share))
        self.stats = QueueStats()
        self._items: deque[_Item] = deque()
        self._per_tenant: dict[str, int] = {}
        self._cond = threading.Condition()
        self._draining = False

    def __len__(self) -> int:
        with self._cond:
            return len(self._items)

    @property
    def draining(self) -> bool:
        with self._cond:
            return self._draining

    # ------------------------------------------------------------------
    def offer(self, value: Any, tenant: str = "") -> str:
        """Admit ``value`` or refuse *now*; returns one of
        :data:`ADMITTED` / :data:`REJECT_FULL` / :data:`REJECT_TENANT` /
        :data:`REJECT_DRAINING` — never blocks, never buffers beyond
        the bound."""
        with self._cond:
            if self._draining:
                self.stats.rejected_draining += 1
                return REJECT_DRAINING
            if len(self._items) >= self.depth:
                self.stats.rejected_full += 1
                return REJECT_FULL
            if self._per_tenant.get(tenant, 0) >= self.tenant_cap:
                self.stats.rejected_tenant += 1
                return REJECT_TENANT
            self._items.append(_Item(value, tenant))
            self._per_tenant[tenant] = self._per_tenant.get(tenant, 0) + 1
            self.stats.admitted += 1
            self.stats.peak_depth = max(
                self.stats.peak_depth, len(self._items)
            )
            self._cond.notify()
            return ADMITTED

    def _pop(self, idx: int = 0) -> Any:
        item = self._items[idx]
        del self._items[idx]
        n = self._per_tenant.get(item.tenant, 1) - 1
        if n <= 0:
            self._per_tenant.pop(item.tenant, None)
        else:
            self._per_tenant[item.tenant] = n
        return item.value

    def take(self, timeout: float | None = None) -> Any | None:
        """Block up to ``timeout`` for one item; ``None`` on timeout or
        drain."""
        with self._cond:
            if not self._items:
                self._cond.wait(timeout)
            if not self._items:
                return None
            return self._pop()

    def take_batch(
        self,
        max_n: int,
        timeout: float | None = None,
        same: Callable[[Any], Any] | None = None,
    ) -> list[Any]:
        """Take up to ``max_n`` items in one gulp.

        With ``same``, only items whose ``same(value)`` equals the
        first item's key join the batch (the worker pool batches
        same-tenant/same-options requests so one ``verify_many`` call
        can dedup across them); others stay queued in order.
        """
        with self._cond:
            if not self._items:
                self._cond.wait(timeout)
            if not self._items:
                return []
            out = [self._pop()]
            key = same(out[0]) if same is not None else None
            i = 0
            while len(out) < max_n and i < len(self._items):
                if same is None or same(self._items[i].value) == key:
                    out.append(self._pop(i))
                else:
                    i += 1
            self.stats.batches += 1
            return out

    # ------------------------------------------------------------------
    def drain(self) -> list[Any]:
        """Stop admitting and empty the queue; returns the evicted
        items (the server answers each with UNKNOWN(shutdown))."""
        with self._cond:
            self._draining = True
            out = [item.value for item in self._items]
            self._items.clear()
            self._per_tenant.clear()
            self._cond.notify_all()
            return out

    def wake_all(self) -> None:
        """Wake blocked takers (worker shutdown)."""
        with self._cond:
            self._cond.notify_all()
