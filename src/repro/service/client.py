"""A small blocking client for the service protocol.

Used by the CLI quickstart, the differential soak tests, the CI
service job and the benchmark — anything that needs to talk to a
``repro serve`` daemon without hand-rolling socket framing.  Responses
may arrive out of request order (workers answer as they finish), so
:meth:`ServiceClient.request` matches on ``id`` and buffers strays.
"""

from __future__ import annotations

import base64
import json
import socket
import time
from typing import Any

from repro.core.serialize_bin import dumps_bin
from repro.service.protocol import DEFAULT_TENANT, decode_response


class ServiceClient:
    """One connection to a daemon's Unix socket."""

    def __init__(self, socket_path: str, timeout: float = 30.0):
        self.sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self.sock.settimeout(timeout)
        self.sock.connect(socket_path)
        self._buf = b""
        self._stash: dict[Any, dict[str, Any]] = {}
        self._seq = 0

    # ------------------------------------------------------------------
    def send(self, payload: dict[str, Any]) -> Any:
        """Fire one request line; returns its id (assigning one if
        absent)."""
        if "id" not in payload:
            self._seq += 1
            payload = {"id": f"c{self._seq}", **payload}
        self.sock.sendall((json.dumps(payload) + "\n").encode("utf-8"))
        return payload["id"]

    def recv(self) -> dict[str, Any]:
        """The next response line, whoever it answers."""
        while True:
            nl = self._buf.find(b"\n")
            if nl >= 0:
                line = self._buf[:nl]
                self._buf = self._buf[nl + 1:]
                return decode_response(line)
            data = self.sock.recv(1 << 16)
            if not data:
                raise ConnectionError(
                    "connection closed before a response arrived"
                )
            self._buf += data

    def recv_for(self, req_id: Any) -> dict[str, Any]:
        """The response for ``req_id``; other responses are stashed."""
        if req_id in self._stash:
            return self._stash.pop(req_id)
        while True:
            resp = self.recv()
            if resp.get("id") == req_id:
                return resp
            self._stash[resp.get("id")] = resp

    def request(self, payload: dict[str, Any]) -> dict[str, Any]:
        return self.recv_for(self.send(payload))

    # ------------------------------------------------------------------
    def verify(
        self,
        execution: Any = None,
        trace_bytes: bytes | None = None,
        tenant: str = DEFAULT_TENANT,
        certify: str | None = None,
        deadline_s: float | None = None,
        req_id: Any = None,
        retries: int = 0,
        retry_wait_s: float | None = None,
    ) -> dict[str, Any]:
        """Verify one execution (or raw trace bytes in any offline
        format).  ``retries`` > 0 honors ``retry_after`` backpressure
        by waiting and resubmitting — the client half of the overload
        contract."""
        payload = self.verify_payload(
            execution, trace_bytes, tenant=tenant, certify=certify,
            deadline_s=deadline_s, req_id=req_id,
        )
        while True:
            resp = self.request(dict(payload))
            if resp.get("status") != "retry_after" or retries <= 0:
                return resp
            retries -= 1
            time.sleep(
                retry_wait_s
                if retry_wait_s is not None
                else float(resp.get("retry_after_s", 0.1))
            )

    @staticmethod
    def verify_payload(
        execution: Any = None,
        trace_bytes: bytes | None = None,
        tenant: str = DEFAULT_TENANT,
        certify: str | None = None,
        deadline_s: float | None = None,
        req_id: Any = None,
    ) -> dict[str, Any]:
        if trace_bytes is None:
            if execution is None:
                raise ValueError("need an execution or trace_bytes")
            trace_bytes = dumps_bin(execution)
        payload: dict[str, Any] = {
            "op": "verify",
            "trace_b64": base64.b64encode(trace_bytes).decode("ascii"),
            "tenant": tenant,
        }
        if req_id is not None:
            payload["id"] = req_id
        if certify is not None:
            payload["certify"] = certify
        if deadline_s is not None:
            payload["deadline_s"] = deadline_s
        return payload

    def ping(self) -> dict[str, Any]:
        return self.request({"op": "ping"})

    def stats(self) -> dict[str, Any]:
        return self.request({"op": "stats"})

    def drain(self) -> dict[str, Any]:
        return self.request({"op": "drain"})

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:
            pass

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()
