"""The service's line-framed wire protocol.

``repro serve`` speaks a local, HTTP-free protocol over a Unix socket
or a stdin/stdout pipe.  A connection carries one of three request
framings, sniffed from the first bytes exactly like the offline
decoders sniff trace files:

**NDJSON** (first byte ``{``)
    One JSON object per ``\\n``-terminated line; many requests per
    connection, responses matched by ``id`` (they may arrive out of
    request order — workers answer as they finish).  Fields:

    * ``id`` — any JSON scalar, echoed verbatim in the response;
    * ``op`` — ``verify`` (default), ``ping``, ``stats`` or ``drain``;
    * ``trace_b64`` — base64 trace bytes in *any* offline format
      (REPROSTM / REPROBIN / JSON / text — the shared sniffing decoder
      runs server-side), or ``trace`` — the trace inline as text;
    * ``tenant`` — namespace for store/quota isolation (default
      ``public``; ``[A-Za-z0-9_-]{1,64}``);
    * ``certify`` — ``off``/``on``/``strict`` (default: the server's);
    * ``deadline_s`` — per-request wall-clock budget.

**raw REPROSTM** (magic ``REPROSTM``)
    The connection *is* one framed stream, parsed incrementally as
    bytes arrive; the request completes at the END frame.  Malformed
    frames are rejected with the absolute byte offset, exactly like
    ``repro verify`` on the same bytes.

**raw REPROBIN** (magic ``REPROBIN``)
    The connection is one binary trace; the request completes when the
    client shuts down its write half.

Responses are always single NDJSON lines:

=============  ======================================================
``status``     meaning
=============  ======================================================
``ok``         a verdict: ``verdict`` (``holds``/``VIOLATED``/
               ``UNKNOWN``), ``method``, ``reason``,
               ``unknown_reason``, ``certified``, ``certificate``
               (kind + sha256 digest), ``provenance``, and ``code``
               mirroring the CLI exit discipline (0/1/3)
``retry_after``  backpressure: the queue (or the tenant's share of
               it) is full; retry after ``retry_after_s`` seconds.
               Nothing was dropped silently — this *is* the answer
``error``      unusable input (malformed frame, oversized request,
               bad field); ``reason`` carries a byte offset where one
               exists, ``code`` is 2
``shutdown``   the server is draining; the request was not (fully)
               processed.  Carries ``verdict: UNKNOWN`` with
               ``unknown_reason: shutdown`` and ``code`` 3
=============  ======================================================

Size and framing limits are enforced *incrementally* — an oversized or
unframeable request is rejected and (in NDJSON mode) skipped to the
next line without killing the connection, so one bad client request
never takes the parser down.
"""

from __future__ import annotations

import base64
import binascii
import hashlib
import json
import re
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.core import serialize_bin

PROTOCOL_VERSION = 1

#: Default per-request size cap (bytes of trace / line payload).
MAX_REQUEST_BYTES = 8 << 20

STATUS_OK = "ok"
STATUS_RETRY_AFTER = "retry_after"
STATUS_ERROR = "error"
STATUS_SHUTDOWN = "shutdown"

OPS = ("verify", "ping", "stats", "drain")

DEFAULT_TENANT = "public"
_TENANT_RE = re.compile(r"^[A-Za-z0-9_-]{1,64}$")

_CERTIFY_MODES = ("off", "on", "strict")


@dataclass
class ServiceRequest:
    """One parsed request, framing-independent."""

    id: Any
    op: str = "verify"
    trace: bytes | None = None
    tenant: str = DEFAULT_TENANT
    certify: str | None = None
    deadline_s: float | None = None
    #: Where the request came from, for diagnostics ("<conn 3>" etc).
    source: str = "<request>"


@dataclass
class ParseError:
    """A rejected request: what was wrong and where.

    ``offset`` is the absolute byte offset *in the connection stream*
    (NDJSON: the offending line's start, refined to the bad byte where
    the decoder knows it; raw modes: the malformed frame's offset).
    ``fatal`` marks errors the parser cannot resync past — raw-mode
    framing damage; the connection should be closed after responding.
    """

    message: str
    offset: int
    req_id: Any = None
    fatal: bool = False


def valid_tenant(name: Any) -> bool:
    return isinstance(name, str) and bool(_TENANT_RE.match(name))


class RequestParser:
    """Incremental, mode-sniffing decoder for one connection.

    Feed bytes as they arrive (:meth:`feed`), drain events
    (:meth:`events`), and finalize on EOF (:meth:`eof`).  Events are
    ``("request", ServiceRequest)`` or ``("error", ParseError)``; the
    parser itself never raises on malformed input.
    """

    def __init__(
        self,
        max_request_bytes: int = MAX_REQUEST_BYTES,
        source: str = "<conn>",
    ):
        self.max_request_bytes = max_request_bytes
        self.source = source
        self._buf = bytearray()
        self._consumed = 0  # absolute offset of _buf[0]
        self._mode: str | None = None  # None | "json" | "stream" | "bin"
        self._discarding = False  # json mode: skipping an oversized line
        self._dead = False  # raw mode: fatal error already emitted
        self._events: list[tuple[str, Any]] = []
        self._reader: serialize_bin.FrameReader | None = None
        self._raw = bytearray()  # raw-mode request bytes
        self._seq = 0  # ids assigned to raw-mode requests

    @property
    def bytes_consumed(self) -> int:
        return self._consumed

    # ------------------------------------------------------------------
    def feed(self, data: bytes) -> None:
        if self._dead:
            return
        self._buf.extend(data)
        if self._mode is None:
            self._sniff()
        if self._mode == "json":
            self._drain_json()
        elif self._mode == "stream":
            self._drain_stream()
        elif self._mode == "bin":
            self._drain_bin()

    def events(self) -> Iterator[tuple[str, Any]]:
        while self._events:
            yield self._events.pop(0)

    def eof(self) -> Iterator[tuple[str, Any]]:
        """Finalize at end of input; yields any remaining events."""
        if not self._dead:
            if self._mode == "json" and self._buf and not self._discarding:
                # A final line without its newline is still a line.
                self._buf.extend(b"\n")
                self._drain_json()
            elif self._mode == "stream" and self._reader is not None:
                if not self._reader.ended:
                    self._error(
                        "stream ends without an END frame "
                        f"({self._reader.pending_bytes} bytes buffered) "
                        f"at byte {self._reader.bytes_consumed}",
                        self._reader.bytes_consumed,
                        fatal=True,
                    )
            elif self._mode == "bin":
                if self._raw:
                    self._emit_raw(bytes(self._raw))
                    self._raw.clear()
            elif self._mode is None and self._buf:
                # Too short to sniff: not a protocol we speak.
                self._error(
                    f"unrecognized request ({len(self._buf)} bytes, "
                    "no known framing)", self._consumed, fatal=True,
                )
        yield from self.events()

    # ------------------------------------------------------------------
    def _sniff(self) -> None:
        if not self._buf:
            return
        head = bytes(self._buf[:8])
        if head.startswith(b"{") or head.startswith(b"\n"):
            self._mode = "json"
            return
        magics = (serialize_bin.STREAM_MAGIC, serialize_bin.MAGIC)
        for magic, mode in zip(magics, ("stream", "bin")):
            if magic.startswith(head[: len(magic)]):
                if len(head) < len(magic):
                    return  # need more bytes to decide
                if head.startswith(magic):
                    self._mode = mode
                    if mode == "stream":
                        self._reader = serialize_bin.FrameReader()
                    return
        self._error(
            f"unrecognized framing (first bytes {head!r}); expected "
            "NDJSON, REPROSTM or REPROBIN",
            self._consumed, fatal=True,
        )

    def _error(
        self, message: str, offset: int, req_id: Any = None,
        fatal: bool = False,
    ) -> None:
        self._events.append((
            "error",
            ParseError(
                f"{self.source}: {message}", offset, req_id=req_id,
                fatal=fatal,
            ),
        ))
        if fatal:
            self._dead = True

    # -------------------------------------------------- NDJSON mode --
    def _drain_json(self) -> None:
        while True:
            nl = self._buf.find(b"\n")
            if nl < 0:
                if self._discarding:
                    self._consumed += len(self._buf)
                    self._buf.clear()
                elif len(self._buf) > self.max_request_bytes:
                    self._error(
                        f"request line exceeds {self.max_request_bytes} "
                        "bytes without a newline; discarding to the "
                        "next line",
                        self._consumed,
                    )
                    self._discarding = True
                    self._consumed += len(self._buf)
                    self._buf.clear()
                return
            line = bytes(self._buf[:nl])
            line_start = self._consumed
            del self._buf[: nl + 1]
            self._consumed += nl + 1
            if self._discarding:
                self._discarding = False
                continue
            if not line.strip():
                continue
            if len(line) > self.max_request_bytes:
                self._error(
                    f"request line is {len(line)} bytes "
                    f"(max {self.max_request_bytes})",
                    line_start,
                )
                continue
            self._parse_json_line(line, line_start)

    def _parse_json_line(self, line: bytes, line_start: int) -> None:
        try:
            obj = json.loads(line)
        except json.JSONDecodeError as e:
            self._error(
                f"bad JSON: {e.msg}", line_start + max(0, e.pos), None
            )
            return
        if not isinstance(obj, dict):
            self._error(
                f"request must be a JSON object, got {type(obj).__name__}",
                line_start,
            )
            return
        req_id = obj.get("id")
        op = obj.get("op", "verify")
        if op not in OPS:
            self._error(
                f"unknown op {op!r}; expected one of {OPS}",
                line_start, req_id,
            )
            return
        tenant = obj.get("tenant", DEFAULT_TENANT)
        if not valid_tenant(tenant):
            self._error(
                f"bad tenant {tenant!r} (want [A-Za-z0-9_-]{{1,64}})",
                line_start, req_id,
            )
            return
        certify = obj.get("certify")
        if certify is not None and certify not in _CERTIFY_MODES:
            self._error(
                f"bad certify {certify!r}; expected one of "
                f"{_CERTIFY_MODES}",
                line_start, req_id,
            )
            return
        deadline_s = obj.get("deadline_s")
        if deadline_s is not None:
            if not isinstance(deadline_s, (int, float)) or deadline_s < 0:
                self._error(
                    f"bad deadline_s {deadline_s!r} (want seconds >= 0)",
                    line_start, req_id,
                )
                return
        trace: bytes | None = None
        if op == "verify":
            if "trace_b64" in obj:
                if not isinstance(obj["trace_b64"], str):
                    self._error(
                        "trace_b64 must be a base64 string",
                        line_start, req_id,
                    )
                    return
                try:
                    trace = base64.b64decode(
                        obj["trace_b64"], validate=True
                    )
                except (binascii.Error, ValueError) as e:
                    self._error(
                        f"bad trace_b64: {e}", line_start, req_id
                    )
                    return
            elif "trace" in obj:
                if not isinstance(obj["trace"], str):
                    self._error(
                        "trace must be a string (use trace_b64 for "
                        "binary formats)",
                        line_start, req_id,
                    )
                    return
                trace = obj["trace"].encode("utf-8")
            else:
                self._error(
                    "verify request carries no trace "
                    "(want trace_b64 or trace)",
                    line_start, req_id,
                )
                return
            if len(trace) > self.max_request_bytes:
                self._error(
                    f"trace is {len(trace)} bytes "
                    f"(max {self.max_request_bytes})",
                    line_start, req_id,
                )
                return
        self._events.append((
            "request",
            ServiceRequest(
                id=req_id, op=op, trace=trace, tenant=tenant,
                certify=certify,
                deadline_s=(
                    float(deadline_s) if deadline_s is not None else None
                ),
                source=self.source,
            ),
        ))

    # ---------------------------------------------------- raw modes --
    def _emit_raw(self, trace: bytes) -> None:
        self._seq += 1
        self._events.append((
            "request",
            ServiceRequest(
                id=f"raw-{self._seq}", op="verify", trace=trace,
                source=self.source,
            ),
        ))

    def _drain_stream(self) -> None:
        """Raw REPROSTM: validate frames incrementally; the request is
        the whole byte stream once the END frame lands."""
        reader = self._reader
        assert reader is not None
        chunk = bytes(self._buf)
        self._raw.extend(chunk)
        self._consumed += len(chunk)
        self._buf.clear()
        if len(self._raw) > self.max_request_bytes:
            self._error(
                f"stream request exceeds {self.max_request_bytes} bytes",
                self._consumed, fatal=True,
            )
            return
        reader.feed(chunk)
        try:
            for _tag, _payload in reader.events():
                pass
        except serialize_bin.BinaryFormatError as e:
            self._error(f"malformed stream: {e}", e.offset, fatal=True)
            return
        if reader.ended:
            if reader.pending_bytes:
                self._error(
                    f"{reader.pending_bytes} trailing bytes after the "
                    f"END frame at byte {reader.bytes_consumed}",
                    reader.bytes_consumed, fatal=True,
                )
                return
            self._emit_raw(bytes(self._raw))
            self._raw.clear()
            self._dead = True  # one stream per connection

    def _drain_bin(self) -> None:
        """Raw REPROBIN: buffer until EOF (the request delimiter)."""
        self._raw.extend(self._buf)
        self._consumed += len(self._buf)
        self._buf.clear()
        if len(self._raw) > self.max_request_bytes:
            self._error(
                f"binary request exceeds {self.max_request_bytes} bytes",
                self._consumed, fatal=True,
            )


# ---------------------------------------------------------------------
# Responses
# ---------------------------------------------------------------------
def certificate_digest(result: Any) -> dict[str, Any] | None:
    """A stable summary of a result's certificate material.

    Certificates can be large (RUP proofs); the wire carries their
    kind plus a SHA-256 over the canonical ``repr`` of the payloads —
    enough for the differential soak to assert byte-identical proof
    material between the daemon and offline ``repro batch``.  Covers
    per-address certificates when the top-level result has none.
    """
    if result is None:
        return None
    cert = getattr(result, "certificate", None)
    material: list[tuple[Any, ...]] = []
    kinds: list[str] = []
    if cert is not None:
        kinds.append(cert.kind)
        material.append((None, cert.kind, cert.payload))
    else:
        per_address = getattr(result, "per_address", None) or {}
        for addr in sorted(per_address, key=repr):
            sub = per_address[addr]
            sub_cert = getattr(sub, "certificate", None)
            if sub_cert is not None:
                kinds.append(sub_cert.kind)
                material.append((repr(addr), sub_cert.kind, sub_cert.payload))
    if not material:
        return None
    digest = hashlib.sha256(repr(tuple(material)).encode()).hexdigest()
    return {"kinds": kinds, "sha256": digest}


def response_for_outcome(req_id: Any, outcome: Any) -> dict[str, Any]:
    """Build the ``ok``/``error`` response for a batch-engine
    :class:`~repro.engine.batch.SourceOutcome`."""
    if outcome.error is not None or outcome.result is None:
        return response_error(req_id, outcome.error or "no result")
    result = outcome.result
    verdict = outcome.verdict
    code = 0 if verdict == "holds" else 1 if verdict == "VIOLATED" else 3
    return {
        "id": req_id,
        "status": STATUS_OK,
        "verdict": verdict,
        "code": code,
        "method": result.method,
        "reason": result.reason,
        "unknown_reason": result.unknown_reason,
        "certified": outcome.certified,
        "certificate": certificate_digest(result),
        "provenance": dict(outcome.provenance),
    }


def response_error(
    req_id: Any, message: str, offset: int | None = None
) -> dict[str, Any]:
    reason = message if offset is None else f"{message} at byte {offset}"
    return {
        "id": req_id, "status": STATUS_ERROR, "code": 2, "reason": reason,
    }


def response_retry_after(
    req_id: Any, retry_after_s: float, detail: str
) -> dict[str, Any]:
    return {
        "id": req_id,
        "status": STATUS_RETRY_AFTER,
        "retry_after_s": round(retry_after_s, 3),
        "reason": detail,
    }


def response_shutdown(req_id: Any, detail: str) -> dict[str, Any]:
    return {
        "id": req_id,
        "status": STATUS_SHUTDOWN,
        "verdict": "UNKNOWN",
        "code": 3,
        "unknown_reason": "shutdown",
        "reason": f"shutdown: {detail}" if detail else "shutdown",
    }


def encode_response(payload: dict[str, Any]) -> bytes:
    """One response as an NDJSON line (sorted keys: byte-stable for
    the differential soak)."""
    return (
        json.dumps(payload, sort_keys=True, default=repr) + "\n"
    ).encode("utf-8")


def decode_response(line: bytes) -> dict[str, Any]:
    return json.loads(line.decode("utf-8"))
