"""Verification as a service: the ``repro serve`` daemon.

The long-running server around the batch/store substrate — line-framed
local protocol (:mod:`~repro.service.protocol`), bounded backpressure
queue (:mod:`~repro.service.queue`), per-tenant quota-isolated stores
(:mod:`~repro.service.tenants`), and the supervised component server
itself (:mod:`~repro.service.server`).  :mod:`~repro.service.client`
is the matching blocking client.
"""

from repro.service.client import ServiceClient
from repro.service.protocol import (
    DEFAULT_TENANT,
    MAX_REQUEST_BYTES,
    PROTOCOL_VERSION,
    ParseError,
    RequestParser,
    ServiceRequest,
    certificate_digest,
    decode_response,
    encode_response,
    response_error,
    response_for_outcome,
    response_retry_after,
    response_shutdown,
)
from repro.service.queue import BoundedRequestQueue, QueueStats
from repro.service.server import (
    BATCH_WINDOW,
    PendingRequest,
    ServiceConfig,
    ServiceStats,
    VerificationServer,
)
from repro.service.tenants import TenantLimitError, TenantStores

__all__ = [
    "BATCH_WINDOW",
    "BoundedRequestQueue",
    "DEFAULT_TENANT",
    "MAX_REQUEST_BYTES",
    "PROTOCOL_VERSION",
    "ParseError",
    "PendingRequest",
    "QueueStats",
    "RequestParser",
    "ServiceClient",
    "ServiceConfig",
    "ServiceRequest",
    "ServiceStats",
    "TenantLimitError",
    "TenantStores",
    "VerificationServer",
    "certificate_digest",
    "decode_response",
    "encode_response",
    "response_error",
    "response_for_outcome",
    "response_retry_after",
    "response_shutdown",
]
