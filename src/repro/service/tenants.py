"""Per-tenant result stores and caches.

Multi-tenant isolation is *structural*, not accounting: each tenant
gets its own :class:`~repro.engine.store.ResultStore` directory under
``root/tenants/<name>`` with its own ``max_mb`` budget, so the LRU
compactor only ever weighs a tenant's entries against that tenant's
own quota.  A noisy tenant filling its store evicts its own cold
verdicts — never another tenant's warm ones.  (A shared store with
per-tenant byte accounting would need compaction to make cross-tenant
eviction choices; separate stores make the isolation property hold by
construction.)
"""

from __future__ import annotations

import os
import threading
from typing import TYPE_CHECKING, Any

from repro.engine.cache import ResultCache
from repro.engine.store import ResultStore
from repro.service.protocol import valid_tenant

if TYPE_CHECKING:
    from repro.engine.chaos import ChaosSpec


class TenantLimitError(ValueError):
    """A request named a tenant past the server's namespace cap."""


class TenantStores:
    """Lazily created per-tenant (cache, store) pairs.

    ``root=None`` runs storeless: each tenant still gets its own
    in-memory :class:`ResultCache`, so warm verdicts survive between
    requests but not restarts.  ``max_tenants`` bounds the namespace
    (stores are directories plus open state; an unbounded namespace
    would let a client mint tenants as a resource exhaustion attack).
    """

    def __init__(
        self,
        root: str | os.PathLike | None,
        quota_mb: float | None = None,
        n_shards: int = 16,
        chaos: "ChaosSpec | None" = None,
        max_tenants: int = 64,
    ):
        self.root = os.fspath(root) if root is not None else None
        self.quota_mb = quota_mb
        self.n_shards = n_shards
        self.chaos = chaos
        self.max_tenants = max_tenants
        self._lock = threading.Lock()
        self._caches: dict[str, ResultCache] = {}
        self._stores: dict[str, ResultStore] = {}

    def get(self, tenant: str) -> ResultCache:
        """The tenant's cache (store-backed when a root is mounted);
        raises :class:`TenantLimitError` past ``max_tenants`` and
        ``ValueError`` on a name the protocol validator rejects."""
        if not valid_tenant(tenant):
            raise ValueError(f"bad tenant name {tenant!r}")
        with self._lock:
            cache = self._caches.get(tenant)
            if cache is not None:
                return cache
            if len(self._caches) >= self.max_tenants:
                raise TenantLimitError(
                    f"tenant namespace is full "
                    f"({self.max_tenants} tenants); {tenant!r} rejected"
                )
            store = None
            if self.root is not None:
                store = ResultStore(
                    os.path.join(self.root, "tenants", tenant),
                    max_mb=self.quota_mb,
                    n_shards=self.n_shards,
                    chaos=self.chaos,
                )
                self._stores[tenant] = store
            cache = ResultCache(store=store)
            self._caches[tenant] = cache
            return cache

    def store_of(self, tenant: str) -> ResultStore | None:
        with self._lock:
            return self._stores.get(tenant)

    def tenants(self) -> list[str]:
        with self._lock:
            return sorted(self._caches)

    # ------------------------------------------------------------------
    def flush_all(self) -> None:
        with self._lock:
            stores = list(self._stores.values())
        for store in stores:
            store.flush()

    def close_all(self) -> None:
        self.flush_all()

    def quota_report(self) -> dict[str, Any]:
        """Per-tenant per-shard occupancy (see
        :meth:`ResultStore.quota_report`)."""
        with self._lock:
            stores = dict(self._stores)
        return {
            tenant: store.quota_report()
            for tenant, store in sorted(stores.items())
        }

    def stats(self) -> dict[str, Any]:
        with self._lock:
            caches = dict(self._caches)
        out: dict[str, Any] = {}
        for tenant, cache in sorted(caches.items()):
            row: dict[str, Any] = {
                "cache": {
                    "hits": cache.stats.hits,
                    "misses": cache.stats.misses,
                    "store_hits": cache.stats.store_hits,
                },
            }
            store = self._stores.get(tenant)
            if store is not None:
                row["store"] = store.stats.as_dict()
                row["store_bytes"] = store.total_bytes()
            out[tenant] = row
        return out
