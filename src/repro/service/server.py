"""The ``repro serve`` daemon: long-lived verification as a service.

Architecture (the sst-sat exemplar's composable long-lived components,
minus the clock — each component is a supervised thread with an
explicit liveness beat):

* **ingest front-end** — one thread multiplexing the Unix-socket
  listener and its connections through a ``selectors`` loop (or, in
  ``--stdio`` mode, reading the pipe); feeds every connection's bytes
  to an incremental :class:`~repro.service.protocol.RequestParser`, so
  malformed or oversized requests are refused with byte-offset
  diagnostics without ever taking the daemon down;
* **bounded queue** — admission control with explicit backpressure
  (:mod:`repro.service.queue`): overload answers ``RETRY_AFTER`` in
  one round-trip, per-tenant share caps keep one flooder from
  occupying the queue;
* **worker pool** — N threads draining same-tenant/same-options
  batches into :func:`repro.engine.batch.verify_many`, so concurrent
  duplicate requests are canonicalized, deduplicated and solved once;
  worker-process crash recovery, deadlines and fault injection ride
  the engine's existing :class:`ResiliencePolicy`;
* **tenant stores** — per-client namespaces with independent LRU
  quotas (:mod:`repro.service.tenants`);
* **heartbeat** — periodic liveness/readiness beats carrying the
  queue, worker and engine counters (also served to any client via the
  ``ping`` op);
* **supervisor** — restarts components whose threads die, with capped
  exponential backoff, and replaces wedged workers.

Degradation discipline: every admitted request is answered exactly
once, and every degraded answer is *machine-readable and sound* — a
``RETRY_AFTER``, an ``error`` with a byte offset, or an UNKNOWN whose
``unknown_reason`` names the cause (``crashed``, ``timeout``,
``shutdown``); never a guessed verdict.  On SIGTERM the server drains:
the queue is rejected with UNKNOWN(shutdown), in-flight requests get
``drain_grace_s`` to finish, stragglers are answered UNKNOWN(shutdown)
and their late results discarded (a response is sent exactly once).
"""

from __future__ import annotations

import os
import selectors
import signal
import socket
import threading
import time
from dataclasses import dataclass, field, replace
from typing import Any, BinaryIO, Callable

from repro.core.serialize import parse_trace_bytes
from repro.engine.batch import verify_many
from repro.engine.executor import ResiliencePolicy
from repro.service import protocol
from repro.service.protocol import (
    ParseError,
    RequestParser,
    ServiceRequest,
    encode_response,
    response_error,
    response_for_outcome,
    response_retry_after,
    response_shutdown,
)
from repro.service.queue import (
    ADMITTED,
    REJECT_DRAINING,
    REJECT_FULL,
    REJECT_TENANT,
    BoundedRequestQueue,
)
from repro.service.tenants import TenantLimitError, TenantStores

#: Same-options requests gulped per worker batch (mirrors the batch
#: engine's chunk size, so one ``verify_many`` call sees a dedupable
#: group).
BATCH_WINDOW = 8

_RECV_CHUNK = 1 << 16


@dataclass
class ServiceConfig:
    """Everything ``repro serve`` can tune (see the CLI flags)."""

    socket_path: str | None = None
    stdio: bool = False
    #: Injected pipe ends for tests; default sys.stdin/stdout buffers.
    stdin: BinaryIO | None = None
    stdout: BinaryIO | None = None
    workers: int = 2
    queue_depth: int = 64
    tenant_share: float = 0.5
    max_request_bytes: int = protocol.MAX_REQUEST_BYTES
    store_root: str | None = None
    store_quota_mb: float | None = None
    max_tenants: int = 64
    certify: str = "off"
    prepass: bool = True
    portfolio: Any = True
    resilience: ResiliencePolicy | None = None
    drain_grace_s: float = 5.0
    heartbeat_s: float = 0.0
    send_timeout_s: float = 5.0
    retry_after_s: float = 0.5
    supervisor_poll_s: float = 0.05
    worker_wedge_s: float = 30.0
    max_backoff_s: float = 2.0
    on_heartbeat: Callable[[dict[str, Any]], None] | None = None


@dataclass
class ServiceStats:
    connections: int = 0
    requests: int = 0
    ok: int = 0
    errors: int = 0
    retry_after: int = 0
    shutdown: int = 0
    parse_errors: int = 0
    #: Responses dropped by injected ``conn-drop`` chaos.
    conn_drops: int = 0
    #: Connections closed because the client would not drain its
    #: responses within ``send_timeout_s``.
    slow_client_drops: int = 0
    #: Component restarts by the supervisor.
    restarts: int = 0
    #: Wedged workers replaced by the supervisor.
    replaced_workers: int = 0
    batches: int = 0
    certified: int = 0
    #: Aggregated batch-engine provenance (solved / memory / store /
    #: dedup counts across every answered request).
    provenance: dict[str, int] = field(default_factory=dict)

    def as_dict(self) -> dict[str, Any]:
        return {
            "connections": self.connections,
            "requests": self.requests,
            "ok": self.ok,
            "errors": self.errors,
            "retry_after": self.retry_after,
            "shutdown": self.shutdown,
            "parse_errors": self.parse_errors,
            "conn_drops": self.conn_drops,
            "slow_client_drops": self.slow_client_drops,
            "restarts": self.restarts,
            "replaced_workers": self.replaced_workers,
            "batches": self.batches,
            "certified": self.certified,
            "provenance": dict(self.provenance),
        }


# ---------------------------------------------------------------------
# Connections
# ---------------------------------------------------------------------
class _BaseConn:
    """Shared bookkeeping: a parser, a send lock, and an outstanding
    count so a connection is only torn down after its last response."""

    def __init__(self, server: "VerificationServer", source: str):
        self.server = server
        self.source = source
        self.parser = RequestParser(
            server.config.max_request_bytes, source=source
        )
        self.open = True
        self.eof = False
        self._send_lock = threading.Lock()
        self._state_lock = threading.Lock()
        self._outstanding = 0

    def note_pending(self) -> None:
        with self._state_lock:
            self._outstanding += 1

    def note_done(self) -> None:
        with self._state_lock:
            self._outstanding -= 1
            closeable = self.eof and self._outstanding <= 0
        if closeable:
            self.close()

    @property
    def outstanding(self) -> int:
        with self._state_lock:
            return self._outstanding

    def send_line(self, payload: dict[str, Any]) -> bool:
        raise NotImplementedError

    def close(self) -> None:
        raise NotImplementedError


class _SocketConn(_BaseConn):
    """One accepted Unix-socket connection (non-blocking for reads;
    sends run a bounded retry loop so a slow client stalls at most
    ``send_timeout_s`` before being dropped, never a worker forever)."""

    def __init__(self, server: "VerificationServer", sock: socket.socket,
                 cid: int):
        super().__init__(server, f"<conn {cid}>")
        self.sock = sock
        sock.setblocking(False)

    def send_line(self, payload: dict[str, Any]) -> bool:
        data = encode_response(payload)
        deadline = time.monotonic() + self.server.config.send_timeout_s
        with self._send_lock:
            if not self.open:
                return False
            try:
                while data:
                    try:
                        sent = self.sock.send(data)
                        data = data[sent:]
                    except (BlockingIOError, InterruptedError):
                        if time.monotonic() >= deadline:
                            self.server.stats.slow_client_drops += 1
                            self._abort()
                            return False
                        time.sleep(0.002)
            except OSError:
                self._abort()
                return False
        return True

    def _abort(self) -> None:
        """Give up on this client: shut the socket down so the ingest
        selector sees EOF and reaps it (closing the fd from a worker
        thread would race the selector)."""
        self.open = False
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass

    def close(self) -> None:
        self.open = False
        try:
            self.sock.close()
        except OSError:
            pass


class _StdioConn(_BaseConn):
    """The pipe pair of ``--stdio`` mode."""

    def __init__(self, server: "VerificationServer", out: BinaryIO):
        super().__init__(server, "<stdin>")
        self.out = out

    def send_line(self, payload: dict[str, Any]) -> bool:
        with self._send_lock:
            if not self.open:
                return False
            try:
                self.out.write(encode_response(payload))
                self.out.flush()
            except (OSError, ValueError):
                self.open = False
                return False
        return True

    def close(self) -> None:
        self.open = False


class PendingRequest:
    """One admitted verify request; answered exactly once.

    The once-guard is what makes drain sound: when the coordinator
    answers UNKNOWN(shutdown) for a straggler, the worker's late result
    is discarded here instead of producing a second, contradictory
    response on the wire.
    """

    __slots__ = ("req", "conn", "_lock", "_done")

    def __init__(self, req: ServiceRequest, conn: _BaseConn):
        self.req = req
        self.conn = conn
        self._lock = threading.Lock()
        self._done = False

    @property
    def responded(self) -> bool:
        with self._lock:
            return self._done

    def respond(
        self, server: "VerificationServer", payload: dict[str, Any]
    ) -> bool:
        """Send ``payload`` unless a response already went out; returns
        whether *this* call won the race to answer."""
        with self._lock:
            if self._done:
                return False
            self._done = True
        chaos = server.chaos
        if chaos is not None and chaos.drops_connection(str(self.req.id)):
            # The injected fault: the client's connection dies before
            # the response is written.  The daemon survives; nothing
            # wrong ever reaches the wire.
            server.stats.conn_drops += 1
            if isinstance(self.conn, _SocketConn):
                self.conn._abort()
            self.conn.note_done()
            server.count_response(payload)
            return True
        self.conn.send_line(payload)
        self.conn.note_done()
        server.count_response(payload)
        return True


# ---------------------------------------------------------------------
# Components
# ---------------------------------------------------------------------
class Component:
    """A supervised long-lived thread with a liveness beat."""

    def __init__(self, name: str, server: "VerificationServer"):
        self.name = name
        self.server = server
        self.thread: threading.Thread | None = None
        self.restarts = 0
        self.beat = time.monotonic()
        self.busy = False
        self.crashed: str | None = None
        self.replaced = False
        self._next_restart_at = 0.0

    def start(self) -> None:
        self.beat = time.monotonic()
        self.crashed = None
        self.thread = threading.Thread(
            target=self._guard, name=f"repro-serve-{self.name}", daemon=True
        )
        self.thread.start()

    def _guard(self) -> None:
        try:
            self.run()
        except Exception as e:  # noqa: BLE001 — the supervisor restarts
            self.crashed = f"{type(e).__name__}: {e}"
            self.server.diagnostics.append(
                f"component {self.name} died: {self.crashed}"
            )

    def alive(self) -> bool:
        return self.thread is not None and self.thread.is_alive()

    def tick(self) -> None:
        self.beat = time.monotonic()

    def run(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class _SocketFrontend(Component):
    def __init__(self, server: "VerificationServer"):
        super().__init__("frontend", server)

    def run(self) -> None:
        server = self.server
        sel = selectors.DefaultSelector()
        listener = server.listener
        assert listener is not None
        sel.register(listener, selectors.EVENT_READ, None)
        try:
            while not server.stopping.is_set():
                for key, _mask in sel.select(timeout=0.05):
                    if key.data is None:
                        self._accept(sel, listener)
                    else:
                        self._service(sel, key.data)
                self.tick()
        finally:
            sel.close()

    def _accept(self, sel, listener: socket.socket) -> None:
        server = self.server
        try:
            sock, _addr = listener.accept()
        except (BlockingIOError, OSError):
            return
        server.stats.connections += 1
        conn = _SocketConn(server, sock, server.stats.connections)
        sel.register(sock, selectors.EVENT_READ, conn)

    def _service(self, sel, conn: _SocketConn) -> None:
        server = self.server
        try:
            data = conn.sock.recv(_RECV_CHUNK)
        except (BlockingIOError, InterruptedError):
            return
        except OSError:
            data = b""
        if data:
            conn.parser.feed(data)
            server.handle_events(conn, conn.parser.events())
            return
        # EOF (or an aborted socket): finalize the parser — this is
        # where a raw REPROBIN request completes, and where a writer
        # dying mid-frame earns its byte-offset diagnostic.
        conn.eof = True
        try:
            sel.unregister(conn.sock)
        except (KeyError, ValueError):
            pass
        server.handle_events(conn, conn.parser.eof())
        if conn.outstanding <= 0:
            conn.close()


class _StdioFrontend(Component):
    def __init__(self, server: "VerificationServer", conn: _StdioConn,
                 fh: BinaryIO):
        super().__init__("frontend", server)
        self.conn = conn
        self.fh = fh
        self._saw_eof = False

    def run(self) -> None:
        server = self.server
        fd = self.fh.fileno()
        while not server.stopping.is_set() and not self._saw_eof:
            self.tick()
            try:
                data = os.read(fd, _RECV_CHUNK)
            except OSError:
                data = b""
            if data:
                self.conn.parser.feed(data)
                server.handle_events(self.conn, self.conn.parser.events())
                continue
            self._saw_eof = True
            self.conn.eof = True
            server.handle_events(self.conn, self.conn.parser.eof())
        # End of input: wait for the in-flight work to answer, then
        # drain — pipe mode serves one client, and it hung up.
        while not server.stopping.is_set():
            self.tick()
            if (
                self.conn.outstanding <= 0
                and len(server.queue) == 0
                and not server.has_active()
            ):
                break
            time.sleep(0.02)
        server.request_drain("end of input")


class _Worker(Component):
    def run(self) -> None:
        server = self.server
        while not server.stop_workers.is_set():
            self.tick()
            batch = server.queue.take_batch(
                BATCH_WINDOW,
                timeout=0.1,
                same=lambda p: (
                    p.req.tenant, p.req.certify, p.req.deadline_s
                ),
            )
            if not batch:
                continue
            self.busy = True
            try:
                server.solve_batch(batch)
            finally:
                self.busy = False


class _Heartbeat(Component):
    def __init__(self, server: "VerificationServer"):
        super().__init__("heartbeat", server)

    def run(self) -> None:
        server = self.server
        period = server.config.heartbeat_s
        last_emit = time.monotonic()
        while not server.stopping.is_set():
            self.tick()
            now = time.monotonic()
            if (
                period > 0
                and server.config.on_heartbeat is not None
                and now - last_emit >= period
            ):
                last_emit = now
                try:
                    server.config.on_heartbeat(server.status())
                except Exception:  # noqa: BLE001 — a sink must not kill us
                    pass
            time.sleep(min(0.05, period) if period > 0 else 0.05)


class _Supervisor(Component):
    """Restart dead components (capped exponential backoff); replace
    wedged workers.  A Python thread cannot be killed, so a wedged
    worker is *superseded* — a fresh worker keeps the pool serving
    while the stuck one either finishes late (its response is dropped
    by the once-guard if drain answered first) or sits out."""

    def __init__(self, server: "VerificationServer"):
        super().__init__("supervisor", server)

    def run(self) -> None:
        server = self.server
        cfg = server.config
        while not server.stopping.is_set():
            self.tick()
            now = time.monotonic()
            for comp in server.supervised():
                if comp.replaced:
                    continue
                if not comp.alive():
                    if comp._next_restart_at == 0.0:
                        delay = min(
                            cfg.max_backoff_s, 0.05 * (2 ** comp.restarts)
                        )
                        comp._next_restart_at = now + delay
                    elif now >= comp._next_restart_at:
                        comp._next_restart_at = 0.0
                        comp.restarts += 1
                        server.stats.restarts += 1
                        comp.start()
                elif (
                    isinstance(comp, _Worker)
                    and comp.busy
                    and now - comp.beat > cfg.worker_wedge_s
                ):
                    comp.replaced = True
                    server.stats.replaced_workers += 1
                    server.diagnostics.append(
                        f"worker {comp.name} wedged for "
                        f"{now - comp.beat:.1f}s; superseded"
                    )
                    server.add_worker()
            time.sleep(cfg.supervisor_poll_s)


# ---------------------------------------------------------------------
# The server
# ---------------------------------------------------------------------
class VerificationServer:
    """The daemon: construct with a :class:`ServiceConfig`, then
    :meth:`start`; :meth:`serve_forever` blocks until a drain
    completes (SIGTERM/SIGINT, a client ``drain`` op, stdin EOF, or
    :meth:`stop`)."""

    def __init__(self, config: ServiceConfig):
        if bool(config.socket_path) == bool(config.stdio):
            raise ValueError(
                "exactly one of socket_path / stdio must be set"
            )
        self.config = config
        self.stats = ServiceStats()
        self.diagnostics: list[str] = []
        self.chaos = (
            config.resilience.chaos
            if config.resilience is not None else None
        )
        self.queue = BoundedRequestQueue(
            config.queue_depth, config.tenant_share
        )
        self.tenants = TenantStores(
            config.store_root,
            quota_mb=config.store_quota_mb,
            chaos=self.chaos,
            max_tenants=config.max_tenants,
        )
        self.listener: socket.socket | None = None
        self.stopping = threading.Event()
        self.stop_workers = threading.Event()
        self.draining = threading.Event()
        self._done = threading.Event()
        self._active: set[PendingRequest] = set()
        self._active_lock = threading.Lock()
        self._stats_lock = threading.Lock()
        self._workers: list[_Worker] = []
        self._components: list[Component] = []
        self._drain_reason = ""
        self.started_at = time.monotonic()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        cfg = self.config
        self.started_at = time.monotonic()
        if cfg.socket_path:
            if os.path.exists(cfg.socket_path):
                os.unlink(cfg.socket_path)
            self.listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            self.listener.bind(cfg.socket_path)
            self.listener.listen(64)
            self.listener.setblocking(False)
            self.frontend: Component = _SocketFrontend(self)
        else:
            import sys

            out = cfg.stdout if cfg.stdout is not None else sys.stdout.buffer
            fh = cfg.stdin if cfg.stdin is not None else sys.stdin.buffer
            self._stdio_conn = _StdioConn(self, out)
            self.frontend = _StdioFrontend(self, self._stdio_conn, fh)
        self._components = [self.frontend]
        for _ in range(cfg.workers):
            self.add_worker(start_now=False)
        self.heartbeat = _Heartbeat(self)
        self._components.append(self.heartbeat)
        self.supervisor = _Supervisor(self)
        for comp in self._components:
            comp.start()
        self.supervisor.start()

    def add_worker(self, start_now: bool = True) -> None:
        worker = _Worker(f"worker-{len(self._workers)}", self)
        self._workers.append(worker)
        self._components.append(worker)
        if start_now:
            worker.start()

    def supervised(self) -> list[Component]:
        return list(self._components)

    def serve_forever(self, install_signals: bool = True) -> int:
        if (
            install_signals
            and threading.current_thread() is threading.main_thread()
        ):
            for sig in (signal.SIGTERM, signal.SIGINT):
                signal.signal(
                    sig,
                    lambda s, _f: self.request_drain(
                        f"signal {signal.Signals(s).name}"
                    ),
                )
        self._done.wait()
        return 0

    def request_drain(self, reason: str) -> None:
        """Begin a graceful drain (idempotent, non-blocking)."""
        if self.draining.is_set():
            return
        self.draining.set()
        self._drain_reason = reason
        threading.Thread(
            target=self._drain, args=(reason,),
            name="repro-serve-drain", daemon=True,
        ).start()

    def _drain(self, reason: str) -> None:
        # 1. Reject the queue: queued-but-unstarted work is answered
        #    UNKNOWN(shutdown) immediately, never silently dropped.
        for pending in self.queue.drain():
            pending.respond(
                self, response_shutdown(
                    pending.req.id, f"queued at drain ({reason})"
                )
            )
        # 2. Give in-flight solves the grace window.
        deadline = time.monotonic() + max(0.0, self.config.drain_grace_s)
        while time.monotonic() < deadline:
            if not self.has_active() and len(self.queue) == 0:
                break
            time.sleep(0.01)
        # 3. Stragglers: answer UNKNOWN(shutdown) now; the once-guard
        #    discards their late results.
        with self._active_lock:
            leftovers = list(self._active)
        for pending in leftovers:
            pending.respond(
                self, response_shutdown(
                    pending.req.id,
                    f"in flight past drain grace ({reason})",
                )
            )
        # 4. Stop components, persist stores, release the socket.
        self.stop_workers.set()
        self.queue.wake_all()
        self.stopping.set()
        for comp in self.supervised() + [self.supervisor]:
            thread = comp.thread
            if thread is not None and thread is not threading.current_thread():
                thread.join(timeout=2.0)
        try:
            self.tenants.close_all()
        except Exception as e:  # noqa: BLE001 — drain must complete
            self.diagnostics.append(f"store flush at drain failed: {e}")
        if self.listener is not None:
            try:
                self.listener.close()
            except OSError:
                pass
            if self.config.socket_path and os.path.exists(
                self.config.socket_path
            ):
                try:
                    os.unlink(self.config.socket_path)
                except OSError:
                    pass
        self._done.set()

    def stop(self, reason: str = "stop()") -> None:
        self.request_drain(reason)
        self.wait()

    def wait(self, timeout: float | None = None) -> bool:
        return self._done.wait(timeout)

    @property
    def drained(self) -> bool:
        return self._done.is_set()

    @property
    def drain_reason(self) -> str:
        return self._drain_reason

    # ------------------------------------------------------------------
    # Request path
    # ------------------------------------------------------------------
    def handle_events(self, conn: _BaseConn, events) -> None:
        for kind, payload in events:
            if kind == "error":
                self._handle_parse_error(conn, payload)
            else:
                self.submit(conn, payload)

    def _handle_parse_error(self, conn: _BaseConn, perr: ParseError) -> None:
        self.stats.parse_errors += 1
        self.stats.errors += 1
        conn.send_line(
            response_error(perr.req_id, perr.message, perr.offset)
        )
        if perr.fatal and isinstance(conn, _SocketConn):
            conn._abort()

    def submit(self, conn: _BaseConn, req: ServiceRequest) -> None:
        self.stats.requests += 1
        if req.op in ("ping", "stats"):
            payload: dict[str, Any] = {
                "id": req.id, "status": protocol.STATUS_OK, "code": 0,
                "op": req.op,
            }
            payload.update(self.status())
            if req.op == "stats":
                payload["tenants"] = self.tenants.stats()
                payload["quota"] = self.tenants.quota_report()
            conn.send_line(payload)
            return
        if req.op == "drain":
            conn.send_line({
                "id": req.id, "status": protocol.STATUS_OK, "code": 0,
                "op": "drain", "draining": True,
            })
            self.request_drain(f"drain op from {req.source}")
            return
        # op == "verify"
        pending = PendingRequest(req, conn)
        conn.note_pending()
        if self.draining.is_set():
            pending.respond(
                self, response_shutdown(req.id, "server is draining")
            )
            return
        verdict = self.queue.offer(pending, req.tenant)
        if verdict == ADMITTED:
            return
        if verdict == REJECT_DRAINING:
            pending.respond(
                self, response_shutdown(req.id, "server is draining")
            )
        elif verdict == REJECT_TENANT:
            pending.respond(
                self,
                response_retry_after(
                    req.id, self.config.retry_after_s,
                    f"tenant {req.tenant!r} share of the queue is full "
                    f"({self.queue.tenant_cap} pending)",
                ),
            )
        else:  # REJECT_FULL
            pending.respond(
                self,
                response_retry_after(
                    req.id, self.config.retry_after_s,
                    f"queue full ({self.queue.depth} pending)",
                ),
            )

    def has_active(self) -> bool:
        with self._active_lock:
            return bool(self._active)

    def solve_batch(self, batch: list[PendingRequest]) -> None:
        """Decode, dedup and decide one same-options batch; answer
        every request exactly once no matter what fails."""
        with self._active_lock:
            self._active.update(batch)
        self.stats.batches += 1
        pendings: list[PendingRequest] = []
        try:
            executions = []
            for pending in batch:
                req = pending.req
                try:
                    executions.append(
                        parse_trace_bytes(
                            req.trace or b"", f"{req.source}#{req.id}"
                        )
                    )
                    pendings.append(pending)
                except (ValueError, OSError) as e:
                    pending.respond(self, response_error(req.id, str(e)))
            if not pendings:
                return
            req0 = pendings[0].req
            certify = (
                req0.certify if req0.certify is not None
                else self.config.certify
            )
            try:
                cache = self.tenants.get(req0.tenant)
            except (TenantLimitError, ValueError) as e:
                for pending in pendings:
                    pending.respond(
                        self, response_error(pending.req.id, str(e))
                    )
                return
            outcomes = verify_many(
                executions,
                labels=[
                    f"{p.req.source}#{p.req.id}" for p in pendings
                ],
                jobs=1,
                cache=cache,
                resilience=self._policy_for(req0),
                certify=certify,
                prepass=self.config.prepass,
                portfolio=self.config.portfolio,
            )
            for pending, outcome in zip(pendings, outcomes):
                self._count_outcome(outcome)
                pending.respond(
                    self, response_for_outcome(pending.req.id, outcome)
                )
            cache.flush_store()
        except Exception as e:  # noqa: BLE001 — answer, then recover
            for pending in batch:
                if not pending.responded:
                    pending.respond(
                        self,
                        response_error(
                            pending.req.id, f"engine failure: {e}"
                        ),
                    )
            self.diagnostics.append(f"batch failed: {e}")
        finally:
            with self._active_lock:
                self._active.difference_update(batch)

    def _policy_for(self, req: ServiceRequest) -> ResiliencePolicy:
        policy = (
            self.config.resilience
            if self.config.resilience is not None
            else ResiliencePolicy()
        )
        if req.deadline_s is not None:
            timeout = (
                req.deadline_s if policy.timeout is None
                else min(policy.timeout, req.deadline_s)
            )
            policy = replace(policy, timeout=timeout)
        return policy

    def _count_outcome(self, outcome: Any) -> None:
        with self._stats_lock:
            self.stats.certified += outcome.certified
            for kind, n in (outcome.provenance or {}).items():
                self.stats.provenance[kind] = (
                    self.stats.provenance.get(kind, 0) + n
                )

    def count_response(self, payload: dict[str, Any]) -> None:
        status = payload.get("status")
        with self._stats_lock:
            if status == protocol.STATUS_OK:
                self.stats.ok += 1
            elif status == protocol.STATUS_RETRY_AFTER:
                self.stats.retry_after += 1
            elif status == protocol.STATUS_SHUTDOWN:
                self.stats.shutdown += 1
            elif status == protocol.STATUS_ERROR:
                self.stats.errors += 1

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def status(self) -> dict[str, Any]:
        """The liveness/readiness heartbeat payload (also the ``ping``
        response body)."""
        now = time.monotonic()
        workers_alive = sum(
            1 for w in self._workers if not w.replaced and w.alive()
        )
        return {
            "version": protocol.PROTOCOL_VERSION,
            "ready": not self.draining.is_set(),
            "draining": self.draining.is_set(),
            "drain_reason": self._drain_reason,
            "uptime_s": round(now - self.started_at, 3),
            "queue": {
                "depth": len(self.queue),
                "limit": self.queue.depth,
                "tenant_cap": self.queue.tenant_cap,
                **self.queue.stats.as_dict(),
            },
            "workers": {
                "configured": self.config.workers,
                "alive": workers_alive,
                "busy": sum(1 for w in self._workers if w.busy),
                "wedged_replaced": self.stats.replaced_workers,
            },
            "components": {
                comp.name: {
                    "alive": comp.alive(),
                    "beat_age_s": round(now - comp.beat, 3),
                    "restarts": comp.restarts,
                }
                for comp in self.supervised()
            },
            "requests": self.stats.as_dict(),
            "tenants": self.tenants.tenants(),
        }
