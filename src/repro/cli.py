"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``verify <trace>``       — decide coherence of a trace file
  (``.json`` in the serialize format — JSON-shaped content is sniffed
  under any suffix — or the compact text format); ``--sc`` checks
  sequential consistency instead; ``--model NAME`` checks a
  consistency model (TSO/PSO/RMO/SC/coherence); ``--method NAME``
  forces an engine backend, ``--jobs N`` verifies addresses in
  parallel (``--pool thread|process|auto`` picks the worker kind),
  ``--no-prepass`` disables the polynomial pre-pass,
  ``--no-portfolio`` disables exact-vs-SAT racing on the exponential
  tier, ``--stats`` prints the engine report.  Resilience knobs:
  ``--timeout S`` caps the whole run, ``--task-timeout S`` caps each
  per-address task, ``--retries N`` sets the crash-retry budget, and
  ``--chaos SPEC`` (gated behind the ``REPRO_CHAOS`` environment
  variable) injects deterministic faults for testing.
  ``--certify {off,on,strict}`` makes every verdict carry a
  certificate validated by the independent trusted checker
  (:mod:`repro.engine.certify`): ``on`` exits 3 loudly when a verdict
  cannot be certified; ``strict`` downgrades it to
  UNKNOWN(uncertified) and continues.
* ``batch <paths...>``     — verify a directory / manifest of trace
  files as one campaign: every (file, address) task is canonicalized
  and deduplicated batch-wide *before* any solving, unique instances
  are sharded across a process pool by content fingerprint
  (``--jobs``), and verdicts are served from / written to a persistent
  content-addressed result store (``--store DIR``,
  ``--store-max-mb``).  ``--dry-run`` prints the dedup plan and
  predicted store hits without solving; ``--json FILE`` writes the
  machine-readable report (per-file verdicts, hit provenance,
  certified counts).
* ``monitor <stream>``     — tail a growing commit-order stream (the
  framed REPROSTM format of :mod:`repro.core.serialize_bin`; ``-``
  reads stdin) and verify it *incrementally*: certified verdict on the
  first violation, periodic HOLDS-so-far heartbeats on clean prefixes
  (``--heartbeat N``), bounded memory via windowed eviction
  (``--window``).  ``--follow`` keeps tailing at EOF until the END
  frame arrives; ``--timeout S`` bounds the wait.  A non-stream trace
  (REPROBIN/JSON/text) is accepted too: it carries no commit order, so
  the monitor attempts a greedy merge and escalates to the offline
  engine when the interleaving choice bites.
* ``simulate``             — run a multiprocessor simulator (atomic
  snooping ``--substrate bus`` or split-transaction
  ``--substrate directory`` with seeded interconnect delay models) on
  a workload, verify the result, optionally dump the trace.
* ``campaign``             — ground-truth fault campaign: sweep seeds
  over every (fault site × substrate × delay model) cell, verify all
  runs as one deduplicated batch (``--jobs``, ``--store``,
  ``--certify``), and hold the verifier to the latency oracle's
  contract — every visible injection flagged VIOLATED, every latent
  injection and control run HOLDS, zero false alarms.  Exit 0 iff the
  contract holds.
* ``solve <file.cnf>``     — decide a DIMACS formula with the built-in
  CDCL solver (``--via-vmc`` routes it through the Figure 4.1
  reduction instead, as a demonstration).
* ``litmus``               — print the litmus-test model table.

``verify`` and ``monitor`` accept ``-`` for the trace argument and
read stdin; the format is sniffed from the magic bytes exactly as for
a file (REPROSTM stream, then REPROBIN, then JSON-shaped text, then
the line-oriented text format).

Exit status: 0 = property holds / SAT, 1 = violated / UNSAT,
2 = usage or input error, 3 = UNKNOWN (deadline, budget, or crash
quarantine prevented a verdict — never a guess).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

from repro.core.serialize import save as save_json
from repro.core.types import Execution, schedule_str
from repro.core.vmc import verify_coherence
from repro.core.vsc import verify_sequential_consistency
from repro.engine import (
    CERTIFY_MODES,
    CHAOS_ENV,
    DEFAULT_WINDOW,
    POOL_KINDS,
    CertificationError,
    ChaosSpec,
    ResiliencePolicy,
)

#: Exit status for a verification abandoned without a verdict.
EXIT_UNKNOWN = 3


def _at_least_one(what: str):
    """argparse type factory for integer arguments that must be >= 1."""

    def parse(text: str) -> int:
        try:
            value = int(text)
        except ValueError:
            raise argparse.ArgumentTypeError(f"invalid int value: {text!r}")
        if value < 1:
            raise argparse.ArgumentTypeError(
                f"{what} must be >= 1, got {value}"
            )
        return value

    return parse


_positive_int = _at_least_one("jobs")
_window_int = _at_least_one("window")


def _nonneg_float(text: str) -> float:
    """argparse type for ``--timeout`` / ``--task-timeout``: seconds >= 0."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid float value: {text!r}")
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {value}")
    return value


def _nonneg_int(text: str) -> int:
    """argparse type for ``--retries``: an integer >= 0."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid int value: {text!r}")
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {value}")
    return value


def _parse_trace_bytes(raw: bytes, source: str, suffix: str = "") -> Execution:
    """Decode trace bytes from any supported format (the shared
    sniffing decoder lives in :func:`repro.core.serialize.parse_trace_bytes`
    so the batch engine can use it without importing the CLI)."""
    from repro.core.serialize import parse_trace_bytes

    return parse_trace_bytes(raw, source, suffix)


def _load_trace(path_str: str) -> Execution:
    if path_str == "-":
        # stdin: buffer everything, then sniff the magic bytes exactly
        # as for a file.
        return _parse_trace_bytes(sys.stdin.buffer.read(), "<stdin>")
    path = Path(path_str)
    if not path.exists():
        raise FileNotFoundError(f"trace file {path} does not exist")
    return _parse_trace_bytes(path.read_bytes(), str(path), path.suffix)


def _resilience_from_args(args: argparse.Namespace) -> ResiliencePolicy | None:
    """Build the engine policy from the verify flags (None = defaults).

    ``--chaos`` is gated behind the ``REPRO_CHAOS`` environment
    variable so a stray flag in a production pipeline cannot inject
    faults; using it without the variable is a usage error.
    """
    chaos = None
    if args.chaos is not None:
        if not os.environ.get(CHAOS_ENV):
            raise ValueError(
                f"--chaos requires the {CHAOS_ENV} environment variable "
                f"to be set (fault injection is test-only)"
            )
        chaos = ChaosSpec.parse(args.chaos)
    if (
        args.timeout is None
        and args.task_timeout is None
        and args.retries is None
        and chaos is None
    ):
        return None
    policy = ResiliencePolicy(
        timeout=args.timeout,
        task_timeout=args.task_timeout,
        retries=args.retries if args.retries is not None else 2,
        chaos=chaos,
    )
    return policy


def _print_result(result, label: str, want_witness: bool, want_stats: bool) -> int:
    unknown = getattr(result, "unknown", False)
    verdict = "UNKNOWN" if unknown else "holds" if result else "VIOLATED"
    print(f"{label}: {verdict}  (method: {result.method})")
    if result and result.schedule and want_witness:
        print(f"witness: {schedule_str(result.schedule)}")
    if not result:
        print(f"reason: {result.reason}")
    if want_stats and result.report is not None:
        print(result.report.format())
    if unknown:
        return EXIT_UNKNOWN
    return 0 if result else 1


def _store_from_args(args: argparse.Namespace, resilience):
    """Open the persistent result store named by ``--store`` (None when
    the flag is absent); chaos store faults ride the resilience policy."""
    if not getattr(args, "store", None):
        return None
    from repro.engine.store import ResultStore

    chaos = resilience.chaos if resilience is not None else None
    return ResultStore(
        args.store, max_mb=args.store_max_mb, chaos=chaos
    )


def cmd_verify(args: argparse.Namespace) -> int:
    from time import perf_counter

    t_load = perf_counter()
    try:
        execution = _load_trace(args.trace)
    except (OSError, ValueError, FileNotFoundError) as e:
        print(f"error: {e}", file=sys.stderr)
        return 2
    t_load = perf_counter() - t_load
    try:
        resilience = _resilience_from_args(args)
        store = _store_from_args(args, resilience)
        if store is not None and (args.sc or args.model):
            print(
                "error: --store applies to coherence verification "
                "(not --sc / --model)",
                file=sys.stderr,
            )
            return 2
        cache = None
        if store is not None:
            from repro.engine import ResultCache

            cache = ResultCache(store=store)
        if args.model:
            from repro.consistency.restrict import verifier_for

            name = (
                args.model
                if args.model.lower() == "coherence"
                else args.model.upper()
            )
            result = verifier_for(name)(execution)
            if result.report is not None:
                result.report.stage_times["load"] = t_load
            return _print_result(result, args.model, args.witness, args.stats)
        if args.sc:
            result = verify_sequential_consistency(
                execution,
                method=args.method,
                prepass=not args.no_prepass,
                portfolio=args.portfolio,
                resilience=resilience,
                certify=args.certify,
            )
            label = "sequential consistency"
        else:
            result = verify_coherence(
                execution,
                method=args.method,
                jobs=args.jobs,
                cache=cache,
                pool=args.pool,
                prepass=not args.no_prepass,
                portfolio=args.portfolio,
                resilience=resilience,
                certify=args.certify,
            )
            label = "coherence"
    except CertificationError as e:
        # --certify on: a verdict failed the trusted checker.  Producer
        # or checker is wrong — either way the verdict is untrustworthy,
        # and that is an UNKNOWN outcome, not a usage error.
        print(f"certification failed: {e}", file=sys.stderr)
        return EXIT_UNKNOWN
    except ValueError as e:
        # Unknown method names and inapplicable forced backends
        # (BackendInapplicableError, which lists the applicable ones)
        # are usage errors.
        print(f"error: {e}", file=sys.stderr)
        return 2
    if result.report is not None:
        result.report.stage_times["load"] = t_load
    return _print_result(result, label, args.witness, args.stats)


def _expand_batch_paths(paths: list[str], manifest: str | None) -> list[str]:
    """Resolve the batch's inputs: explicit paths, directories (their
    non-hidden files, sorted), and/or a manifest file (one path per
    line, ``#`` comments)."""
    out: list[str] = []
    if manifest:
        text = Path(manifest).read_text(encoding="utf-8")
        for line in text.splitlines():
            line = line.strip()
            if line and not line.startswith("#"):
                out.append(line)
    for p in paths:
        path = Path(p)
        if path.is_dir():
            out.extend(
                str(q)
                for q in sorted(path.iterdir())
                if q.is_file() and not q.name.startswith(".")
            )
        else:
            out.append(p)
    return out


def cmd_batch(args: argparse.Namespace) -> int:
    from repro.engine.batch import batch_exit_code, run_batch

    try:
        resilience = _resilience_from_args(args)
        store = _store_from_args(args, resilience)
        paths = _expand_batch_paths(args.paths, args.manifest)
    except (OSError, ValueError) as e:
        print(f"error: {e}", file=sys.stderr)
        return 2
    if not paths:
        print("error: no trace files to verify", file=sys.stderr)
        return 2
    if args.store_quota_report and store is None:
        print(
            "error: --store-quota-report needs a --store to report on",
            file=sys.stderr,
        )
        return 2
    report = run_batch(
        paths,
        jobs=args.jobs,
        store=store,
        resilience=resilience,
        certify=args.certify,
        prepass=not args.no_prepass,
        portfolio=args.portfolio,
        dry_run=args.dry_run,
    )
    if args.store_quota_report and store is not None:
        report["store_quota"] = store.quota_report()
    if args.json:
        text = json.dumps(report, indent=2, default=str)
        if args.json == "-":
            # Machine consumers pipe stdout: the report is the whole
            # output, no human-readable lines mixed in.
            print(text)
            return batch_exit_code(report)
        Path(args.json).write_text(text + "\n", encoding="utf-8")
    if args.dry_run:
        print(report["plan"]["text"])
        return batch_exit_code(report)
    if args.stats:
        print(report["plan"]["text"])
    for entry in report["files"]:
        prov = entry["provenance"]
        served = " ".join(
            f"{kind}={prov[kind]}"
            for kind in ("solved", "memory", "store", "dedup")
            if prov.get(kind)
        )
        line = f"{entry['path']}: {entry['verdict']}"
        if served:
            line += f"  ({served})"
        print(line)
        if entry["verdict"] in ("VIOLATED", "UNKNOWN", "error"):
            print(f"  reason: {entry['reason']}")
    totals = report["totals"]
    print(
        f"batch: {totals['files']} files  holds={totals['holds']} "
        f"violated={totals['violated']} unknown={totals['unknown']} "
        f"errors={totals['errors']}  wall={totals['wall_s']:.3f}s"
    )
    print(
        f"dedup: {totals['tasks']} tasks -> {totals['unique']} unique; "
        f"solved={totals['solved']} memory={totals['memory_hits']} "
        f"store={totals['store_hits']} dedup={totals['dedup_served']} "
        f"certified={totals['certified']}"
    )
    if args.stats and report.get("store") is not None and "store" in totals:
        s = totals["store"]
        print(
            f"store: hits={s['hits']} misses={s['misses']} "
            f"stores={s['stores']} evictions={s['evictions']} "
            f"tombstones={s['tombstones']} torn={s['torn_records']}"
        )
    if args.store_quota_report and "store_quota" in report:
        _print_quota_report(report["store_quota"])
    return batch_exit_code(report)


def _format_age(age_s) -> str:
    if age_s is None:
        return "-"
    if age_s >= 3600:
        return f"{age_s / 3600:.1f}h"
    if age_s >= 60:
        return f"{age_s / 60:.1f}m"
    return f"{age_s:.1f}s"


def _print_quota_report(quota: dict) -> None:
    """Render per-shard occupancy + LRU ages (``--store-quota-report``)."""
    totals = quota["totals"]
    cap = (
        f", cap {totals['max_bytes'] / (1024 * 1024):.1f} MB"
        if totals.get("max_bytes") is not None
        else ", no cap"
    )
    print(
        f"store quota: {totals['entries']} entries, "
        f"{totals['bytes']} bytes{cap}"
    )
    print("  shard  entries      bytes    pct   lru-age   mru-age")
    for row in quota["shards"]:
        if not row["entries"] and not row["bytes"]:
            continue
        pct = f"{row['pct']:.1f}%" if row["pct"] is not None else "-"
        print(
            f"  {row['shard']:>5}  {row['entries']:>7}  {row['bytes']:>9}"
            f"  {pct:>5}  {_format_age(row['lru_age_s']):>8}"
            f"  {_format_age(row['mru_age_s']):>8}"
        )


def _print_heartbeat(verdict) -> None:
    s = verdict.stats
    print(
        f"holds so far: {s['ops']} ops, {s['addresses']} addresses, "
        f"window {s['window']} (peak {s['peak_window']}), "
        f"evicted {s['evicted']}, {s['ops_per_s']:,.0f} ops/s"
    )


def _finish_monitor(verdict, want_stats: bool) -> int:
    """Print a closing stream verdict and map it to an exit status."""
    result = verdict.result
    if verdict.kind == "violation":
        where = f" at op {verdict.op_index}" if verdict.op_index >= 0 else ""
        print(f"coherence: VIOLATED{where}  (method: {result.method})")
        print(f"reason: {result.reason}")
        cert = result.certificate
        if cert is not None:
            print(f"certificate: {getattr(cert, 'kind', 'present')}")
        code = 1
    elif verdict.kind == "unknown":
        print(f"coherence: UNKNOWN  (method: {result.method})")
        print(f"reason: {result.reason or result.unknown_reason}")
        code = EXIT_UNKNOWN
    else:
        print(f"coherence: holds  (method: {result.method})")
        code = 0
    s = verdict.stats
    if want_stats and s:
        escalated = s.get("escalated")
        if escalated:
            print(f"escalated to the offline engine: {escalated}")
        print(
            f"stats: {s['ops']} ops ({s['syncs']} sync), "
            f"{s['addresses']} addresses, "
            f"peak window {s['peak_window']} ops, "
            f"evicted {s['evicted']}, {s['heartbeats']} heartbeats, "
            f"{s['elapsed_s']:.3f}s, {s['ops_per_s']:,.0f} ops/s"
        )
    return code


def _monitor_stream(fh, head: bytes, source: str, args, deadline) -> int:
    """Tail a framed REPROSTM stream through a StreamingVerifier."""
    from time import monotonic, sleep

    from repro.core import serialize_bin
    from repro.engine.streaming import StreamingVerifier

    reader = serialize_bin.FrameReader()
    reader.feed(head)
    verifier = None
    while True:
        events = list(reader.events())
        if verifier is None and reader.n_procs is not None:
            verifier = StreamingVerifier(
                reader.n_procs,
                window=args.window,
                certify=args.certify,
                heartbeat=args.heartbeat,
            )
        if events:
            for verdict in verifier.feed(events):
                if verdict.kind == "heartbeat":
                    _print_heartbeat(verdict)
                else:
                    return _finish_monitor(verdict, args.stats)
        if deadline is not None and monotonic() >= deadline:
            ops = verifier.stats.ops if verifier is not None else 0
            print(
                f"coherence: UNKNOWN  (deadline expired after {ops} ops; "
                f"the consumed prefix held)"
            )
            return EXIT_UNKNOWN
        data = fh.read(1 << 16)
        if data:
            reader.feed(data)
            continue
        if args.follow and not reader.ended:
            if fh.seekable():
                # A regular file can still grow — keep tailing.
                sleep(0.05)
                continue
            # A pipe at EOF is final: the writer is gone.  A clean
            # trailing frame boundary without END is the writer
            # choosing to stop mid-stream — fall through and decide
            # the consumed prefix like non-follow mode.  Dying *inside*
            # a frame is damage: report it with the byte offset and
            # exit 2, exactly like `verify` on the same bytes.
            if reader.pending_bytes:
                print(
                    f"error: {source}: stream is incomplete (writer "
                    f"exited mid-frame; {reader.pending_bytes} bytes "
                    f"still buffered) at byte {reader.bytes_consumed}",
                    file=sys.stderr,
                )
                return 2
        break
    # EOF without an END frame: the consumed prefix is still a sound
    # thing to decide — finalize on what arrived.
    if verifier is None:
        print(f"error: {source}: stream ends inside the header", file=sys.stderr)
        return 2
    if reader.pending_bytes:
        print(
            f"note: {source}: stream ends mid-frame "
            f"({reader.pending_bytes} bytes buffered); deciding the "
            f"consumed prefix"
        )
    return _finish_monitor(verifier.finalize(), args.stats)


def cmd_monitor(args: argparse.Namespace) -> int:
    from time import monotonic

    from repro.core import serialize_bin
    from repro.engine.streaming import monitor_execution

    deadline = monotonic() + args.timeout if args.timeout else None
    if args.stream == "-":
        fh, source, close = sys.stdin.buffer, "<stdin>", False
    else:
        path = Path(args.stream)
        if not path.exists():
            print(f"error: stream file {path} does not exist", file=sys.stderr)
            return 2
        fh, source, close = open(path, "rb"), str(path), True
    try:
        head = fh.read(len(serialize_bin.STREAM_MAGIC))
        if serialize_bin.sniff_stream(head):
            return _monitor_stream(fh, head, source, args, deadline)
        # Not a framed stream: buffer the rest and monitor the complete
        # trace (it carries no commit order, so the monitor chooses one
        # greedily and escalates to the offline engine when stuck).
        raw = head + fh.read()
        suffix = "" if source == "<stdin>" else Path(source).suffix
        execution = _parse_trace_bytes(raw, source, suffix)
        verdict = monitor_execution(
            execution,
            window=args.window,
            certify=args.certify,
            heartbeat=args.heartbeat,
            on_heartbeat=_print_heartbeat,
        )
        return _finish_monitor(verdict, args.stats)
    except CertificationError as e:
        print(f"certification failed: {e}", file=sys.stderr)
        return EXIT_UNKNOWN
    except ValueError as e:
        # Malformed frames, out-of-program-order streams, bad traces.
        print(f"error: {e}", file=sys.stderr)
        return 2
    finally:
        if close:
            fh.close()


def _serve_heartbeat_line(status: dict) -> str:
    q = status["queue"]
    w = status["workers"]
    r = status["requests"]
    return (
        f"serve: {'ready' if status['ready'] else 'draining'} "
        f"uptime={status['uptime_s']:.0f}s "
        f"queue={q['depth']}/{q['limit']} "
        f"workers={w['alive']}/{w['configured']} "
        f"ok={r['ok']} retry_after={r['retry_after']} "
        f"errors={r['errors']} shutdown={r['shutdown']}"
    )


def cmd_serve(args: argparse.Namespace) -> int:
    from repro.service import ServiceConfig, VerificationServer

    try:
        resilience = _resilience_from_args(args)
    except ValueError as e:
        print(f"error: {e}", file=sys.stderr)
        return 2
    if bool(args.socket) == bool(args.stdio):
        print(
            "error: pass exactly one of --socket PATH or --stdio",
            file=sys.stderr,
        )
        return 2

    def on_heartbeat(status: dict) -> None:
        print(_serve_heartbeat_line(status), file=sys.stderr, flush=True)

    config = ServiceConfig(
        socket_path=args.socket,
        stdio=args.stdio,
        workers=args.workers,
        queue_depth=args.queue_depth,
        max_request_bytes=int(args.max_request_mb * 1024 * 1024),
        store_root=args.store,
        store_quota_mb=args.store_max_mb,
        max_tenants=args.max_tenants,
        certify=args.certify,
        prepass=not args.no_prepass,
        portfolio=args.portfolio,
        resilience=resilience,
        drain_grace_s=args.drain_grace,
        heartbeat_s=args.heartbeat,
        on_heartbeat=on_heartbeat if args.heartbeat else None,
    )
    server = VerificationServer(config)
    try:
        server.start()
    except OSError as e:
        print(f"error: {e}", file=sys.stderr)
        return 2
    if args.socket:
        print(
            f"serving on {args.socket} ({args.workers} workers, "
            f"queue depth {args.queue_depth})",
            file=sys.stderr,
            flush=True,
        )
    code = server.serve_forever()
    print(
        f"drained ({server.drain_reason or 'done'}): "
        + _serve_heartbeat_line(server.status()),
        file=sys.stderr,
    )
    return code


#: Default coherence protocol per simulator substrate.
_SUBSTRATE_PROTOCOLS = {"bus": "MESI", "directory": "MSI"}


def cmd_simulate(args: argparse.Namespace) -> int:
    from repro.memsys import (
        SUBSTRATES,
        FaultConfig,
        FaultKind,
        SystemConfig,
        random_shared_workload,
        supported_faults,
    )

    protocol = args.protocol or _SUBSTRATE_PROTOCOLS[args.substrate]
    if args.substrate == "directory" and protocol != "MSI":
        print(
            f"error: the directory substrate implements MSI only; "
            f"--protocol {protocol} is a bus-substrate option",
            file=sys.stderr,
        )
        return 2
    scripts, initial = random_shared_workload(
        num_processors=args.processors,
        ops_per_processor=args.ops,
        num_addresses=args.addresses,
        values=args.values,
        seed=args.seed,
    )
    faults = FaultConfig.none()
    if args.fault:
        supported = supported_faults(args.substrate)
        try:
            kind = FaultKind(args.fault)
        except ValueError:
            kind = None
        if kind is None or kind not in supported:
            print(
                f"error: fault {args.fault!r} is not a "
                f"{args.substrate}-substrate site; choose from "
                f"{sorted(k.value for k in supported)}",
                file=sys.stderr,
            )
            return 2
        faults = FaultConfig.single(kind, seed=args.seed, rate=args.fault_rate)
    cfg = SystemConfig(
        num_processors=args.processors,
        protocol=protocol,
        seed=args.seed,
        num_homes=args.homes,
        delay_model=args.delay_model,
    )
    try:
        run = SUBSTRATES[args.substrate](
            cfg, scripts, initial_memory=initial, faults=faults
        ).run()
    except ValueError as e:
        print(f"error: {e}", file=sys.stderr)
        return 2
    print(run.summary())
    print(f"traffic: {run.bus_traffic}")
    if run.oracle is not None and run.fault_events:
        o = run.oracle
        print(
            f"oracle: expects {o.expected_verdict} — "
            f"{len(o.visible_events)} visible, "
            f"{len(o.latent_events)} latent injections"
        )
    result = verify_coherence(
        run.execution,
        write_orders=run.write_orders,
        jobs=args.jobs,
        pool=args.pool,
    )
    print(f"coherence: {'holds' if result else 'VIOLATED'}")
    if not result:
        print(f"reason: {result.reason}")
    if args.stats and result.report is not None:
        print(result.report.format())
    if args.out:
        save_json(run.execution, args.out)
        print(f"trace written to {args.out}")
    return 0 if result else 1


def _parse_campaign_sites(text: str | None, substrates: list[str]):
    """Resolve ``--sites a,b,c`` to FaultKind members (None = all)."""
    from repro.memsys import FaultKind, supported_faults

    if text is None:
        return None
    anywhere = set()
    for s in substrates:
        anywhere |= set(supported_faults(s))
    sites = []
    for token in text.split(","):
        token = token.strip()
        if not token:
            continue
        try:
            kind = FaultKind(token)
        except ValueError:
            kind = None
        if kind is None or kind not in anywhere:
            raise ValueError(
                f"unknown fault site {token!r} for substrates "
                f"{substrates}; choose from "
                f"{sorted(k.value for k in anywhere)}"
            )
        sites.append(kind)
    if not sites:
        raise ValueError("--sites named no fault sites")
    return sites


def cmd_campaign(args: argparse.Namespace) -> int:
    from repro.engine import ResultCache
    from repro.memsys import SUBSTRATES, campaign_table, run_campaign

    substrates = [
        s.strip() for s in args.substrates.split(",") if s.strip()
    ]
    try:
        for s in substrates:
            if s not in SUBSTRATES:
                raise ValueError(
                    f"unknown substrate {s!r}; choose from "
                    f"{sorted(SUBSTRATES)}"
                )
        sites = _parse_campaign_sites(args.sites, substrates)
        resilience = _resilience_from_args(args)
        store = _store_from_args(args, resilience)
    except (OSError, ValueError) as e:
        print(f"error: {e}", file=sys.stderr)
        return 2
    delay_models = [
        d.strip() for d in args.delay_models.split(",") if d.strip()
    ]
    cache = ResultCache(store=store)

    def say(msg: str) -> None:
        if not args.quiet:
            print(f"campaign: {msg}", file=sys.stderr, flush=True)

    report = run_campaign(
        sites=sites,
        substrates=substrates,
        runs_per_cell=args.runs_per_cell,
        num_processors=args.processors,
        ops_per_processor=args.ops,
        num_addresses=args.addresses,
        write_fraction=args.write_fraction,
        fault_rate=args.fault_rate,
        max_events=args.max_events if args.max_events else None,
        base_seed=args.seed,
        values=args.values,
        workload=args.workload,
        delay_models=delay_models,
        num_homes=args.homes,
        jobs=args.jobs,
        cache=cache,
        store=store,
        run_cache=args.run_cache,
        resilience=resilience,
        certify=args.certify,
        progress=say,
    )
    if args.json:
        text = json.dumps(report.to_json(), indent=2, default=str)
        if args.json == "-":
            print(text)
            return 0 if report.contract_ok else 1
        Path(args.json).write_text(text + "\n", encoding="utf-8")
    print(campaign_table(report, cache=cache))
    return 0 if report.contract_ok else 1


def cmd_solve(args: argparse.Namespace) -> int:
    from repro.sat.dimacs import read_dimacs

    try:
        cnf = read_dimacs(args.cnf)
    except (OSError, ValueError) as e:
        print(f"error: {e}", file=sys.stderr)
        return 2
    if args.via_vmc:
        from repro.reductions.decode import solve_sat_via_vmc

        model = solve_sat_via_vmc(cnf)
        how = "via the Figure 4.1 VMC reduction"
    else:
        from repro.sat import solve

        model = solve(cnf, solver=args.solver)
        how = f"with {args.solver}"
    if model is None:
        print(f"UNSAT ({how})")
        return 1
    lits = " ".join(
        str(v if model.get(v) else -v) for v in range(1, cnf.num_vars + 1)
    )
    print(f"SAT ({how})\nv {lits} 0")
    return 0


def cmd_litmus(_args: argparse.Namespace) -> int:
    from repro.consistency.litmus import litmus_table

    print(litmus_table())
    return 0


def _add_store_args(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--store",
        default=None,
        metavar="DIR",
        help="persistent content-addressed result store directory: "
        "verdicts are read through (and re-validated on load under "
        "--certify) and written through, so isomorphic instances are "
        "never solved twice across runs",
    )
    p.add_argument(
        "--store-max-mb",
        type=_nonneg_float,
        default=None,
        metavar="MB",
        help="cap the store's on-disk footprint; overweight shards are "
        "compacted LRU-style (least recently hit entries evicted)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Trace-based verification of memory coherence and "
        "consistency (Cantin, Lipasti & Smith, SPAA 2003)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("verify", help="verify a trace file")
    p.add_argument(
        "trace",
        help="trace file in any supported format (REPROBIN, REPROSTM "
        "stream, JSON, or text); '-' reads stdin",
    )
    p.add_argument("--sc", action="store_true", help="check sequential consistency")
    p.add_argument("--model", help="check a consistency model (TSO/PSO/RMO)")
    p.add_argument("--witness", action="store_true", help="print the witness schedule")
    p.add_argument(
        "--method",
        default="auto",
        help="force a verification backend (e.g. exact, readmap, sat-cdcl); "
        "errors with the applicable backends when it cannot decide the trace",
    )
    p.add_argument(
        "--jobs",
        type=_positive_int,
        default=1,
        help="verify addresses in parallel on N workers (must be >= 1)",
    )
    p.add_argument(
        "--pool",
        choices=POOL_KINDS + ("auto",),
        default="auto",
        help="worker pool kind for --jobs > 1 (threads overlap waits; "
        "processes scale across cores; auto picks processes exactly "
        "when heavy exponential-tier tasks survive the pre-pass)",
    )
    p.add_argument(
        "--no-prepass",
        action="store_true",
        help="skip the polynomial pre-pass (inference/elimination) before "
        "the exponential backends",
    )
    p.add_argument(
        "--portfolio",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="race exact search vs SAT on exponential-tier tasks, first "
        "sound verdict wins (--no-portfolio keeps the router's single "
        "choice)",
    )
    p.add_argument(
        "--certify",
        choices=CERTIFY_MODES,
        default="off",
        help="attach a certificate to every verdict and validate it "
        "with the independent trusted checker: 'on' fails loudly when "
        "a verdict cannot be certified (exit 3), 'strict' downgrades "
        "it to UNKNOWN(uncertified) (exit 3) and keeps going",
    )
    p.add_argument(
        "--stats",
        action="store_true",
        help="print the engine report (backend per address, prepass "
        "counters, cache hits, timing)",
    )
    p.add_argument(
        "--timeout",
        type=_nonneg_float,
        default=None,
        metavar="S",
        help="wall-clock budget for the whole run in seconds; on expiry "
        "unfinished addresses report UNKNOWN (exit 3), never a guess",
    )
    p.add_argument(
        "--task-timeout",
        type=_nonneg_float,
        default=None,
        metavar="S",
        help="soft deadline per per-address task in seconds (observed "
        "cooperatively by every backend and portfolio leg)",
    )
    p.add_argument(
        "--retries",
        type=_nonneg_int,
        default=None,
        metavar="N",
        help="crash retries per task before it is quarantined to "
        "in-process execution (default 2)",
    )
    p.add_argument(
        "--chaos",
        default=None,
        metavar="SPEC",
        help="inject deterministic faults, e.g. "
        "'crash=0.2,stall=0.1,seed=7'; test-only, requires the "
        "REPRO_CHAOS environment variable to be set",
    )
    _add_store_args(p)
    p.set_defaults(func=cmd_verify)

    p = sub.add_parser(
        "batch",
        help="verify a directory/manifest of trace files as one "
        "deduplicated, sharded campaign",
    )
    p.add_argument(
        "paths",
        nargs="*",
        help="trace files and/or directories (a directory contributes "
        "its non-hidden files, sorted)",
    )
    p.add_argument(
        "--manifest",
        default=None,
        metavar="FILE",
        help="file listing trace paths, one per line ('#' comments)",
    )
    p.add_argument(
        "--jobs",
        type=_positive_int,
        default=1,
        help="shard unique instances over N worker processes; workers "
        "are partitioned by store shard, so they never contend on a "
        "shard lock",
    )
    p.add_argument(
        "--dry-run",
        action="store_true",
        help="print the dedup plan (N files -> M unique instances, "
        "predicted store hits, admission windows) without solving",
    )
    p.add_argument(
        "--json",
        default=None,
        metavar="FILE",
        help="write the machine-readable batch report to FILE "
        "('-' prints it to stdout)",
    )
    p.add_argument(
        "--no-prepass",
        action="store_true",
        help="skip the polynomial pre-pass before the exponential "
        "backends",
    )
    p.add_argument(
        "--portfolio",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="race exact search vs SAT on exponential-tier tasks",
    )
    p.add_argument(
        "--certify",
        choices=CERTIFY_MODES,
        default="off",
        help="certify every verdict (including store hits, which are "
        "re-validated on load) with the independent trusted checker",
    )
    p.add_argument(
        "--stats",
        action="store_true",
        help="print the dedup plan and persistent-store counters with "
        "the per-file verdicts",
    )
    p.add_argument(
        "--timeout",
        type=_nonneg_float,
        default=None,
        metavar="S",
        help="wall-clock budget for the whole batch; instances not "
        "admitted before expiry report UNKNOWN(budget)",
    )
    p.add_argument(
        "--task-timeout",
        type=_nonneg_float,
        default=None,
        metavar="S",
        help="soft deadline per unique instance in seconds",
    )
    p.add_argument(
        "--retries",
        type=_nonneg_int,
        default=None,
        metavar="N",
        help="pool-breakage retries per chunk before it is quarantined "
        "to in-process execution (default 2)",
    )
    p.add_argument(
        "--chaos",
        default=None,
        metavar="SPEC",
        help="inject deterministic faults (includes slow-store / "
        "corrupt-store); test-only, requires REPRO_CHAOS",
    )
    _add_store_args(p)
    p.add_argument(
        "--store-quota-report",
        action="store_true",
        help="after the campaign, print per-shard store occupancy and "
        "LRU/MRU entry ages (the observability basis for tenant quota "
        "tuning; also lands in the --json report as 'store_quota')",
    )
    p.set_defaults(func=cmd_batch)

    p = sub.add_parser(
        "monitor",
        help="tail a commit-order stream and verify it incrementally",
    )
    p.add_argument(
        "stream",
        help="framed REPROSTM stream file ('-' reads stdin); a plain "
        "trace in any verify format is accepted too and monitored "
        "via a greedy merge with offline escalation",
    )
    p.add_argument(
        "--window",
        type=_window_int,
        default=DEFAULT_WINDOW,
        metavar="N",
        help=f"certificate-window size per address (default "
        f"{DEFAULT_WINDOW}): decided prefixes beyond it are evicted "
        f"and summarized into the frontier",
    )
    p.add_argument(
        "--heartbeat",
        type=_nonneg_int,
        default=0,
        metavar="N",
        help="print a HOLDS-so-far heartbeat with throughput/memory "
        "stats every N operations (0 = off)",
    )
    p.add_argument(
        "--certify",
        choices=CERTIFY_MODES,
        default="off",
        help="certify every verdict with the independent trusted "
        "checker: violations carry a checked certificate over the "
        "retained window, heartbeats a replayed witness; 'on' exits 3 "
        "loudly on an uncertifiable verdict, 'strict' downgrades it to "
        "UNKNOWN(uncertified)",
    )
    p.add_argument(
        "--stats",
        action="store_true",
        help="print steady-state ops/s, peak window size and eviction "
        "counters with the closing verdict",
    )
    p.add_argument(
        "--timeout",
        type=_nonneg_float,
        default=None,
        metavar="S",
        help="wall-clock budget; on expiry the monitor reports UNKNOWN "
        "(exit 3) for the unconsumed suffix (checked between chunks)",
    )
    p.add_argument(
        "--follow",
        action="store_true",
        help="keep tailing the file at EOF until the END frame arrives "
        "(or --timeout expires)",
    )
    p.set_defaults(func=cmd_monitor)

    p = sub.add_parser(
        "serve",
        help="run the verification daemon: line-framed requests over a "
        "Unix socket (or stdin/stdout), certified verdicts back, "
        "bounded-queue backpressure, per-tenant store quotas, "
        "graceful SIGTERM drain",
    )
    p.add_argument(
        "--socket",
        default=None,
        metavar="PATH",
        help="listen on a Unix socket at PATH (NDJSON requests, or raw "
        "REPROSTM/REPROBIN — one trace per connection)",
    )
    p.add_argument(
        "--stdio",
        action="store_true",
        help="serve a single client over stdin/stdout instead of a "
        "socket (drains on EOF)",
    )
    p.add_argument(
        "--workers",
        type=_positive_int,
        default=2,
        help="worker threads draining the request queue in "
        "same-tenant batches through the dedup engine (default 2)",
    )
    p.add_argument(
        "--queue-depth",
        type=_positive_int,
        default=64,
        metavar="N",
        help="bounded request queue depth; overload answers "
        "RETRY_AFTER immediately instead of buffering (default 64)",
    )
    p.add_argument(
        "--max-request-mb",
        type=_nonneg_float,
        default=8.0,
        metavar="MB",
        help="per-request size cap; oversized requests are rejected "
        "with a byte-offset diagnostic (default 8)",
    )
    p.add_argument(
        "--max-tenants",
        type=_positive_int,
        default=64,
        metavar="N",
        help="cap on distinct tenant namespaces (default 64)",
    )
    p.add_argument(
        "--certify",
        choices=CERTIFY_MODES,
        default="off",
        help="default certification mode for requests that do not "
        "choose their own",
    )
    p.add_argument(
        "--no-prepass",
        action="store_true",
        help="skip the polynomial pre-pass before the exponential "
        "backends",
    )
    p.add_argument(
        "--portfolio",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="race exact search vs SAT on exponential-tier tasks",
    )
    p.add_argument(
        "--timeout",
        type=_nonneg_float,
        default=None,
        metavar="S",
        help="wall-clock budget per worker batch; expiry answers "
        "UNKNOWN(timeout)/UNKNOWN(budget), never a guess",
    )
    p.add_argument(
        "--task-timeout",
        type=_nonneg_float,
        default=None,
        metavar="S",
        help="soft deadline per unique instance in seconds",
    )
    p.add_argument(
        "--retries",
        type=_nonneg_int,
        default=None,
        metavar="N",
        help="crash retries per task before quarantine (default 2)",
    )
    p.add_argument(
        "--drain-grace",
        type=_nonneg_float,
        default=5.0,
        metavar="S",
        help="seconds in-flight requests get to finish on "
        "SIGTERM/drain before being answered UNKNOWN(shutdown) "
        "(default 5)",
    )
    p.add_argument(
        "--heartbeat",
        type=_nonneg_float,
        default=0.0,
        metavar="S",
        help="print a liveness/readiness heartbeat line to stderr "
        "every S seconds (0 = off); the same payload answers the "
        "'ping' op",
    )
    p.add_argument(
        "--chaos",
        default=None,
        metavar="SPEC",
        help="inject deterministic faults (adds conn-drop to the "
        "engine sites); test-only, requires REPRO_CHAOS",
    )
    _add_store_args(p)
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser("simulate", help="run a multiprocessor simulator")
    p.add_argument(
        "--substrate",
        choices=["bus", "directory"],
        default="bus",
        help="memory system: 'bus' (atomic snooping MSI/MESI) or "
        "'directory' (split-transaction MSI over a message "
        "interconnect with NACK/retry and writeback races)",
    )
    p.add_argument("--processors", type=int, default=4)
    p.add_argument("--ops", type=int, default=100)
    p.add_argument("--addresses", type=int, default=4)
    p.add_argument("--values", choices=["unique", "small"], default="unique")
    p.add_argument(
        "--protocol",
        choices=["MSI", "MESI"],
        default=None,
        help="coherence protocol (default: MESI on the bus, MSI on the "
        "directory; the directory substrate is MSI-only)",
    )
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--fault",
        help="inject a fault site (e.g. dropped-write, wb-race); must "
        "be one the chosen substrate supports",
    )
    p.add_argument("--fault-rate", type=float, default=0.05)
    p.add_argument(
        "--delay-model",
        default="fixed:1",
        metavar="SPEC",
        help="directory interconnect delays: fixed:T, uniform:LO:HI, "
        "or numa:LOCAL:REMOTE[:SOCKET] (ignored on the bus)",
    )
    p.add_argument(
        "--homes",
        type=_positive_int,
        default=2,
        help="directory home nodes sharding the address space "
        "(ignored on the bus)",
    )
    p.add_argument("--out", help="write the recorded trace to this JSON file")
    p.add_argument("--jobs", type=_positive_int, default=1,
                   help="verify addresses in parallel on N workers")
    p.add_argument("--pool", choices=POOL_KINDS + ("auto",), default="auto",
                   help="worker pool kind for --jobs > 1")
    p.add_argument("--stats", action="store_true",
                   help="print the engine report after verification")
    p.set_defaults(func=cmd_simulate)

    p = sub.add_parser(
        "campaign",
        help="ground-truth fault campaign: sweep seeds over every "
        "(fault site x substrate x delay model) cell, verify all runs "
        "as one deduplicated batch, and hold the verifier to the "
        "oracle's visible=>VIOLATED / latent=>HOLDS contract",
    )
    p.add_argument(
        "--substrates",
        default="bus,directory",
        metavar="LIST",
        help="comma-separated substrates to sweep (default both)",
    )
    p.add_argument(
        "--sites",
        default=None,
        metavar="LIST",
        help="comma-separated fault sites (default: every site the "
        "chosen substrates support; sites a substrate lacks are "
        "skipped for it)",
    )
    p.add_argument(
        "--runs-per-cell",
        type=_positive_int,
        default=20,
        metavar="N",
        help="seeded fault-injected runs per cell, plus one fault-free "
        "control run (default 20)",
    )
    p.add_argument("--processors", type=_positive_int, default=4)
    p.add_argument("--ops", type=_positive_int, default=40,
                   help="operations per processor per run (default 40)")
    p.add_argument("--addresses", type=_positive_int, default=3)
    p.add_argument("--write-fraction", type=_nonneg_float, default=0.35)
    p.add_argument("--fault-rate", type=_nonneg_float, default=0.1)
    p.add_argument(
        "--max-events",
        type=_nonneg_int,
        default=1,
        metavar="N",
        help="cap injections per run (0 = uncapped; default 1)",
    )
    p.add_argument("--seed", type=int, default=0,
                   help="base seed; every run derives a distinct seed")
    p.add_argument("--values", choices=["unique", "small"], default="unique")
    p.add_argument(
        "--workload",
        choices=["random", "producer-consumer", "false-sharing", "lock"],
        default="random",
        help="workload shape per run: uniform random mix, chain-style "
        "producer/consumer, one hammered line, or test-and-set lock "
        "contention (default random)",
    )
    p.add_argument(
        "--delay-models",
        default="fixed:1",
        metavar="LIST",
        help="comma-separated interconnect delay models for the "
        "directory substrate (the bus is atomic); e.g. "
        "'fixed:1,uniform:1:4,numa:1:6'",
    )
    p.add_argument("--homes", type=_positive_int, default=2,
                   help="directory home nodes (default 2)")
    p.add_argument(
        "--run-cache",
        default=None,
        metavar="DIR",
        help="per-run outcome cache directory: a repeated sweep with "
        "the same parameters replays recorded verdicts instead of "
        "re-simulating and re-verifying (resume/extend mega-campaigns)",
    )
    p.add_argument(
        "--jobs",
        type=_positive_int,
        default=1,
        help="shard deduplicated instances over N worker processes",
    )
    p.add_argument(
        "--certify",
        choices=CERTIFY_MODES,
        default="off",
        help="certify every verdict with the independent trusted "
        "checker; the ground-truth contract then rides on "
        "proof-carrying verdicts end to end",
    )
    p.add_argument(
        "--json",
        default=None,
        metavar="FILE",
        help="write the machine-readable campaign report to FILE "
        "('-' prints it to stdout)",
    )
    p.add_argument("--quiet", action="store_true",
                   help="suppress progress lines on stderr")
    p.add_argument(
        "--timeout",
        type=_nonneg_float,
        default=None,
        metavar="S",
        help="wall-clock budget for the verification sweep; runs not "
        "decided in time report UNKNOWN (a contract breach only when "
        "the oracle expected VIOLATED)",
    )
    p.add_argument("--task-timeout", type=_nonneg_float, default=None,
                   metavar="S", help="soft deadline per unique instance")
    p.add_argument("--retries", type=_nonneg_int, default=None, metavar="N",
                   help="pool-breakage retries per chunk (default 2)")
    p.add_argument("--chaos", default=None, metavar="SPEC",
                   help="inject engine faults; test-only, needs REPRO_CHAOS")
    _add_store_args(p)
    p.set_defaults(func=cmd_campaign)

    p = sub.add_parser("solve", help="decide a DIMACS CNF formula")
    p.add_argument("cnf")
    p.add_argument("--solver", choices=["cdcl", "dpll", "brute"], default="cdcl")
    p.add_argument(
        "--via-vmc",
        action="store_true",
        help="solve through the SAT-to-coherence reduction",
    )
    p.set_defaults(func=cmd_solve)

    p = sub.add_parser("litmus", help="print the litmus/model table")
    p.set_defaults(func=cmd_litmus)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
