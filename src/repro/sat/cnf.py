"""CNF formula representation.

Literal convention (DIMACS-style): variables are positive integers
``1..num_vars``; a literal is ``+v`` (variable true) or ``-v`` (variable
false).  Zero is never a literal.  An :class:`Assignment` maps variables
to booleans; partial assignments simply omit variables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

Lit = int
Assignment = dict[int, bool]


def neg(lit: Lit) -> Lit:
    """Negation of a literal."""
    return -lit


def var_of(lit: Lit) -> int:
    """Variable underlying a literal."""
    return abs(lit)


def is_pos(lit: Lit) -> bool:
    """Whether the literal is the positive phase of its variable."""
    return lit > 0


def lit_value(lit: Lit, assignment: Assignment) -> bool | None:
    """Truth value of ``lit`` under a (possibly partial) assignment."""
    v = assignment.get(abs(lit))
    if v is None:
        return None
    return v if lit > 0 else not v


@dataclass
class CNF:
    """A CNF formula: a conjunction of clauses, each a list of literals.

    ``num_vars`` tracks the largest variable id mentioned (or reserved
    via :meth:`new_var`), so fresh auxiliary variables can be minted
    during encodings.
    """

    num_vars: int = 0
    clauses: list[list[Lit]] = field(default_factory=list)
    comments: list[str] = field(default_factory=list)

    def new_var(self) -> int:
        """Reserve and return a fresh variable id."""
        self.num_vars += 1
        return self.num_vars

    def new_vars(self, count: int) -> list[int]:
        """Reserve ``count`` fresh variable ids."""
        return [self.new_var() for _ in range(count)]

    def add_clause(self, lits: Iterable[Lit]) -> None:
        """Append one clause, updating ``num_vars``.

        An empty clause is legal and makes the formula trivially UNSAT.
        Duplicate literals are collapsed; a tautological clause (contains
        both ``l`` and ``-l``) is dropped.
        """
        clause: list[Lit] = []
        seen: set[Lit] = set()
        for lit in lits:
            if lit == 0:
                raise ValueError("0 is not a literal")
            if lit in seen:
                continue
            if -lit in seen:
                return  # tautology: x or not-x
            seen.add(lit)
            clause.append(lit)
            if abs(lit) > self.num_vars:
                self.num_vars = abs(lit)
        self.clauses.append(clause)

    def add_clauses(self, clauses: Iterable[Iterable[Lit]]) -> None:
        for c in clauses:
            self.add_clause(c)

    def add_at_most_one(self, lits: list[Lit]) -> None:
        """Pairwise at-most-one constraint over ``lits``."""
        for i in range(len(lits)):
            for j in range(i + 1, len(lits)):
                self.add_clause([-lits[i], -lits[j]])

    def add_exactly_one(self, lits: list[Lit]) -> None:
        self.add_clause(lits)
        self.add_at_most_one(lits)

    def add_implies(self, premise: Lit, conclusion: Lit) -> None:
        self.add_clause([-premise, conclusion])

    def add_implies_all(self, premise: Lit, conclusions: Iterable[Lit]) -> None:
        for c in conclusions:
            self.add_clause([-premise, c])

    @property
    def num_clauses(self) -> int:
        return len(self.clauses)

    def variables(self) -> Iterator[int]:
        return iter(range(1, self.num_vars + 1))

    def evaluate(self, assignment: Assignment) -> bool:
        """Whether a *total* assignment satisfies every clause.

        Unassigned variables are treated as false.
        """
        for clause in self.clauses:
            if not any(
                (assignment.get(abs(l), False)) == (l > 0) for l in clause
            ):
                return False
        return True

    def unsatisfied_clauses(self, assignment: Assignment) -> list[list[Lit]]:
        """Clauses falsified by a total assignment (for diagnostics)."""
        return [
            c
            for c in self.clauses
            if not any((assignment.get(abs(l), False)) == (l > 0) for l in c)
        ]

    def copy(self) -> "CNF":
        return CNF(
            num_vars=self.num_vars,
            clauses=[list(c) for c in self.clauses],
            comments=list(self.comments),
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CNF(num_vars={self.num_vars}, num_clauses={self.num_clauses})"
