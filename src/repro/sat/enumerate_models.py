"""Brute-force SAT: exhaustive truth-table enumeration.

Exponential in the variable count — used only as a ground-truth oracle
in tests (up to ~20 variables) and to count models of small formulas.
"""

from __future__ import annotations

from typing import Iterator

from repro.sat.cnf import CNF, Assignment


def enumerate_models(cnf: CNF, limit: int | None = None) -> Iterator[Assignment]:
    """Yield every satisfying total assignment (up to ``limit``)."""
    n = cnf.num_vars
    if n > 30:
        raise ValueError(f"{n} variables is too many to enumerate")
    count = 0
    for bits in range(1 << n):
        assignment = {v: bool((bits >> (v - 1)) & 1) for v in range(1, n + 1)}
        if cnf.evaluate(assignment):
            yield assignment
            count += 1
            if limit is not None and count >= limit:
                return


def brute_force_satisfiable(cnf: CNF) -> Assignment | None:
    """First model found by enumeration, or ``None`` if UNSAT."""
    for model in enumerate_models(cnf, limit=1):
        return model
    return None


def count_models(cnf: CNF) -> int:
    """Number of satisfying assignments (exact, exponential)."""
    return sum(1 for _ in enumerate_models(cnf))
