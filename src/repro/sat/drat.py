"""DRAT-style proof logging and a trusted RUP proof checker.

When the CDCL solver refutes a formula it can log every learned clause
(and learned-clause deletion) as a DRAT-style proof: a sequence of
``("a", lits)`` addition lines and ``("d", lits)`` deletion lines in
the DIMACS literal convention, ending in the empty clause.  The proof
is validated by :func:`check_rup`, which knows nothing about the
solver: each added clause must be a *reverse unit propagation* (RUP)
consequence of the active clause set — asserting the negation of every
literal in the clause and unit-propagating over the formula must reach
a conflict.  A proof whose every addition is RUP and which derives the
empty clause is a machine-checkable refutation of the original CNF.

The checker is deliberately simple (counter-free, occurrence-list unit
propagation re-run from scratch per step) so it stays independent of
the solver's data structures: a bug in the watched-literal engine
cannot hide in the checker.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.sat.cnf import CNF, Lit

#: A proof line: ``("a", lits)`` adds a clause, ``("d", lits)`` deletes one.
ProofLine = tuple[str, tuple[Lit, ...]]


class ProofLog:
    """An append-only DRAT proof under construction.

    The solver calls :meth:`add` for every learned clause (including
    learned units and the final empty clause) and :meth:`delete` when
    the clause database drops a learned clause.  Lines store *external*
    (DIMACS) literals so the proof is meaningful against the input CNF.
    """

    __slots__ = ("lines",)

    def __init__(self) -> None:
        self.lines: list[ProofLine] = []

    def add(self, lits: Iterable[Lit]) -> None:
        self.lines.append(("a", tuple(lits)))

    def delete(self, lits: Iterable[Lit]) -> None:
        self.lines.append(("d", tuple(lits)))

    def __len__(self) -> int:
        return len(self.lines)

    def __iter__(self) -> Iterator[ProofLine]:
        return iter(self.lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        adds = sum(1 for k, _ in self.lines if k == "a")
        return f"ProofLog(adds={adds}, lines={len(self.lines)})"


@dataclass(frozen=True)
class RupCheck:
    """Outcome of :func:`check_rup` — truthy iff the proof is valid."""

    ok: bool
    reason: str = ""
    steps: int = 0

    def __bool__(self) -> bool:
        return self.ok


def _clause_key(lits: Iterable[Lit]) -> tuple[Lit, ...]:
    return tuple(sorted(set(lits)))


class _ActiveSet:
    """The evolving clause set the checker propagates over.

    Deleted clauses are tombstoned (occurrence lists keep stale indices,
    filtered on traversal); deletion matches clauses by their sorted
    deduplicated literal tuple, as DRAT deletion lines are set-level.
    """

    def __init__(self) -> None:
        self.clauses: list[tuple[Lit, ...] | None] = []
        self.occ: dict[Lit, list[int]] = {}
        self.by_key: dict[tuple[Lit, ...], list[int]] = {}
        self.units: list[int] = []  # indices of (possibly stale) unit clauses
        self.has_empty = False

    def add(self, lits: Iterable[Lit]) -> None:
        clause = tuple(lits)
        idx = len(self.clauses)
        self.clauses.append(clause)
        for lit in set(clause):
            self.occ.setdefault(lit, []).append(idx)
        self.by_key.setdefault(_clause_key(clause), []).append(idx)
        if len(clause) == 1:
            self.units.append(idx)
        elif not clause:
            self.has_empty = True

    def delete(self, lits: Iterable[Lit]) -> bool:
        """Tombstone one clause matching ``lits``; False when absent
        (a harmless no-op, as in standard DRAT checkers)."""
        stack = self.by_key.get(_clause_key(lits))
        if not stack:
            return False
        self.clauses[stack.pop()] = None
        return True


def _propagates_to_conflict(active: _ActiveSet, target: tuple[Lit, ...]) -> bool:
    """Whether ``active ∧ ¬target`` unit-propagates to a conflict."""
    value: dict[int, bool] = {}
    queue: list[Lit] = []

    def enqueue(lit: Lit) -> bool:
        """Record ``lit`` true; False signals a conflict."""
        var, want = abs(lit), lit > 0
        current = value.get(var)
        if current is None:
            value[var] = want
            queue.append(lit)
            return True
        return current == want

    for lit in target:
        if not enqueue(-lit):
            return True
    for idx in active.units:
        clause = active.clauses[idx]
        if clause is not None and not enqueue(clause[0]):
            return True
    head = 0
    while head < len(queue):
        lit = queue[head]
        head += 1
        for idx in active.occ.get(-lit, ()):
            clause = active.clauses[idx]
            if clause is None:
                continue
            unassigned: Lit | None = None
            open_count = 0
            satisfied = False
            for l in clause:
                assigned = value.get(abs(l))
                if assigned is None:
                    open_count += 1
                    unassigned = l
                    if open_count > 1:
                        break
                elif assigned == (l > 0):
                    satisfied = True
                    break
            if satisfied or open_count > 1:
                continue
            if open_count == 0:
                return True
            assert unassigned is not None
            if not enqueue(unassigned):
                return True
    return False


def check_rup(cnf: CNF, proof: Iterable[ProofLine]) -> RupCheck:
    """Validate a DRAT-style proof as a refutation of ``cnf``.

    Every ``("a", lits)`` line must be RUP with respect to the clauses
    active at that point (original CNF plus earlier additions, minus
    deletions); the proof — or the CNF itself — must contain the empty
    clause.  Returns a falsy :class:`RupCheck` naming the first failing
    step otherwise.
    """
    active = _ActiveSet()
    for clause in cnf.clauses:
        active.add(clause)
    empty_derived = active.has_empty
    steps = 0
    for kind, lits in proof:
        steps += 1
        if kind == "d":
            active.delete(lits)
            continue
        if kind != "a":
            return RupCheck(False, f"unknown proof line kind {kind!r}", steps)
        litset = set(lits)
        if any(-l in litset for l in litset):
            active.add(lits)  # tautology: trivially entailed
            continue
        if not _propagates_to_conflict(active, tuple(lits)):
            return RupCheck(
                False,
                f"proof line {steps} is not a RUP consequence: {list(lits)}",
                steps,
            )
        active.add(lits)
        if not lits:
            empty_derived = True
    if not empty_derived:
        return RupCheck(False, "proof does not derive the empty clause", steps)
    return RupCheck(True, "", steps)
