"""A self-contained SAT substrate.

The paper's reductions run from SAT/3SAT *to* coherence problems, and our
practical VMC/VSC verifiers run the other way, encoding trace-verification
questions *into* CNF.  Both directions need a SAT toolkit; no solver
package is available offline, so this subpackage provides one from
scratch:

* :mod:`repro.sat.cnf` — formula representation, assignments, evaluation;
* :mod:`repro.sat.dimacs` — DIMACS CNF reader/writer;
* :mod:`repro.sat.dpll` — classic DPLL with unit propagation and pure
  literals (reference solver, easy to audit);
* :mod:`repro.sat.cdcl` — conflict-driven clause learning with
  two-watched-literal propagation, first-UIP learning, VSIDS branching,
  and Luby restarts (the production solver);
* :mod:`repro.sat.random_sat` — uniform random k-SAT, planted instances,
  and the standard SAT-to-3SAT clause splitting;
* :mod:`repro.sat.enumerate_models` — brute-force enumeration, used as a
  ground-truth oracle in tests;
* :mod:`repro.sat.simplify` — cheap preprocessing.
"""

from repro.sat.cnf import CNF, Assignment, Lit, neg, var_of, is_pos
from repro.sat.dpll import solve_dpll
from repro.sat.cdcl import CDCLSolver, solve_cdcl
from repro.sat.random_sat import random_ksat, planted_ksat, to_3sat
from repro.sat.enumerate_models import brute_force_satisfiable, enumerate_models
from repro.sat.dimacs import parse_dimacs, write_dimacs

__all__ = [
    "CNF",
    "Assignment",
    "Lit",
    "neg",
    "var_of",
    "is_pos",
    "solve_dpll",
    "CDCLSolver",
    "solve_cdcl",
    "random_ksat",
    "planted_ksat",
    "to_3sat",
    "brute_force_satisfiable",
    "enumerate_models",
    "parse_dimacs",
    "write_dimacs",
]


def solve(cnf: CNF, solver: str = "cdcl") -> Assignment | None:
    """Solve ``cnf``; return a satisfying assignment or ``None`` (UNSAT).

    ``solver`` selects the backend: ``"cdcl"`` (default), ``"dpll"``, or
    ``"brute"`` (exponential enumeration, only for tiny formulas).
    """
    if solver == "cdcl":
        return solve_cdcl(cnf)
    if solver == "dpll":
        return solve_dpll(cnf)
    if solver == "brute":
        return brute_force_satisfiable(cnf)
    raise ValueError(f"unknown SAT backend {solver!r}")
