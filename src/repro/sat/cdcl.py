"""CDCL: the production SAT solver.

Conflict-driven clause learning in the MiniSat lineage:

* two-watched-literal unit propagation;
* first-UIP conflict analysis with learned-clause minimisation
  (self-subsumption against reason clauses);
* VSIDS-style exponential decay activity branching with phase saving;
* Luby-sequence restarts;
* learned-clause database reduction by activity.

Literals use the DIMACS convention of :mod:`repro.sat.cnf`.  Internally
literals are mapped to dense indices ``2*var + (0 if positive else 1)``
so watch lists are plain Python lists.
"""

from __future__ import annotations

from typing import Sequence

from repro.sat.cnf import CNF, Assignment, Lit
from repro.sat.drat import ProofLog
from repro.util.control import SOLVER_CHECK_INTERVAL, StopCheck, poll


def solve_cdcl(
    cnf: CNF,
    max_conflicts: int | None = None,
    seed: int = 0,
    should_stop: StopCheck = None,
    assumptions: Sequence[Lit] | None = None,
    proof: ProofLog | None = None,
) -> Assignment | None:
    """Solve ``cnf`` with CDCL; return a model or ``None`` (UNSAT).

    ``max_conflicts`` bounds total conflicts (raises ``TimeoutError``
    when exhausted) so benchmarks can cap runaway instances.
    ``should_stop`` is polled periodically; when it fires the solver
    raises :class:`repro.util.control.Cancelled` (the portfolio
    executor's cooperative-abort protocol).  ``assumptions`` are
    literals asserted at the root level before search — the caller
    vouches they are consistent with satisfiability (the engine passes
    pre-pass order hints, which hold in every legal schedule), so
    ``None`` still means UNSAT.

    ``proof`` collects a DRAT-style refutation log (learned clauses,
    deletions, and the final empty clause) that
    :func:`repro.sat.drat.check_rup` can validate against ``cnf`` when
    the answer is UNSAT.  Proof logging is incompatible with
    ``assumptions``: UNSAT *under assumptions* does not refute the
    formula, so combining them raises ``ValueError``.
    """
    solver = CDCLSolver(cnf, seed=seed)
    return solver.solve(
        max_conflicts=max_conflicts,
        should_stop=should_stop,
        assumptions=assumptions,
        proof=proof,
    )


def _luby(i: int) -> int:
    """The Luby restart sequence (0-indexed): 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 …

    If ``i + 1`` is exactly ``2^k - 1`` the value is ``2^(k-1)``;
    otherwise recurse into the trailing copy of the previous block.
    """
    while True:
        k = 1
        while (1 << k) - 1 < i + 1:
            k += 1
        if (1 << k) - 1 == i + 1:
            return 1 << (k - 1)
        i -= (1 << (k - 1)) - 1


_UNASSIGNED = -1


class _Clause:
    __slots__ = ("lits", "learned", "activity")

    def __init__(self, lits: list[int], learned: bool = False):
        self.lits = lits  # internal literal encoding
        self.learned = learned
        self.activity = 0.0


class CDCLSolver:
    """A reusable CDCL solver instance.

    Build once per formula; :meth:`solve` may be called once.  Use
    :func:`solve_cdcl` for the common case.
    """

    def __init__(self, cnf: CNF, seed: int = 0):
        self.nvars = cnf.num_vars
        nlits = 2 * (self.nvars + 1)
        # value[v] in {-1 unassigned, 0 false, 1 true}
        self.value = [_UNASSIGNED] * (self.nvars + 1)
        self.level = [0] * (self.nvars + 1)
        self.reason: list[_Clause | None] = [None] * (self.nvars + 1)
        self.trail: list[int] = []  # internal lits, assignment order
        self.trail_lim: list[int] = []  # decision-level boundaries
        self.qhead = 0
        self.watches: list[list[_Clause]] = [[] for _ in range(nlits)]
        self.activity = [0.0] * (self.nvars + 1)
        self.var_inc = 1.0
        self.var_decay = 0.95
        self.cla_inc = 1.0
        self.cla_decay = 0.999
        self.saved_phase = [False] * (self.nvars + 1)
        self.clauses: list[_Clause] = []
        self.learned: list[_Clause] = []
        self.ok = True
        self.conflicts = 0
        self._order_dirty = True
        self._seed = seed
        self._proof: ProofLog | None = None
        for clause in cnf.clauses:
            if not self._add_clause([self._to_internal(l) for l in clause]):
                self.ok = False
                break

    # ------------------------------------------------------------------
    # Literal encoding helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _to_internal(lit: Lit) -> int:
        v = abs(lit)
        return 2 * v + (0 if lit > 0 else 1)

    @staticmethod
    def _to_external(ilit: int) -> Lit:
        v = ilit >> 1
        return v if (ilit & 1) == 0 else -v

    @staticmethod
    def _ineg(ilit: int) -> int:
        return ilit ^ 1

    def _lit_value(self, ilit: int) -> int:
        """-1 unassigned / 0 false / 1 true for an internal literal."""
        v = self.value[ilit >> 1]
        if v == _UNASSIGNED:
            return _UNASSIGNED
        return v ^ (ilit & 1)

    # ------------------------------------------------------------------
    # Clause management
    # ------------------------------------------------------------------
    def _add_clause(self, ilits: list[int]) -> bool:
        """Add an original clause; return False on immediate conflict.

        Clauses are added at decision level 0, so the clause is
        simplified against the current root assignment first: literals
        already false are dropped (they can never help), and a clause
        containing a true literal is permanently satisfied.  Without
        this, a clause falsified by prior root units would be watched
        on dead literals and its conflict silently missed.
        """
        # Dedup / tautology check.
        seen: set[int] = set()
        out: list[int] = []
        for l in ilits:
            if l in seen:
                continue
            if self._ineg(l) in seen:
                return True  # tautology
            val = self._lit_value(l)
            if val == 1:
                return True  # satisfied at the root level
            if val == 0:
                continue  # dead literal
            seen.add(l)
            out.append(l)
        if not out:
            return False
        if len(out) == 1:
            self._enqueue(out[0], None)
            return self._propagate() is None
        clause = _Clause(out)
        self.clauses.append(clause)
        self._watch(clause)
        return True

    def _watch(self, clause: _Clause) -> None:
        self.watches[self._ineg(clause.lits[0])].append(clause)
        self.watches[self._ineg(clause.lits[1])].append(clause)

    # ------------------------------------------------------------------
    # Trail / assignment
    # ------------------------------------------------------------------
    def _decision_level(self) -> int:
        return len(self.trail_lim)

    def _enqueue(self, ilit: int, reason: _Clause | None) -> None:
        v = ilit >> 1
        self.value[v] = 1 - (ilit & 1)
        self.level[v] = self._decision_level()
        self.reason[v] = reason
        self.trail.append(ilit)

    def _cancel_until(self, lvl: int) -> None:
        if self._decision_level() <= lvl:
            return
        bound = self.trail_lim[lvl]
        for ilit in reversed(self.trail[bound:]):
            v = ilit >> 1
            self.saved_phase[v] = (ilit & 1) == 0
            self.value[v] = _UNASSIGNED
            self.reason[v] = None
        del self.trail[bound:]
        del self.trail_lim[lvl:]
        self.qhead = len(self.trail)
        self._order_dirty = True

    # ------------------------------------------------------------------
    # Propagation
    # ------------------------------------------------------------------
    def _propagate(self) -> _Clause | None:
        """Two-watched-literal BCP; return the conflicting clause or None."""
        while self.qhead < len(self.trail):
            p = self.trail[self.qhead]
            self.qhead += 1
            false_lit = self._ineg(p)
            watchlist = self.watches[p]
            i = j = 0
            n = len(watchlist)
            while i < n:
                clause = watchlist[i]
                i += 1
                lits = clause.lits
                # Ensure the false literal is at position 1.
                if lits[0] == false_lit:
                    lits[0], lits[1] = lits[1], lits[0]
                first = lits[0]
                if self._lit_value(first) == 1:
                    watchlist[j] = clause
                    j += 1
                    continue
                # Look for a new literal to watch.
                moved = False
                for k in range(2, len(lits)):
                    if self._lit_value(lits[k]) != 0:
                        lits[1], lits[k] = lits[k], lits[1]
                        self.watches[self._ineg(lits[1])].append(clause)
                        moved = True
                        break
                if moved:
                    continue
                # Unit or conflict.
                watchlist[j] = clause
                j += 1
                if self._lit_value(first) == 0:
                    # Conflict: restore remaining watches and bail.
                    while i < n:
                        watchlist[j] = watchlist[i]
                        j += 1
                        i += 1
                    del watchlist[j:]
                    self.qhead = len(self.trail)
                    return clause
                self._enqueue(first, clause)
            del watchlist[j:]
        return None

    # ------------------------------------------------------------------
    # Conflict analysis (first UIP)
    # ------------------------------------------------------------------
    def _analyze(self, conflict: _Clause) -> tuple[list[int], int]:
        """Return (learned clause, backjump level)."""
        learned: list[int] = [0]  # placeholder for the asserting literal
        seen = [False] * (self.nvars + 1)
        counter = 0
        p: int | None = None
        clause: _Clause | None = conflict
        idx = len(self.trail) - 1
        cur_level = self._decision_level()
        while True:
            assert clause is not None
            self._bump_clause(clause)
            start = 0 if p is None else 1
            for q in clause.lits[start:]:
                v = q >> 1
                if not seen[v] and self.level[v] > 0:
                    seen[v] = True
                    self._bump_var(v)
                    if self.level[v] >= cur_level:
                        counter += 1
                    else:
                        learned.append(q)
            # Walk the trail backwards to the next marked literal.
            while not seen[self.trail[idx] >> 1]:
                idx -= 1
            p = self.trail[idx]
            v = p >> 1
            clause = self.reason[v]
            seen[v] = False
            counter -= 1
            idx -= 1
            if counter == 0:
                break
        learned[0] = self._ineg(p)
        # Clause minimisation: drop literals implied by the rest.
        learned = self._minimize(learned, seen)
        # Compute backjump level = second-highest level in the clause.
        if len(learned) == 1:
            bj = 0
        else:
            max_i = 1
            for k in range(2, len(learned)):
                if self.level[learned[k] >> 1] > self.level[learned[max_i] >> 1]:
                    max_i = k
            learned[1], learned[max_i] = learned[max_i], learned[1]
            bj = self.level[learned[1] >> 1]
        return learned, bj

    def _minimize(self, learned: list[int], seen: list[bool]) -> list[int]:
        """Self-subsumption: remove lits whose reasons lie within the clause."""
        marked = set(l >> 1 for l in learned)
        out = [learned[0]]
        for lit in learned[1:]:
            v = lit >> 1
            r = self.reason[v]
            if r is None:
                out.append(lit)
                continue
            redundant = all(
                (q >> 1) in marked or self.level[q >> 1] == 0
                for q in r.lits
                if (q >> 1) != v
            )
            if not redundant:
                out.append(lit)
        return out

    # ------------------------------------------------------------------
    # Activity
    # ------------------------------------------------------------------
    def _bump_var(self, v: int) -> None:
        self.activity[v] += self.var_inc
        if self.activity[v] > 1e100:
            for u in range(1, self.nvars + 1):
                self.activity[u] *= 1e-100
            self.var_inc *= 1e-100
        self._order_dirty = True

    def _bump_clause(self, c: _Clause) -> None:
        if c.learned:
            c.activity += self.cla_inc
            if c.activity > 1e20:
                for cl in self.learned:
                    cl.activity *= 1e-20
                self.cla_inc *= 1e-20

    def _decay(self) -> None:
        self.var_inc /= self.var_decay
        self.cla_inc /= self.cla_decay

    # ------------------------------------------------------------------
    # Learned clause DB reduction
    # ------------------------------------------------------------------
    def _reduce_db(self) -> None:
        self.learned.sort(key=lambda c: c.activity)
        keep = self.learned[len(self.learned) // 2 :]
        dropped = self.learned[: len(self.learned) // 2]
        drop = set(id(c) for c in dropped)
        # Never drop reason clauses of current assignments.
        for v in range(1, self.nvars + 1):
            r = self.reason[v]
            if r is not None and id(r) in drop:
                drop.discard(id(r))
                keep.append(r)
        if self._proof is not None:
            for c in dropped:
                if id(c) in drop:
                    self._proof.delete(self._to_external(l) for l in c.lits)
        self.learned = keep
        kept_ids = set(id(c) for c in self.learned) | set(
            id(c) for c in self.clauses
        )
        for wl in self.watches:
            wl[:] = [c for c in wl if id(c) in kept_ids]

    # ------------------------------------------------------------------
    # Branching
    # ------------------------------------------------------------------
    def _pick_branch(self) -> int | None:
        best_v = -1
        best_a = -1.0
        for v in range(1, self.nvars + 1):
            if self.value[v] == _UNASSIGNED and self.activity[v] > best_a:
                best_v = v
                best_a = self.activity[v]
        if best_v < 0:
            return None
        phase = self.saved_phase[best_v]
        return 2 * best_v + (0 if phase else 1)

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def solve(
        self,
        max_conflicts: int | None = None,
        should_stop: StopCheck = None,
        assumptions: Sequence[Lit] | None = None,
        proof: ProofLog | None = None,
    ) -> Assignment | None:
        if proof is not None and assumptions:
            # UNSAT under assumptions is not a refutation of the
            # formula, so a proof logged alongside them would be a lie.
            raise ValueError("proof logging is incompatible with assumptions")
        self._proof = proof
        if not self.ok:
            if proof is not None:
                proof.add(())
            return None
        if self._propagate() is not None:
            if proof is not None:
                proof.add(())
            return None
        # Root-level assumptions: assert each, propagate, and treat a
        # contradiction as UNSAT (sound for implied literals such as the
        # engine's pre-pass order hints).
        for lit in assumptions or ():
            ilit = self._to_internal(lit)
            val = self._lit_value(ilit)
            if val == 1:
                continue
            if val == 0:
                return None
            self._enqueue(ilit, None)
            if self._propagate() is not None:
                return None
        restart_idx = 0
        conflicts_until_restart = 32 * _luby(0)
        max_learned = max(100, len(self.clauses) // 2)
        steps = 0
        while True:
            steps += 1
            poll(should_stop, steps, "cdcl", self.conflicts,
                 SOLVER_CHECK_INTERVAL)
            conflict = self._propagate()
            if conflict is not None:
                self.conflicts += 1
                if max_conflicts is not None and self.conflicts > max_conflicts:
                    raise TimeoutError("CDCL conflict budget exhausted")
                if self._decision_level() == 0:
                    if proof is not None:
                        proof.add(())
                    return None  # UNSAT
                learned, bj = self._analyze(conflict)
                if proof is not None:
                    proof.add(self._to_external(l) for l in learned)
                self._cancel_until(bj)
                if len(learned) == 1:
                    self._enqueue(learned[0], None)
                else:
                    clause = _Clause(learned, learned=True)
                    self.learned.append(clause)
                    self._watch(clause)
                    self._bump_clause(clause)
                    self._enqueue(learned[0], clause)
                self._decay()
                conflicts_until_restart -= 1
            else:
                if conflicts_until_restart <= 0:
                    restart_idx += 1
                    conflicts_until_restart = 32 * _luby(restart_idx)
                    self._cancel_until(0)
                if len(self.learned) > max_learned:
                    max_learned = int(max_learned * 1.5)
                    self._reduce_db()
                branch = self._pick_branch()
                if branch is None:
                    return self._model()
                self.trail_lim.append(len(self.trail))
                self._enqueue(branch, None)

    def _model(self) -> Assignment:
        return {
            v: self.value[v] == 1 if self.value[v] != _UNASSIGNED else False
            for v in range(1, self.nvars + 1)
        }
