"""DPLL: the reference SAT solver.

Recursive Davis–Putnam–Logemann–Loveland with unit propagation and
pure-literal elimination.  Deliberately simple — it exists so CDCL has
an independently-implemented oracle to agree with in tests, and so the
benchmark harness can contrast naive search against clause learning.
"""

from __future__ import annotations

import sys

from repro.sat.cnf import CNF, Assignment, Lit


def solve_dpll(cnf: CNF, max_decisions: int | None = None) -> Assignment | None:
    """Return a satisfying total assignment, or ``None`` if UNSAT.

    ``max_decisions`` bounds branching for benchmark timeouts; exceeding
    it raises ``TimeoutError``.
    """
    solver = _DPLL(cnf, max_decisions)
    model = solver.run()
    if model is None:
        return None
    # Complete the assignment: unconstrained variables default to False.
    for v in range(1, cnf.num_vars + 1):
        model.setdefault(v, False)
    return model


class _DPLL:
    def __init__(self, cnf: CNF, max_decisions: int | None):
        self.clauses = [list(c) for c in cnf.clauses]
        self.num_vars = cnf.num_vars
        self.max_decisions = max_decisions
        self.decisions = 0

    def run(self) -> Assignment | None:
        sys.setrecursionlimit(max(10000, self.num_vars * 4 + 1000))
        return self._search(self.clauses, {})

    def _search(
        self, clauses: list[list[Lit]], assignment: Assignment
    ) -> Assignment | None:
        clauses, assignment, ok = self._propagate(clauses, dict(assignment))
        if not ok:
            return None
        if not clauses:
            return assignment
        lit = self._choose(clauses)
        self.decisions += 1
        if self.max_decisions is not None and self.decisions > self.max_decisions:
            raise TimeoutError("DPLL decision budget exhausted")
        for phase in (lit, -lit):
            result = self._search(
                self._assign(clauses, phase), {**assignment, abs(phase): phase > 0}
            )
            if result is not None:
                return result
        return None

    @staticmethod
    def _assign(clauses: list[list[Lit]], lit: Lit) -> list[list[Lit]]:
        """Simplify clause set under ``lit`` := true."""
        out: list[list[Lit]] = []
        for c in clauses:
            if lit in c:
                continue  # satisfied
            if -lit in c:
                out.append([l for l in c if l != -lit])
            else:
                out.append(c)
        return out

    def _propagate(
        self, clauses: list[list[Lit]], assignment: Assignment
    ) -> tuple[list[list[Lit]], Assignment, bool]:
        """Unit propagation + pure literal elimination to fixpoint."""
        changed = True
        while changed:
            changed = False
            # Unit clauses.
            for c in clauses:
                if len(c) == 0:
                    return clauses, assignment, False
                if len(c) == 1:
                    lit = c[0]
                    assignment[abs(lit)] = lit > 0
                    clauses = self._assign(clauses, lit)
                    changed = True
                    break
            if changed:
                continue
            # Pure literals.
            polarity: dict[int, int] = {}  # var -> +1, -1, or 0 (mixed)
            for c in clauses:
                for lit in c:
                    v = abs(lit)
                    sign = 1 if lit > 0 else -1
                    prev = polarity.get(v)
                    if prev is None:
                        polarity[v] = sign
                    elif prev != sign:
                        polarity[v] = 0
            for v, sign in polarity.items():
                if sign != 0:
                    lit = v * sign
                    assignment[v] = lit > 0
                    clauses = self._assign(clauses, lit)
                    changed = True
                    break
        return clauses, assignment, True

    @staticmethod
    def _choose(clauses: list[list[Lit]]) -> Lit:
        """Branch on the most frequent literal in the shortest clauses."""
        min_len = min(len(c) for c in clauses)
        counts: dict[Lit, int] = {}
        for c in clauses:
            if len(c) == min_len:
                for lit in c:
                    counts[lit] = counts.get(lit, 0) + 1
        return max(counts, key=lambda l: counts[l])
