"""DIMACS CNF reader and writer.

The de-facto interchange format for SAT: a ``p cnf <vars> <clauses>``
header, ``c`` comment lines, then clauses as whitespace-separated
literals terminated by ``0`` (clauses may span lines).
"""

from __future__ import annotations

import io
from pathlib import Path

from repro.sat.cnf import CNF


def parse_dimacs(text: str) -> CNF:
    """Parse DIMACS CNF text into a :class:`CNF`.

    Tolerant of missing headers (infers counts) but validates a header
    when present: a clause count mismatch raises ``ValueError``.
    """
    cnf = CNF()
    declared_vars: int | None = None
    declared_clauses: int | None = None
    pending: list[int] = []
    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        if line.startswith("c"):
            cnf.comments.append(line[1:].strip())
            continue
        if line.startswith("p"):
            parts = line.split()
            if len(parts) != 4 or parts[1] != "cnf":
                raise ValueError(f"malformed problem line: {line!r}")
            declared_vars = int(parts[2])
            declared_clauses = int(parts[3])
            continue
        if line == "%":  # SATLIB files end with '%\n0'
            break
        for tok in line.split():
            lit = int(tok)
            if lit == 0:
                cnf.add_clause(pending)
                pending = []
            else:
                pending.append(lit)
    if pending:
        # Final clause without terminating 0 — accept it.
        cnf.add_clause(pending)
    if declared_vars is not None and declared_vars > cnf.num_vars:
        cnf.num_vars = declared_vars
    if declared_clauses is not None and declared_clauses != cnf.num_clauses:
        raise ValueError(
            f"header declares {declared_clauses} clauses, found {cnf.num_clauses}"
        )
    return cnf


def read_dimacs(path: str | Path) -> CNF:
    """Read a DIMACS CNF file from disk."""
    return parse_dimacs(Path(path).read_text())


def write_dimacs(cnf: CNF, path: str | Path | None = None) -> str:
    """Serialize ``cnf`` to DIMACS; optionally also write to ``path``."""
    buf = io.StringIO()
    for comment in cnf.comments:
        buf.write(f"c {comment}\n")
    buf.write(f"p cnf {cnf.num_vars} {cnf.num_clauses}\n")
    for clause in cnf.clauses:
        buf.write(" ".join(str(l) for l in clause))
        buf.write(" 0\n")
    text = buf.getvalue()
    if path is not None:
        Path(path).write_text(text)
    return text
