"""Random CNF generators and the SAT-to-3SAT conversion.

Used by tests and by the benchmark harness: the paper's reductions run
from SAT (Figure 4.1) and 3SAT (Figures 5.1, 5.2), so we need instance
families on both sides of the satisfiability threshold.
"""

from __future__ import annotations

import random

from repro.sat.cnf import CNF
from repro.util.rng import make_rng


def random_ksat(
    num_vars: int,
    num_clauses: int,
    k: int = 3,
    seed: int | random.Random | None = None,
) -> CNF:
    """Uniform random k-SAT: each clause picks k distinct variables with
    independent random polarities.

    At clause/variable ratio ~4.27 (k=3) instances sit near the phase
    transition and are empirically hardest.
    """
    if k > num_vars:
        raise ValueError(f"k={k} exceeds num_vars={num_vars}")
    rng = make_rng(seed)
    cnf = CNF(num_vars=num_vars)
    for _ in range(num_clauses):
        variables = rng.sample(range(1, num_vars + 1), k)
        clause = [v if rng.random() < 0.5 else -v for v in variables]
        cnf.add_clause(clause)
    return cnf


def planted_ksat(
    num_vars: int,
    num_clauses: int,
    k: int = 3,
    seed: int | random.Random | None = None,
) -> tuple[CNF, dict[int, bool]]:
    """Random k-SAT guaranteed satisfiable by a hidden planted assignment.

    Returns ``(formula, planted_model)``.  Each clause is resampled until
    it is satisfied by the planted assignment, which biases the
    distribution but guarantees SAT — exactly what equivalence tests of
    the reductions need ("SAT side says yes ⇒ coherence side must too").
    """
    rng = make_rng(seed)
    planted = {v: rng.random() < 0.5 for v in range(1, num_vars + 1)}
    cnf = CNF(num_vars=num_vars)
    for _ in range(num_clauses):
        while True:
            variables = rng.sample(range(1, num_vars + 1), k)
            clause = [v if rng.random() < 0.5 else -v for v in variables]
            if any(planted[abs(l)] == (l > 0) for l in clause):
                cnf.add_clause(clause)
                break
    return cnf, planted


def random_unsat_core(seed: int | random.Random | None = None) -> CNF:
    """A small definitely-UNSAT formula (all eight 3-clauses over 3 vars,
    randomly relabelled).  Handy for 'no' instances in reduction tests."""
    rng = make_rng(seed)
    perm = list(range(1, 4))
    rng.shuffle(perm)
    cnf = CNF(num_vars=3)
    for bits in range(8):
        clause = [
            perm[i] if (bits >> i) & 1 else -perm[i] for i in range(3)
        ]
        cnf.add_clause(clause)
    return cnf


def to_3sat(cnf: CNF) -> CNF:
    """Standard clause-splitting conversion of arbitrary CNF to 3SAT.

    * 1-clause (l): becomes (l ∨ a ∨ b)(l ∨ a ∨ ¬b)(l ∨ ¬a ∨ b)(l ∨ ¬a ∨ ¬b)
    * 2-clause (l1 ∨ l2): (l1 ∨ l2 ∨ a)(l1 ∨ l2 ∨ ¬a)
    * 3-clause: unchanged
    * longer clause (l1..lk): chained with fresh variables
      (l1 ∨ l2 ∨ a1)(¬a1 ∨ l3 ∨ a2)...(¬a_{k-3} ∨ l_{k-1} ∨ l_k)

    Satisfiability is preserved exactly; every clause in the result has
    exactly three literals.
    """
    out = CNF(num_vars=cnf.num_vars)
    for clause in cnf.clauses:
        k = len(clause)
        if k == 0:
            # Empty clause: produce an unsatisfiable 3SAT gadget.
            a, b, c = out.new_var(), out.new_var(), out.new_var()
            for bits in range(8):
                out.add_clause(
                    [
                        (a if bits & 1 else -a),
                        (b if bits & 2 else -b),
                        (c if bits & 4 else -c),
                    ]
                )
        elif k == 1:
            (l,) = clause
            a, b = out.new_var(), out.new_var()
            out.add_clause([l, a, b])
            out.add_clause([l, a, -b])
            out.add_clause([l, -a, b])
            out.add_clause([l, -a, -b])
        elif k == 2:
            l1, l2 = clause
            a = out.new_var()
            out.add_clause([l1, l2, a])
            out.add_clause([l1, l2, -a])
        elif k == 3:
            out.add_clause(clause)
        else:
            prev = out.new_var()
            out.add_clause([clause[0], clause[1], prev])
            for i in range(2, k - 2):
                nxt = out.new_var()
                out.add_clause([-prev, clause[i], nxt])
                prev = nxt
            out.add_clause([-prev, clause[k - 2], clause[k - 1]])
    return out


def is_3sat(cnf: CNF) -> bool:
    """Whether every clause has exactly three (distinct-variable) literals."""
    return all(
        len(c) == 3 and len({abs(l) for l in c}) == 3 for c in cnf.clauses
    )


def tiny_unsat_3sat() -> CNF:
    """The smallest 3-literal-per-clause UNSAT formula: (x∨x∨x) ∧ (¬x∨¬x∨¬x).

    Clause literals repeat (``CNF.add_clause`` would collapse them, so
    the clauses are installed directly); the restricted reductions of
    Figures 5.1/5.2 accept repeated literals, which keeps their UNSAT
    test instances small enough for exhaustive search.
    """
    cnf = CNF(num_vars=1)
    cnf.clauses.append([1, 1, 1])
    cnf.clauses.append([-1, -1, -1])
    return cnf
