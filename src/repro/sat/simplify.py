"""Cheap CNF preprocessing.

Run before handing a formula to a solver: unit propagation, pure-literal
elimination, duplicate/subsumed-clause removal.  Returns a simplified
formula plus the forced partial assignment so callers can reconstruct a
model of the original formula.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.sat.cnf import CNF, Assignment, Lit


@dataclass
class SimplifyResult:
    """Outcome of preprocessing.

    ``forced`` holds variable assignments implied at the root level; if
    ``unsat`` the formula is already contradictory.  ``cnf`` is the
    residual formula over the remaining variables (original numbering).
    """

    cnf: CNF
    forced: Assignment = field(default_factory=dict)
    unsat: bool = False

    def extend_model(self, model: Assignment | None) -> Assignment | None:
        """Merge a residual-formula model with the forced assignment."""
        if self.unsat or model is None:
            return None
        merged = dict(model)
        merged.update(self.forced)
        return merged


#: Above this clause count the quadratic dedup/subsumption pass is
#: skipped (unit propagation and pure literals still run); the engine's
#: O(n^3)-clause schedule encodings would otherwise pay more for
#: preprocessing than for solving.
MAX_SUBSUME_CLAUSES = 4_000


def simplify(
    cnf: CNF,
    assume: Iterable[Lit] = (),
    max_subsume_clauses: int = MAX_SUBSUME_CLAUSES,
) -> SimplifyResult:
    """Apply unit propagation + pure literals + subsumption to fixpoint.

    ``assume`` seeds the propagation with externally-known literals
    (the engine passes pre-pass order hints, which hold in every legal
    schedule, so ``unsat`` remains a sound verdict for the original
    formula).  They are folded into ``forced`` like any propagated
    unit.
    """
    clauses = [list(c) for c in cnf.clauses]
    forced: Assignment = {}

    def assign(lit: Lit) -> bool:
        """Set lit true; simplify in place; False on contradiction."""
        forced[abs(lit)] = lit > 0
        out = []
        for c in clauses:
            if lit in c:
                continue
            if -lit in c:
                c = [l for l in c if l != -lit]
                if not c:
                    return False
            out.append(c)
        clauses[:] = out
        return True

    for lit in assume:
        known = forced.get(abs(lit))
        if known is not None:
            if known != (lit > 0):
                return SimplifyResult(CNF(num_vars=cnf.num_vars), forced, True)
            continue
        if not assign(lit):
            return SimplifyResult(CNF(num_vars=cnf.num_vars), forced, True)

    changed = True
    while changed:
        changed = False
        for c in clauses:
            if len(c) == 1:
                if not assign(c[0]):
                    return SimplifyResult(CNF(num_vars=cnf.num_vars), forced, True)
                changed = True
                break
        if changed:
            continue
        polarity: dict[int, int] = {}
        for c in clauses:
            for lit in c:
                v = abs(lit)
                s = 1 if lit > 0 else -1
                if polarity.get(v, s) != s:
                    polarity[v] = 0
                else:
                    polarity.setdefault(v, s)
        for v, s in polarity.items():
            if s != 0:
                if not assign(v * s):  # pure literal is always safe
                    return SimplifyResult(CNF(num_vars=cnf.num_vars), forced, True)
                changed = True
                break

    # Deduplicate and drop subsumed clauses (small-formula quadratic
    # pass, gated by ``max_subsume_clauses``).
    unique: list[frozenset[Lit]] = []
    seen: set[frozenset[Lit]] = set()
    for c in clauses:
        f = frozenset(c)
        if f not in seen:
            seen.add(f)
            unique.append(f)
    if len(unique) <= max_subsume_clauses:
        unique.sort(key=len)
        kept: list[frozenset[Lit]] = []
        for f in unique:
            if not any(g <= f for g in kept):
                kept.append(f)
    else:
        kept = unique

    out = CNF(num_vars=cnf.num_vars)
    for f in kept:
        out.add_clause(sorted(f, key=abs))
    return SimplifyResult(out, forced, False)
