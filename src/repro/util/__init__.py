"""Shared utilities: lightweight digraphs, timing helpers, seeded RNG.

These are deliberately dependency-free (pure Python) so that the hot
verification paths do not pay for generic-graph-library overhead; the
digraph here stores adjacency as plain lists keyed by dense integer ids.
"""

from repro.util.control import CHECK_INTERVAL, Cancelled, StopCheck
from repro.util.digraph import Digraph, CycleError
from repro.util.timing import RepeatTimer, fit_loglog_slope, time_callable
from repro.util.rng import make_rng, spawn_rngs

__all__ = [
    "CHECK_INTERVAL",
    "Cancelled",
    "StopCheck",
    "Digraph",
    "CycleError",
    "RepeatTimer",
    "fit_loglog_slope",
    "time_callable",
    "make_rng",
    "spawn_rngs",
]
