"""A small, fast directed-graph type with the operations the verifiers need.

Nodes are dense integers ``0..n-1``.  The verifiers use this for
precedence graphs over memory operations: program-order edges,
reads-from edges, and block-order edges.  Only the operations actually
needed are provided: edge insertion, Kahn topological sort, cycle
extraction (for counterexample reporting), and reachability.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Iterator


class CycleError(ValueError):
    """Raised when a topological order is requested of a cyclic graph.

    The offending cycle (a list of node ids, each with an edge to the
    next and the last back to the first) is available as ``.cycle``.
    """

    def __init__(self, cycle: list[int]):
        super().__init__(f"graph contains a cycle through nodes {cycle}")
        self.cycle = cycle


class Digraph:
    """Directed graph over dense integer nodes ``0..n-1``.

    Parallel edges are tolerated on insertion but collapsed for
    traversal purposes (in-degrees count distinct predecessors).
    """

    __slots__ = ("n", "_succ", "_pred_count", "_edge_set")

    def __init__(self, n: int):
        if n < 0:
            raise ValueError("node count must be non-negative")
        self.n = n
        self._succ: list[list[int]] = [[] for _ in range(n)]
        self._pred_count = [0] * n
        self._edge_set: set[int] = set()

    def _key(self, u: int, v: int) -> int:
        return u * self.n + v

    def add_edge(self, u: int, v: int) -> bool:
        """Insert edge ``u -> v``; return True if it was new."""
        if not (0 <= u < self.n and 0 <= v < self.n):
            raise IndexError(f"edge ({u}, {v}) out of range for {self.n} nodes")
        k = self._key(u, v)
        if k in self._edge_set:
            return False
        self._edge_set.add(k)
        self._succ[u].append(v)
        self._pred_count[v] += 1
        return True

    def has_edge(self, u: int, v: int) -> bool:
        return self._key(u, v) in self._edge_set

    def successors(self, u: int) -> Iterable[int]:
        return self._succ[u]

    def edges(self) -> Iterator[tuple[int, int]]:
        for u in range(self.n):
            for v in self._succ[u]:
                yield (u, v)

    @property
    def edge_count(self) -> int:
        return len(self._edge_set)

    def topological_order(self, tie_break: list[int] | None = None) -> list[int]:
        """Kahn's algorithm.  Raises :class:`CycleError` on a cycle.

        ``tie_break`` optionally assigns a priority per node; among ready
        nodes the one with the smallest priority is emitted first (used
        to produce deterministic, human-readable witness schedules).
        """
        indeg = list(self._pred_count)
        if tie_break is None:
            ready: deque[int] | list[int] = deque(
                u for u in range(self.n) if indeg[u] == 0
            )
            pop = ready.popleft  # type: ignore[union-attr]
            push = ready.append
        else:
            import heapq

            heap = [(tie_break[u], u) for u in range(self.n) if indeg[u] == 0]
            heapq.heapify(heap)

            def pop() -> int:
                return heapq.heappop(heap)[1]

            def push(v: int) -> None:
                heapq.heappush(heap, (tie_break[v], v))

            ready = heap  # for emptiness checks
        order: list[int] = []
        while ready:
            u = pop()
            order.append(u)
            for v in self._succ[u]:
                indeg[v] -= 1
                if indeg[v] == 0:
                    push(v)
        if len(order) != self.n:
            raise CycleError(self.find_cycle())
        return order

    def is_acyclic(self) -> bool:
        try:
            self.topological_order()
            return True
        except CycleError:
            return False

    def find_cycle(self) -> list[int]:
        """Return one directed cycle, as a node list (empty if acyclic)."""
        WHITE, GRAY, BLACK = 0, 1, 2
        color = [WHITE] * self.n
        parent = [-1] * self.n
        for start in range(self.n):
            if color[start] != WHITE:
                continue
            stack: list[tuple[int, int]] = [(start, 0)]
            color[start] = GRAY
            while stack:
                u, i = stack[-1]
                if i < len(self._succ[u]):
                    stack[-1] = (u, i + 1)
                    v = self._succ[u][i]
                    if color[v] == WHITE:
                        color[v] = GRAY
                        parent[v] = u
                        stack.append((v, 0))
                    elif color[v] == GRAY:
                        cycle = [u]
                        w = u
                        while w != v:
                            w = parent[w]
                            cycle.append(w)
                        cycle.reverse()
                        return cycle
                else:
                    color[u] = BLACK
                    stack.pop()
        return []

    def reachable_from(self, sources: Iterable[int]) -> set[int]:
        """Set of nodes reachable from any of ``sources`` (inclusive)."""
        seen: set[int] = set()
        stack = list(sources)
        while stack:
            u = stack.pop()
            if u in seen:
                continue
            seen.add(u)
            stack.extend(v for v in self._succ[u] if v not in seen)
        return seen

    def transitive_closure_matrix(self) -> list[set[int]]:
        """Per-node reachability sets (O(n * edges); for small graphs)."""
        try:
            order = self.topological_order()
        except CycleError:
            # Fall back to per-node BFS for cyclic graphs.
            return [self.reachable_from([u]) - {u} for u in range(self.n)]
        reach: list[set[int]] = [set() for _ in range(self.n)]
        for u in reversed(order):
            acc: set[int] = set()
            for v in self._succ[u]:
                acc.add(v)
                acc |= reach[v]
            reach[u] = acc
        return reach
