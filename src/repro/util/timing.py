"""Timing and empirical-complexity helpers for the benchmark harness.

The paper's Figure 5.3 states asymptotic bounds; we validate them
empirically by timing each algorithm across a range of input sizes and
fitting the slope of ``log(time)`` against ``log(n)`` by least squares.
A measured slope near the stated exponent (within generous tolerance:
constant factors, cache effects, and interpreter noise shift small-n
measurements) counts as reproducing the cell.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Callable, Sequence


def time_callable(fn: Callable[[], object], repeats: int = 3) -> float:
    """Best-of-``repeats`` wall-clock seconds for ``fn()``."""
    best = math.inf
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


@dataclass
class RepeatTimer:
    """Accumulates (size, seconds) samples and fits a power law."""

    samples: list[tuple[int, float]] = field(default_factory=list)

    def measure(self, size: int, fn: Callable[[], object], repeats: int = 3) -> float:
        t = time_callable(fn, repeats=repeats)
        self.samples.append((size, t))
        return t

    def slope(self) -> float:
        sizes = [n for n, _ in self.samples]
        times = [t for _, t in self.samples]
        return fit_loglog_slope(sizes, times)

    def table(self) -> str:
        lines = [f"{'n':>10}  {'seconds':>12}"]
        for n, t in self.samples:
            lines.append(f"{n:>10}  {t:>12.6f}")
        return "\n".join(lines)


def fit_loglog_slope(sizes: Sequence[int], times: Sequence[float]) -> float:
    """Least-squares slope of log(time) vs log(size).

    For an algorithm running in ``Theta(n^p)`` the slope converges to
    ``p`` as n grows.  Zero or negative timings are clamped to a small
    positive epsilon (timer resolution).
    """
    if len(sizes) != len(times):
        raise ValueError("sizes and times must have the same length")
    if len(sizes) < 2:
        raise ValueError("need at least two samples to fit a slope")
    xs = [math.log(float(n)) for n in sizes]
    ys = [math.log(max(t, 1e-9)) for t in times]
    n = len(xs)
    mx = sum(xs) / n
    my = sum(ys) / n
    sxx = sum((x - mx) ** 2 for x in xs)
    if sxx == 0.0:
        raise ValueError("all sizes identical; slope undefined")
    sxy = sum((x - mx) * (y - my) for x, y in zip(xs, ys))
    return sxy / sxx


def doubling_ratios(sizes: Sequence[int], times: Sequence[float]) -> list[float]:
    """time[i+1]/time[i] ratios — handy for eyeballing exponential growth."""
    out = []
    for (_, t0), (_, t1) in zip(zip(sizes, times), zip(sizes[1:], times[1:])):
        out.append(t1 / max(t0, 1e-9))
    return out
