"""Cooperative cancellation for long-running decision procedures.

The portfolio executor races complementary solvers on the same
instance and keeps the first verdict; the losers must stop *quickly*
but *cleanly*.  The protocol is deliberately tiny so every engine can
afford it on its hot path:

* callers pass a ``should_stop`` callable (typically
  ``threading.Event.is_set``);
* the engine polls it every ``CHECK_INTERVAL``-ish units of work
  (states expanded, solver loop iterations) and raises
  :class:`Cancelled` when it fires;
* partially-computed statistics ride on the exception so the caller
  can still account for the abandoned work.

A ``None`` ``should_stop`` means "run to completion" and costs nothing
on the hot path beyond one ``is None`` test per check interval.
"""

from __future__ import annotations

from typing import Callable, Optional

#: ``should_stop`` signature: no arguments, True means "abandon work".
StopCheck = Optional[Callable[[], bool]]

#: Default number of work units between ``should_stop`` polls.  Small
#: enough that a cancelled leg stops within milliseconds, large enough
#: that polling is invisible in profiles.
CHECK_INTERVAL = 1024

#: Poll interval for solver inner loops (CDCL), whose iterations are an
#: order of magnitude heavier than search-state expansions.
SOLVER_CHECK_INTERVAL = 256


def any_stop(*checks: StopCheck) -> StopCheck:
    """Combine several optional stop checks into one (logical OR).

    ``None`` entries are dropped; an all-``None`` combination returns
    ``None``, preserving the "no check, zero hot-path cost" fast path.
    A single survivor is returned as-is (no wrapper closure).  This is
    how a portfolio leg observes *both* the race's stop event and the
    task's deadline with one poll.
    """
    concrete = [c for c in checks if c is not None]
    if not concrete:
        return None
    if len(concrete) == 1:
        return concrete[0]

    def check() -> bool:
        return any(c() for c in concrete)

    return check


def poll(should_stop: StopCheck, steps: int, where: str, work: int,
         interval: int = CHECK_INTERVAL) -> None:
    """The engines' shared stop-check poll: every ``interval`` steps,
    consult ``should_stop`` and raise :class:`Cancelled` if it fired.

    Kept tiny and branch-predictable — this sits on the hot path of the
    frontier search and the CDCL main loop.
    """
    if (
        should_stop is not None
        and steps % interval == 0
        and should_stop()
    ):
        raise Cancelled(where, work)


class Cancelled(RuntimeError):
    """A cooperative engine observed ``should_stop`` and gave up.

    ``work`` counts the units completed before the stop was observed
    (search states, solver conflicts+decisions, encoder rows) so race
    reports can account for cancelled effort.
    """

    def __init__(self, where: str, work: int = 0):
        super().__init__(f"{where} cancelled after {work} work units")
        self.where = where
        self.work = work
