"""Soft deadlines for cooperative decision procedures.

A :class:`Deadline` is a point on the monotonic clock.  It plugs into
the engine's cooperative-cancellation protocol
(:mod:`repro.util.control`): ``deadline.as_stop_check()`` is a
``StopCheck``, so any backend that can be cancelled can also be
deadlined — no second mechanism, no signals, no watchdog threads.

Two budgets use this primitive:

* the **per-task soft deadline** (``verify --task-timeout``): each
  planned task gets its own deadline when it starts running, so one
  pathological address cannot starve the rest of the plan;
* the **per-run wall-clock budget** (``verify --timeout``): a single
  deadline created when the plan starts; the executor stops launching
  work once it expires and reports the unfinished tasks as UNKNOWN.

Deadlines are *soft*: expiry is observed at the next
:data:`~repro.util.control.CHECK_INTERVAL` poll, so a task may overrun
by one poll interval.  That is the price of never killing a worker
mid-state — an aborted search always reports a sound UNKNOWN, never a
corrupted verdict.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import monotonic, sleep


class DeadlineExpired(RuntimeError):
    """A deadline was observed expired at a cooperative checkpoint."""

    def __init__(self, where: str, overrun: float = 0.0):
        super().__init__(f"{where} exceeded its deadline by {overrun:.3f}s")
        self.where = where
        self.overrun = overrun


@dataclass(frozen=True)
class Deadline:
    """An instant on the monotonic clock after which work should stop.

    Frozen and clock-relative: a ``Deadline`` never pickles across a
    process boundary (monotonic epochs are per-process on some
    platforms) — ship ``remaining()`` seconds instead and rebuild with
    :meth:`after` on the other side.
    """

    expires_at: float

    @classmethod
    def after(cls, seconds: float | None) -> "Deadline | None":
        """A deadline ``seconds`` from now; ``None`` means no deadline
        (so optional-timeout plumbing needs no special cases)."""
        if seconds is None:
            return None
        return cls(expires_at=monotonic() + max(0.0, seconds))

    def remaining(self) -> float:
        """Seconds left; never negative."""
        return max(0.0, self.expires_at - monotonic())

    def overrun(self) -> float:
        """Seconds past expiry; never negative."""
        return max(0.0, monotonic() - self.expires_at)

    def expired(self) -> bool:
        return monotonic() >= self.expires_at

    def as_stop_check(self):
        """This deadline as a ``StopCheck`` callable."""
        return self.expired

    def check(self, where: str) -> None:
        """Raise :class:`DeadlineExpired` if the deadline has passed."""
        if self.expired():
            raise DeadlineExpired(where, self.overrun())

    def sleep(self, seconds: float) -> float:
        """Sleep ``seconds`` but never past the deadline; returns the
        time actually slept (used by retry backoff, which must not burn
        the whole run budget waiting to retry a doomed task)."""
        t = min(max(0.0, seconds), self.remaining())
        if t > 0:
            sleep(t)
        return t

    @staticmethod
    def earliest(*deadlines: "Deadline | None") -> "Deadline | None":
        """The tightest of several optional deadlines (None = unbounded)."""
        concrete = [d for d in deadlines if d is not None]
        if not concrete:
            return None
        return min(concrete, key=lambda d: d.expires_at)
