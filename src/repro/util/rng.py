"""Seeded random-number helpers.

Everything stochastic in the library (workload generators, random SAT,
fault injection) threads an explicit ``random.Random`` so that every
test, example, and benchmark is reproducible from a single seed.
"""

from __future__ import annotations

import random
from typing import Iterator


def make_rng(seed: int | random.Random | None) -> random.Random:
    """Coerce ``seed`` into a ``random.Random`` instance.

    Passing an existing ``Random`` returns it unchanged so call chains
    can share one stream; passing ``None`` produces an OS-seeded stream.
    """
    if isinstance(seed, random.Random):
        return seed
    return random.Random(seed)


def spawn_rngs(seed: int | None, count: int) -> list[random.Random]:
    """Derive ``count`` independent streams from one master seed."""
    master = make_rng(seed)
    return [random.Random(master.getrandbits(64)) for _ in range(count)]


def weighted_choice(rng: random.Random, weights: dict[str, float]) -> str:
    """Pick a key of ``weights`` with probability proportional to value."""
    total = sum(weights.values())
    if total <= 0:
        raise ValueError("weights must sum to a positive value")
    x = rng.random() * total
    acc = 0.0
    for key, w in weights.items():
        acc += w
        if x < acc:
            return key
    return key  # numeric slack lands on the last key


def partition_indices(rng: random.Random, n: int, parts: int) -> Iterator[list[int]]:
    """Randomly partition ``range(n)`` into ``parts`` (possibly empty) lists."""
    buckets: list[list[int]] = [[] for _ in range(parts)]
    for i in range(n):
        buckets[rng.randrange(parts)].append(i)
    return iter(buckets)
