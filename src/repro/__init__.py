"""repro — verifying memory coherence and consistency from traces.

A production-quality reproduction of Cantin, Lipasti & Smith,
*The Complexity of Verifying Memory Coherence and Consistency*
(SPAA 2003 / UW-Madison TR ECE-03-01).

Subpackages:

* :mod:`repro.core` — the verifiers (VMC, VSC, VSCC) with the paper's
  polynomial special cases and NP-complete general-case backends;
* :mod:`repro.engine` — the unified verification engine: pluggable
  backend registry (Figure 5.3 as data), per-address planner, parallel
  executor, and canonical-fingerprint result cache;
* :mod:`repro.sat` — a from-scratch SAT toolkit (DPLL + CDCL);
* :mod:`repro.reductions` — the paper's reductions (Figures 4.1, 5.1,
  5.2, 6.1, 6.2);
* :mod:`repro.memsys` — a bus-based MSI/MESI multiprocessor simulator
  with fault injection, used to generate executions and write-orders;
* :mod:`repro.consistency` — memory consistency models (SC, TSO, PSO,
  RMO, ...), operational checkers, and a litmus-test library;
* :mod:`repro.util` — digraphs, timing, seeded RNG.

Quick start::

    from repro import ExecutionBuilder, verify_coherence

    b = ExecutionBuilder(initial={"x": 0})
    b.process().write("x", 1).read("x", 1)
    b.process().read("x", 1).read("x", 0)
    result = verify_coherence(b.build())
    assert not result  # P1 saw the new value, then the old one

See ``examples/quickstart.py`` for a guided tour.
"""

from repro.core import (
    INITIAL,
    Execution,
    ExecutionBuilder,
    OpKind,
    Operation,
    ProcessHistory,
    VerificationResult,
    execution_from_schedule,
    is_coherent_schedule,
    is_sc_schedule,
    parse_trace,
    read,
    rmw,
    verify_coherence,
    verify_coherence_at,
    verify_sequential_consistency,
    verify_vscc,
    vsc_via_conflict,
    write,
)
from repro.engine import EngineReport, ResultCache

__version__ = "1.0.0"

__all__ = [
    "EngineReport",
    "INITIAL",
    "Execution",
    "ExecutionBuilder",
    "ResultCache",
    "OpKind",
    "Operation",
    "ProcessHistory",
    "VerificationResult",
    "execution_from_schedule",
    "is_coherent_schedule",
    "is_sc_schedule",
    "parse_trace",
    "read",
    "rmw",
    "write",
    "verify_coherence",
    "verify_coherence_at",
    "verify_sequential_consistency",
    "verify_vscc",
    "vsc_via_conflict",
    "__version__",
]
