"""JSON serialization of executions, schedules, and results.

The interchange format for storing traces on disk and for the CLI:

.. code-block:: json

    {
      "format": "repro-execution/1",
      "initial": {"x": 0},
      "final":   {"x": 2},
      "histories": [
        [{"op": "W", "addr": "x", "value": 1},
         {"op": "R", "addr": "x", "value": 1}],
        [{"op": "RW", "addr": "x", "read": 1, "written": 2}]
      ]
    }

Addresses and values must be JSON-representable (strings, numbers,
booleans, null); the distinguished initial-value sentinel round-trips
as the reserved object ``{"$initial": true}``.  Tuples (used internally
by the reductions' value names) round-trip as ``{"$tuple": [...]}``.
"""

from __future__ import annotations

import json
from typing import Any

from repro.core.types import (
    INITIAL,
    Execution,
    OpKind,
    Operation,
)

FORMAT = "repro-execution/1"


def _encode_value(v: Any) -> Any:
    if v is INITIAL:
        return {"$initial": True}
    if isinstance(v, tuple):
        return {"$tuple": [_encode_value(x) for x in v]}
    if isinstance(v, (str, int, float, bool)) or v is None:
        return v
    raise TypeError(f"value {v!r} is not JSON-serializable in this format")


def _decode_value(v: Any) -> Any:
    if isinstance(v, dict):
        if v.get("$initial"):
            return INITIAL
        if "$tuple" in v:
            return tuple(_decode_value(x) for x in v["$tuple"])
        raise ValueError(f"unrecognized value object {v!r}")
    return v


def _encode_op(op: Operation) -> dict:
    if op.kind is OpKind.READ:
        return {"op": "R", "addr": _encode_value(op.addr),
                "value": _encode_value(op.value_read)}
    if op.kind is OpKind.WRITE:
        return {"op": "W", "addr": _encode_value(op.addr),
                "value": _encode_value(op.value_written)}
    if op.kind is OpKind.RMW:
        return {"op": "RW", "addr": _encode_value(op.addr),
                "read": _encode_value(op.value_read),
                "written": _encode_value(op.value_written)}
    return {"op": op.kind.value, "addr": _encode_value(op.addr)}


def _decode_op(d: dict, proc: int, index: int) -> Operation:
    kind = d.get("op")
    addr = _decode_value(d.get("addr"))
    if kind == "R":
        return Operation(OpKind.READ, addr, proc, index,
                         value_read=_decode_value(d["value"]))
    if kind == "W":
        return Operation(OpKind.WRITE, addr, proc, index,
                         value_written=_decode_value(d["value"]))
    if kind == "RW":
        return Operation(OpKind.RMW, addr, proc, index,
                         value_read=_decode_value(d["read"]),
                         value_written=_decode_value(d["written"]))
    if kind == "ACQ":
        return Operation(OpKind.ACQUIRE, addr, proc, index)
    if kind == "REL":
        return Operation(OpKind.RELEASE, addr, proc, index)
    raise ValueError(f"unknown operation kind {kind!r}")


def execution_to_dict(execution: Execution) -> dict:
    """The JSON-ready dictionary form of an execution."""
    def kv_list(mapping: dict) -> list:
        # Addresses may be non-string (ints, tuples): use pair lists.
        return [[_encode_value(k), _encode_value(v)] for k, v in mapping.items()]

    return {
        "format": FORMAT,
        "initial": kv_list(execution.initial),
        "final": kv_list(execution.final),
        "histories": [
            [_encode_op(op) for op in h] for h in execution.histories
        ],
    }


def execution_from_dict(data: dict) -> Execution:
    """Inverse of :func:`execution_to_dict` (validates the format tag)."""
    if data.get("format") != FORMAT:
        raise ValueError(
            f"not a {FORMAT} document (format={data.get('format')!r})"
        )

    def from_kv(pairs) -> dict:
        return {_decode_value(k): _decode_value(v) for k, v in pairs}

    histories = [
        [_decode_op(d, proc, i) for i, d in enumerate(ops)]
        for proc, ops in enumerate(data.get("histories", []))
    ]
    return Execution.from_ops(
        histories,
        initial=from_kv(data.get("initial", [])),
        final=from_kv(data.get("final", [])),
    )


def dumps(execution: Execution, indent: int | None = 2) -> str:
    """Serialize an execution to a JSON string."""
    return json.dumps(execution_to_dict(execution), indent=indent)


def loads(text: str) -> Execution:
    """Parse an execution from a JSON string."""
    return execution_from_dict(json.loads(text))


def save(execution: Execution, path) -> None:
    """Write an execution to ``path`` as JSON."""
    from pathlib import Path

    Path(path).write_text(dumps(execution))


def load(path) -> Execution:
    """Read an execution from a file — JSON, or the binary trace
    format (:mod:`repro.core.serialize_bin`) when the magic matches."""
    from pathlib import Path

    raw = Path(path).read_bytes()
    from repro.core import serialize_bin

    if serialize_bin.sniff(raw):
        return serialize_bin.loads_bin(raw)
    return loads(raw.decode("utf-8"))


def parse_trace_bytes(raw: bytes, source: str = "<bytes>", suffix: str = "") -> Execution:
    """Decode trace bytes from *any* supported on-disk format.

    Content sniffing, not extension trust: the framed-stream magic
    (REPROSTM) wins, then the binary trace magic (REPROBIN), then
    JSON-shaped text, then the line-oriented text format.  ``source``
    labels error messages (a path, or ``<stdin>``); every failure is a
    ``ValueError`` naming it.  This is the single decoding path shared
    by the CLI (``verify``/``monitor``/``batch``) and the batch engine.
    """
    from repro.core import serialize_bin

    if serialize_bin.sniff_stream(raw):
        try:
            execution, _ = serialize_bin.loads_stream(raw)
            return execution
        except serialize_bin.BinaryFormatError as e:
            raise ValueError(f"{source}: malformed stream: {e}") from e
    if serialize_bin.sniff(raw):
        try:
            return serialize_bin.loads_bin(raw)
        except serialize_bin.BinaryFormatError as e:
            raise ValueError(f"{source}: malformed binary trace: {e}") from e
    try:
        text = raw.decode("utf-8")
    except UnicodeDecodeError as e:
        raise ValueError(
            f"{source}: not a binary trace, and not UTF-8 text "
            f"(bad byte at {e.start})"
        ) from e
    # A .json suffix means the serialize format, but so does JSON-shaped
    # content under any name — sniff the first significant character.
    if suffix == ".json" or text.lstrip()[:1] in ("{", "["):
        try:
            return loads(text)
        except json.JSONDecodeError as e:
            # One line, naming the file and the byte offset, so a
            # truncated or corrupted trace in a big sweep is findable.
            raise ValueError(
                f"{source}: malformed JSON at byte {e.pos} "
                f"(line {e.lineno}, column {e.colno}): {e.msg}"
            ) from e
    from repro.core.builder import parse_trace

    return parse_trace(text)


def load_any(path) -> Execution:
    """Read an execution from a file in any supported format
    (see :func:`parse_trace_bytes`)."""
    from pathlib import Path

    p = Path(path)
    if not p.exists():
        raise FileNotFoundError(f"trace file {p} does not exist")
    return parse_trace_bytes(p.read_bytes(), str(p), p.suffix)
