"""Pluggable data-plane kernels for the polynomial hot paths.

The happens-before saturation of :func:`repro.core.infer.infer_order`
and the read-elimination scan of :func:`~repro.core.infer.eliminate_reads`
spend their time in three inner loops — reachability closure over the
precedence DAG, the coherence (``wr``) / from-read (``fr``) forced-edge
rules, and the covered/front/tail read scan.  This module provides two
interchangeable implementations of those loops:

* ``python`` — pure-python integer bitsets.  Adjacency, predecessor
  and reachability sets are arbitrary-precision ints (one bit per
  operation), steps are recorded into compact parallel arrays, and
  reason strings are never built unless a cycle or an export demands
  them.  Always available; it is both the fallback when numpy is not
  installed and the *differential oracle* the vectorized kernels are
  pinned against.
* ``numpy`` — the same algorithms over packed ``uint64`` bitset
  matrices (``n x ceil(n/64)``), with the per-pair rule application,
  bit unpacking and reachability accumulation vectorized.  Optional:
  ``pip install repro[fast]``.

Selection (:func:`backend`): an explicit ``kernels.use(...)`` override
wins, then the ``REPRO_KERNEL`` environment variable (``python`` or
``numpy``), then auto — numpy when importable, python otherwise.  The
registry (:func:`register`) accepts third-party kernels by name.

Equivalence contract: for the same instance both kernels derive the
*same* edges with the same rule attributions in the same per-round
batched order, report the same round count, find cycles with the same
extraction procedure, and rank the same forced write order — so
verdicts, certificates, hints and step logs are identical and
``tests/core/test_kernels.py`` can assert full equality, not just
verdict agreement.
"""

from __future__ import annotations

import os
import sys
from array import array
from contextlib import contextmanager
from typing import Iterator, Sequence

#: Step rule codes (the wire order of RULE_NAMES is load-bearing:
#: certificates store the names, columnar step arrays store the codes).
RULE_PO, RULE_RF, RULE_INIT, RULE_FIN, RULE_FINR, RULE_WR, RULE_FR = range(7)
RULE_NAMES = ("po", "rf", "init", "fin", "finr", "wr", "fr")

#: Environment variable selecting the kernel backend.
KERNEL_ENV = "REPRO_KERNEL"

#: One recorded derivation step over flat node ids:
#: ``(u, v, rule_code, aux_w, aux_r)`` — aux is the forced reads-from
#: pair for wr/fr closure steps, ``-1`` otherwise.
StepRow = tuple[int, int, int, int, int]


class KernelUnavailable(RuntimeError):
    """The requested kernel backend cannot run in this environment."""


# ---------------------------------------------------------------------
# Shared helpers
# ---------------------------------------------------------------------
def _find_cycle_masks(succ: Sequence[int], n: int) -> list[int]:
    """One directed cycle in a graph given as successor bitmasks.

    Iterative coloring DFS visiting successors in ascending node order;
    both backends funnel cycle extraction through this function so they
    report the *same* cycle for the same graph.
    """
    WHITE, GRAY, BLACK = 0, 1, 2
    color = [WHITE] * n
    parent = [-1] * n
    for start in range(n):
        if color[start] != WHITE:
            continue
        stack: list[tuple[int, int]] = [(start, succ[start])]
        color[start] = GRAY
        while stack:
            u, remaining = stack[-1]
            if remaining:
                b = remaining & -remaining
                stack[-1] = (u, remaining ^ b)
                v = b.bit_length() - 1
                if color[v] == WHITE:
                    color[v] = GRAY
                    parent[v] = u
                    stack.append((v, succ[v]))
                elif color[v] == GRAY:
                    cycle = [u]
                    w = u
                    while w != v:
                        w = parent[w]
                        cycle.append(w)
                    cycle.reverse()
                    return cycle
            else:
                color[u] = BLACK
                stack.pop()
    return []


class EliminationScan:
    """Raw outcome of the covered/front/tail read scan over one
    execution, in flat (process-major) positions.

    ``eliminated[i]`` is a flat position removed by the covered/front
    rules, ``anchors[i]`` the flat position it re-inserts after (``-1``
    = front of the schedule); ``tails`` are positions moved to the very
    end.  All three lists are in the order the object-model scan would
    have discovered them, so :func:`repro.core.infer.eliminate_reads`
    rebuilds byte-identical plans from either backend.
    """

    __slots__ = ("eliminated", "anchors", "tails")

    def __init__(
        self,
        eliminated: Sequence[int],
        anchors: Sequence[int],
        tails: Sequence[int],
    ):
        self.eliminated = eliminated
        self.anchors = anchors
        self.tails = tails

    @property
    def total(self) -> int:
        return len(self.eliminated) + len(self.tails)


# ---------------------------------------------------------------------
# Pure-python kernel (fallback + oracle)
# ---------------------------------------------------------------------
class PythonSaturation:
    """Happens-before saturation state over int-bitset adjacency.

    ``succ[u]``/``pred[v]`` are bitmasks; every accepted edge is
    appended to the parallel step arrays.  Reason strings are *not*
    produced here — callers materialize them lazily from the step rows.
    """

    __slots__ = (
        "n", "succ", "pred", "rounds", "reach",
        "step_u", "step_v", "step_rule", "step_aux_w", "step_aux_r",
        "non_po_edges",
    )

    def __init__(self, n: int):
        self.n = n
        self.succ = [0] * n
        self.pred = [0] * n
        self.rounds = 0
        #: Forward reachability bitsets from the final closure round.
        self.reach: list[int] | None = None
        self.step_u = array("I")
        self.step_v = array("I")
        self.step_rule = array("B")
        self.step_aux_w = array("i")
        self.step_aux_r = array("i")
        self.non_po_edges = 0

    def add(
        self, u: int, v: int, rule: int, aux_w: int = -1, aux_r: int = -1,
        force_step: bool = False,
    ) -> bool:
        """Insert edge ``u -> v`` and record its derivation; False when
        it is a self-loop or already present.

        ``force_step`` records the derivation even for an existing edge
        — needed for ``rf`` steps shadowed by program order: closure
        steps cite the reads-from *pair*, and the certificate checker
        only accepts pairs whose own ``rf`` step appears in the log.
        """
        if u == v:
            return False
        bit = 1 << v
        if self.succ[u] & bit:
            if force_step:
                self.step_u.append(u)
                self.step_v.append(v)
                self.step_rule.append(rule)
                self.step_aux_w.append(aux_w)
                self.step_aux_r.append(aux_r)
                if rule != RULE_PO:
                    self.non_po_edges += 1
            return False
        self.succ[u] |= bit
        self.pred[v] |= 1 << u
        self.step_u.append(u)
        self.step_v.append(v)
        self.step_rule.append(rule)
        self.step_aux_w.append(aux_w)
        self.step_aux_r.append(aux_r)
        if rule != RULE_PO:
            self.non_po_edges += 1
        return True

    def grow(self, m: int) -> None:
        """Add ``m`` fresh isolated nodes (ids ``n .. n+m-1``).

        The incremental streaming path appends operations to a live
        saturation instead of rebuilding it; existing edges, step logs
        and ids are untouched.  Invalidates ``reach`` — re-run
        :meth:`saturate` before querying the closure.
        """
        if m <= 0:
            return
        self.succ.extend([0] * m)
        self.pred.extend([0] * m)
        self.n += m
        self.reach = None

    @property
    def edge_count(self) -> int:
        return len(self.step_u)

    def steps(self) -> Iterator[StepRow]:
        return zip(
            self.step_u, self.step_v, self.step_rule,
            self.step_aux_w, self.step_aux_r,
        )

    def has_edge(self, u: int, v: int) -> bool:
        return bool(self.succ[u] >> v & 1)

    # -- closure ----------------------------------------------------------
    def _toposort(self) -> list[int] | None:
        """Topological order, or None when the graph has a cycle."""
        succ = self.succ
        indeg = [p.bit_count() for p in self.pred]
        stack = [u for u in range(self.n) if not indeg[u]]
        order: list[int] = []
        while stack:
            u = stack.pop()
            order.append(u)
            m = succ[u]
            while m:
                b = m & -m
                m ^= b
                v = b.bit_length() - 1
                indeg[v] -= 1
                if not indeg[v]:
                    stack.append(v)
        return order if len(order) == self.n else None

    def _closure(self, order: list[int]) -> list[int]:
        """Forward reachability bitsets (reverse topological sweep)."""
        reach = [0] * self.n
        succ = self.succ
        for u in reversed(order):
            m = succ[u]
            acc = 0
            while m:
                b = m & -m
                m ^= b
                acc |= reach[b.bit_length() - 1]
            reach[u] = acc | succ[u]
        return reach

    def _rclosure(self, order: list[int]) -> list[int]:
        """Backward reachability bitsets (forward topological sweep)."""
        rreach = [0] * self.n
        pred = self.pred
        for u in order:
            m = pred[u]
            acc = 0
            while m:
                b = m & -m
                m ^= b
                acc |= rreach[b.bit_length() - 1]
            rreach[u] = acc | pred[u]
        return rreach

    # -- the saturation loop ----------------------------------------------
    def saturate(
        self,
        forced_rf: Sequence[tuple[int, int]],
        writes: Sequence[int],
    ) -> list[int] | None:
        """Apply the wr/fr closure rules to fixpoint.

        Returns a cycle (node list) when the necessary edges become
        cyclic, else None; ``self.reach`` then holds the final closure.
        Per round, per forced pair ``w -> r``: every write that reaches
        ``r`` must precede ``w`` (wr), every write ``w`` reaches must
        follow ``r`` (fr) — batched as bitset candidate masks, wr before
        fr, ascending node order within each batch.
        """
        wmask = 0
        for w in writes:
            wmask |= 1 << w
        while True:
            self.rounds += 1
            order = self._toposort()
            if order is None:
                return _find_cycle_masks(self.succ, self.n)
            reach = self._closure(order)
            self.reach = reach
            if not forced_rf:
                return None
            rreach = self._rclosure(order)
            changed = False
            for w, r in forced_rf:
                excl = ~((1 << w) | (1 << r))
                cand = rreach[r] & wmask & ~self.pred[w] & excl
                while cand:
                    b = cand & -cand
                    cand ^= b
                    changed |= self.add(
                        b.bit_length() - 1, w, RULE_WR, w, r
                    )
                cand = reach[w] & wmask & ~self.succ[r] & excl
                while cand:
                    b = cand & -cand
                    cand ^= b
                    changed |= self.add(
                        r, b.bit_length() - 1, RULE_FR, w, r
                    )
            if not changed:
                return None

    # -- forced write order ----------------------------------------------
    def write_order(self, writes: Sequence[int]) -> list[int] | None:
        """The forced total order over ``writes``, or None when the
        closure leaves any pair unordered.  Writes are ranked by how
        many other writes they reach; the ranking is a total order iff
        consecutive ranks are actually connected."""
        if len(writes) <= 1:
            return list(writes)
        reach = self.reach
        assert reach is not None, "saturate() must run first"
        wmask = 0
        for w in writes:
            wmask |= 1 << w
        ranked = sorted(
            writes, key=lambda w: -(reach[w] & wmask).bit_count()
        )
        if all(
            reach[a] >> b & 1 for a, b in zip(ranked, ranked[1:])
        ):
            return ranked
        return None


class PythonKernel:
    """Int-bitset data plane: always available, also the oracle."""

    name = "python"

    @staticmethod
    def is_available() -> bool:
        return True

    def saturation(self, n: int) -> PythonSaturation:
        return PythonSaturation(n)

    def eliminate_scan(self, view) -> EliminationScan | None:
        """Covered/front/tail read decisions over the columnar view.

        Mirrors the object-model walk rule for rule: a READ is covered
        when its immediate program-order predecessor touches the same
        address and determines its value; a leading READ of the initial
        value goes to the front; a surviving trailing READ of the
        required final value goes to the tail.  Returns None when
        nothing is eliminated.
        """
        from repro.core.columnar import KIND_CODES
        from repro.core.types import OpKind

        READ = KIND_CODES[OpKind.READ]
        kinds = view.kinds
        addr_ids = view.addr_ids
        rv = view.read_vids
        wv = view.write_vids
        initial_ids = view.initial_ids
        final_ids = view.final_ids
        values = view.values

        eliminated: list[int] = []
        anchors: list[int] = []
        tails: list[int] = []
        for p in range(view.n_procs):
            start = view.proc_offsets[p]
            stop = view.proc_offsets[p + 1]
            prev_anchor = -2  # -2 = no predecessor; -1 = front
            last_survivor = -2
            for i in range(start, stop):
                anchor = -2
                if kinds[i] == READ:
                    if i > start:
                        # Determined value of the immediate predecessor:
                        # written value if it writes, read value if it
                        # is a READ (sync ops determine nothing, but
                        # sync disables elimination upstream).
                        det = wv[i - 1] if wv[i - 1] >= 0 else (
                            rv[i - 1] if kinds[i - 1] == READ else -2
                        )
                        if addr_ids[i - 1] == addr_ids[i] and det == rv[i]:
                            anchor = prev_anchor
                    elif rv[i] == initial_ids[addr_ids[i]]:
                        anchor = -1
                if anchor == -2:
                    last_survivor = i
                    prev_anchor = i
                else:
                    eliminated.append(i)
                    anchors.append(anchor)
                    prev_anchor = anchor
            if last_survivor == stop - 1 and stop > start:
                i = last_survivor
                fi = final_ids[addr_ids[i]]
                if (
                    kinds[i] == READ
                    and fi >= 0
                    and values[fi] is not None
                    and rv[i] == fi
                ):
                    tails.append(i)
        if not eliminated and not tails:
            return None
        return EliminationScan(eliminated, anchors, tails)


# ---------------------------------------------------------------------
# numpy kernel (optional, vectorized)
# ---------------------------------------------------------------------
class NumpySaturation:
    """The same saturation over packed uint64 bitset matrices.

    Adjacency/predecessor/reachability are ``(n, ceil(n/64))`` uint64
    matrices; candidate masks, edge scatter, bit unpacking and the
    reachability accumulation are numpy operations, with python loops
    only over nodes and forced pairs — never over individual edges.
    Steps are recorded as chunks (one per batch) and flattened lazily.
    """

    __slots__ = (
        "np", "n", "W", "succ", "pred", "rounds", "reach",
        "_chunks", "_edge_count", "non_po_edges",
    )

    def __init__(self, n: int, np_module):
        np = np_module
        self.np = np
        self.n = n
        self.W = max(1, (n + 63) >> 6)
        self.succ = np.zeros((n, self.W), dtype=np.uint64)
        self.pred = np.zeros((n, self.W), dtype=np.uint64)
        self.rounds = 0
        self.reach = None
        #: Step chunks: (u_array, v_array, rule, aux_w, aux_r) — scalar
        #: adds append 1-element chunks coalesced into python lists.
        self._chunks: list[tuple] = []
        self._edge_count = 0
        self.non_po_edges = 0

    def add(
        self, u: int, v: int, rule: int, aux_w: int = -1, aux_r: int = -1,
        force_step: bool = False,
    ) -> bool:
        if u == v:
            return False
        np = self.np
        vw, vb = v >> 6, np.uint64(1 << (v & 63))
        if self.succ[u, vw] & vb:
            if force_step:
                # Same contract as the python kernel: an rf step
                # shadowed by an existing edge still enters the log so
                # closure steps can cite its pair.
                self._chunks.append(((u,), (v,), rule, aux_w, aux_r))
                self._edge_count += 1
                if rule != RULE_PO:
                    self.non_po_edges += 1
            return False
        self.succ[u, vw] |= vb
        self.pred[v, u >> 6] |= np.uint64(1 << (u & 63))
        self._chunks.append(((u,), (v,), rule, aux_w, aux_r))
        self._edge_count += 1
        if rule != RULE_PO:
            self.non_po_edges += 1
        return True

    def grow(self, m: int) -> None:
        """Add ``m`` fresh isolated nodes — same contract as the python
        kernel: pads the packed matrices (both rows and, when the new
        size crosses a 64-bit word boundary, columns) and invalidates
        ``reach``."""
        if m <= 0:
            return
        np = self.np
        n2 = self.n + m
        W2 = max(1, (n2 + 63) >> 6)
        for attr in ("succ", "pred"):
            old = getattr(self, attr)
            new = np.zeros((n2, W2), dtype=np.uint64)
            new[: self.n, : self.W] = old
            setattr(self, attr, new)
        self.n = n2
        self.W = W2
        self.reach = None

    @property
    def edge_count(self) -> int:
        return self._edge_count

    def steps(self) -> Iterator[StepRow]:
        for us, vs, rule, aux_w, aux_r in self._chunks:
            for u, v in zip(us, vs):
                yield (int(u), int(v), rule, aux_w, aux_r)

    def has_edge(self, u: int, v: int) -> bool:
        return bool(self.succ[u, v >> 6] >> self.np.uint64(v & 63) & 1)

    # -- packed helpers ---------------------------------------------------
    def _unpack_csr(self, matrix):
        """CSR (offsets, cols) adjacency from a packed bit matrix."""
        np = self.np
        bits = np.unpackbits(
            matrix.view(np.uint8), bitorder="little"
        ).reshape(self.n, self.W * 64)[:, : self.n]
        counts = bits.sum(axis=1, dtype=np.int64)
        offsets = np.zeros(self.n + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        cols = np.nonzero(bits)[1].astype(np.int64)
        return offsets, cols

    def _bit_indices(self, mask) -> "list[int]":
        """Ascending set-bit positions of one packed row vector."""
        np = self.np
        bits = np.unpackbits(mask.view(np.uint8), bitorder="little")
        return np.nonzero(bits)[0]

    def _toposort(self):
        """Topological order (int64 array), or None on a cycle; also
        returns the successor CSR so the closure can reuse it."""
        np = self.np
        offsets, cols = self._unpack_csr(self.succ)
        indeg = np.bitwise_count(self.pred).sum(axis=1, dtype=np.int64)
        order = np.empty(self.n, dtype=np.int64)
        stack = np.nonzero(indeg == 0)[0].tolist()
        k = 0
        while stack:
            u = stack.pop()
            order[k] = u
            k += 1
            cs = cols[offsets[u]:offsets[u + 1]]
            if len(cs):
                indeg[cs] -= 1
                stack.extend(cs[indeg[cs] == 0].tolist())
        if k != self.n:
            return None, offsets, cols
        return order, offsets, cols

    def _closure_packed(self, order, offsets, cols, adjacency):
        """Reachability matrix: sweep ``order``, OR-reducing successor
        rows (`adjacency` = packed succ for forward reach over a
        reversed order, packed pred for backward reach in order)."""
        np = self.np
        reach = np.zeros_like(adjacency)
        for u in order:
            cs = cols[offsets[u]:offsets[u + 1]]
            if len(cs):
                row = np.bitwise_or.reduce(reach[cs], axis=0)
                reach[u] = row | adjacency[u]
            else:
                reach[u] = adjacency[u]
        return reach

    def saturate(self, forced_rf, writes):
        np = self.np
        wmask = np.zeros(self.W, dtype=np.uint64)
        for w in writes:
            wmask[w >> 6] |= np.uint64(1 << (w & 63))
        while True:
            self.rounds += 1
            order, soff, scols = self._toposort()
            if order is None:
                return _find_cycle_masks(self._succ_masks(), self.n)
            reach = self._closure_packed(order[::-1], soff, scols, self.succ)
            self.reach = reach
            if not forced_rf:
                return None
            poff, pcols = self._unpack_csr(self.pred)
            rreach = self._closure_packed(order, poff, pcols, self.pred)
            changed = False
            for w, r in forced_rf:
                bw_w, bw_b = w >> 6, np.uint64(1 << (w & 63))
                br_w, br_b = r >> 6, np.uint64(1 << (r & 63))
                # wr: writes reaching r, minus existing pred of w, minus
                # the pair itself — then scatter the new edges w2 -> w.
                cand = rreach[r] & wmask & ~self.pred[w]
                cand[bw_w] &= ~bw_b
                cand[br_w] &= ~br_b
                if cand.any():
                    w2s = self._bit_indices(cand)
                    self.succ[w2s, bw_w] |= bw_b
                    self.pred[w] |= cand
                    self._chunks.append((w2s, _Const(w), RULE_WR, w, r))
                    self._edge_count += len(w2s)
                    self.non_po_edges += len(w2s)
                    changed = True
                # fr: writes reached from w, minus existing succ of r.
                cand = reach[w] & wmask & ~self.succ[r]
                cand[bw_w] &= ~bw_b
                cand[br_w] &= ~br_b
                if cand.any():
                    w2s = self._bit_indices(cand)
                    self.succ[r] |= cand
                    self.pred[w2s, br_w] |= br_b
                    self._chunks.append((_Const(r), w2s, RULE_FR, w, r))
                    self._edge_count += len(w2s)
                    self.non_po_edges += len(w2s)
                    changed = True
            if not changed:
                return None

    def _succ_masks(self) -> list[int]:
        """Successor bitmasks as python ints (cycle extraction only)."""
        data = self.succ.tobytes()
        stride = self.W * 8
        return [
            int.from_bytes(data[i * stride:(i + 1) * stride], "little")
            for i in range(self.n)
        ]

    def write_order(self, writes):
        if len(writes) <= 1:
            return list(writes)
        np = self.np
        reach = self.reach
        wmask = np.zeros(self.W, dtype=np.uint64)
        for w in writes:
            wmask[w >> 6] |= np.uint64(1 << (w & 63))
        w_idx = np.asarray(list(writes), dtype=np.int64)
        counts = np.bitwise_count(reach[w_idx] & wmask).sum(
            axis=1, dtype=np.int64
        )
        # Stable sort on negated counts == python's sorted(key=-count).
        ranked = w_idx[np.argsort(-counts, kind="stable")].tolist()
        for a, b in zip(ranked, ranked[1:]):
            if not (reach[a, b >> 6] >> np.uint64(b & 63)) & np.uint64(1):
                return None
        return ranked


class _Const:
    """A scalar masquerading as a same-length sequence in a step chunk."""

    __slots__ = ("value",)

    def __init__(self, value: int):
        self.value = value

    def __iter__(self):  # zip() stops at the paired array's length
        while True:
            yield self.value


class NumpyKernel:
    """Vectorized data plane over numpy packed-uint64 matrices."""

    name = "numpy"

    def __init__(self):
        import numpy

        self.np = numpy

    @staticmethod
    def is_available() -> bool:
        if sys.byteorder != "little":  # packed views assume LE layout
            return False
        try:
            import numpy  # noqa: F401
        except ImportError:
            return False
        return True

    def saturation(self, n: int) -> NumpySaturation:
        return NumpySaturation(n, self.np)

    def eliminate_scan(self, view) -> EliminationScan | None:
        """Vectorized covered/front/tail scan; same decisions, same
        discovery order as the python kernel."""
        np = self.np
        from repro.core.columnar import KIND_CODES
        from repro.core.types import OpKind

        n = view.n_ops
        if n == 0:
            return None
        READ = KIND_CODES[OpKind.READ]
        kinds = np.frombuffer(view.kinds, dtype=np.uint8)
        addr_ids = np.frombuffer(view.addr_ids, dtype=np.uint32)
        rv = np.frombuffer(view.read_vids, dtype=np.int32)
        wv = np.frombuffer(view.write_vids, dtype=np.int32)
        initial_ids = np.frombuffer(view.initial_ids, dtype=np.int32)
        final_ids = np.frombuffer(view.final_ids, dtype=np.int32)
        offsets = np.frombuffer(view.proc_offsets, dtype=np.uint64).astype(
            np.int64
        )
        starts = np.zeros(n, dtype=bool)
        starts[offsets[:-1][offsets[:-1] < n]] = True

        is_read = kinds == READ
        det = np.where(wv >= 0, wv, np.where(is_read, rv, -2))
        prev_det = np.empty(n, dtype=det.dtype)
        prev_det[0] = -2
        prev_det[1:] = det[:-1]
        prev_addr = np.empty(n, dtype=addr_ids.dtype)
        prev_addr[0] = 0
        prev_addr[1:] = addr_ids[:-1]
        covered = (
            is_read & ~starts & (prev_addr == addr_ids) & (prev_det == rv)
        )
        front = is_read & starts & (rv == initial_ids[addr_ids])
        elim = covered | front
        if not elim.any():
            tails_only = self._tails(view, elim)
            if not tails_only:
                return None
            return EliminationScan([], [], tails_only)

        # Anchor = nearest surviving position before i in its process,
        # else the front sentinel -1.  A global running max of survivor
        # positions suffices: positions grow monotonically, so a
        # survivor from an earlier process is always below the current
        # process's start offset — thresholding restores the reset.
        idx = np.arange(n, dtype=np.int64)
        run = np.maximum.accumulate(np.where(elim, -1, idx))
        prev_run = np.empty(n, dtype=np.int64)
        prev_run[0] = -1
        prev_run[1:] = run[:-1]
        base = np.maximum.accumulate(np.where(starts, idx, 0))
        anchors_flat = np.where(prev_run >= base, prev_run, -1)
        eliminated = idx[elim].tolist()
        anchors = anchors_flat[elim].tolist()
        tails = self._tails(view, elim)
        return EliminationScan(eliminated, anchors, tails)

    def _tails(self, view, elim) -> list[int]:
        from repro.core.columnar import KIND_CODES
        from repro.core.types import OpKind

        READ = KIND_CODES[OpKind.READ]
        tails: list[int] = []
        for p in range(view.n_procs):
            s, e = view.proc_offsets[p], view.proc_offsets[p + 1]
            if e == s or elim[e - 1]:
                continue
            i = e - 1
            fi = view.final_ids[view.addr_ids[i]]
            if (
                view.kinds[i] == READ
                and fi >= 0
                and view.values[fi] is not None
                and view.read_vids[i] == fi
            ):
                tails.append(i)
        return tails


# ---------------------------------------------------------------------
# Registry and selection
# ---------------------------------------------------------------------
_REGISTRY: dict[str, type] = {
    "python": PythonKernel,
    "numpy": NumpyKernel,
}
_INSTANCES: dict[str, object] = {}
_OVERRIDE: list[str] = []  # stack of use() overrides


def register(name: str, factory: type) -> None:
    """Register a kernel backend class under ``name`` (must expose
    ``name``, ``is_available()``, ``saturation(n)``, ``eliminate_scan``)."""
    _REGISTRY[name] = factory


def available_backends() -> list[str]:
    """Names of the registered backends that can run here."""
    return [
        name for name, cls in _REGISTRY.items()
        if _is_available(cls)
    ]


def _is_available(cls) -> bool:
    probe = getattr(cls, "is_available", None)
    return bool(probe()) if probe is not None else True


def backend(name: str | None = None):
    """Resolve and instantiate the active kernel backend.

    Priority: explicit ``name`` argument, then the innermost
    :func:`use` override, then ``$REPRO_KERNEL``, then auto (numpy when
    importable, python otherwise).  Instances are cached per name.
    """
    if name is None:
        if _OVERRIDE:
            name = _OVERRIDE[-1]
        else:
            name = os.environ.get(KERNEL_ENV) or None
    if name is None or name == "auto":
        name = "numpy" if _is_available(_REGISTRY["numpy"]) else "python"
    cls = _REGISTRY.get(name)
    if cls is None:
        raise KernelUnavailable(
            f"unknown kernel backend {name!r}; registered: "
            f"{sorted(_REGISTRY)}"
        )
    if not _is_available(cls):
        raise KernelUnavailable(
            f"kernel backend {name!r} is not available in this "
            f"environment (is the optional dependency installed? "
            f"try `pip install repro[fast]` for numpy)"
        )
    inst = _INSTANCES.get(name)
    if inst is None:
        inst = _INSTANCES[name] = cls()
    return inst


@contextmanager
def use(name: str):
    """Force a backend within a scope (tests and benchmarks)."""
    backend(name)  # fail fast on unavailable backends
    _OVERRIDE.append(name)
    try:
        yield
    finally:
        _OVERRIDE.pop()
