"""The public VSC verifier (Definition 6.1).

Sequential consistency asks for a *single* legal schedule over all
addresses at once.  Routing:

1. single-address executions are VMC instances (the paper's Section 6.1
   restriction argument) — delegate to the coherence dispatcher;
2. small state spaces → exact frontier search (polynomial for constant
   process count, the Gibbons–Korach O(n^k k^c) cell);
3. otherwise → CNF + CDCL.
"""

from __future__ import annotations

from repro.core import exact
from repro.core.encode import sat_vsc
from repro.core.result import VerificationResult
from repro.core.types import Execution
from repro.core.vmc import _estimated_states, _EXACT_STATE_BUDGET


def verify_sequential_consistency(
    execution: Execution, method: str = "auto"
) -> VerificationResult:
    """Decide whether a sequentially consistent schedule exists."""
    if method == "auto":
        if _estimated_states(execution) <= _EXACT_STATE_BUDGET:
            return exact.exact_vsc(execution)
        return sat_vsc(execution)
    if method == "exact":
        return exact.exact_vsc(execution)
    if method in ("sat", "sat-cdcl"):
        return sat_vsc(execution, solver="cdcl")
    if method == "sat-dpll":
        return sat_vsc(execution, solver="dpll")
    raise ValueError(f"unknown method {method!r}")
