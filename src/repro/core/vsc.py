"""The public VSC verifier (Definition 6.1): a shim over the engine.

Sequential consistency asks for a *single* legal schedule over all
addresses at once, so — unlike VMC — the query does not decompose per
address.  Routing (see :func:`repro.engine.registry.build_vsc_registry`):

1. small state spaces → exact frontier search (polynomial for constant
   process count, the Gibbons–Korach O(n^k k^c) cell);
2. otherwise → CNF + CDCL.
"""

from __future__ import annotations

from repro.core.result import VerificationResult
from repro.core.types import Execution
from repro.engine import verify_vsc

# Backwards-compatible aliases (previously defined in repro.core.vmc).
from repro.core.vmc import _estimated_states, _EXACT_STATE_BUDGET  # noqa: F401


def verify_sequential_consistency(
    execution: Execution,
    method: str = "auto",
    prepass: bool = True,
    portfolio=True,
    resilience=None,
    certify: str = "off",
) -> VerificationResult:
    """Decide whether a sequentially consistent schedule exists."""
    return verify_vsc(
        execution, method=method, prepass=prepass, portfolio=portfolio,
        resilience=resilience, certify=certify,
    )
