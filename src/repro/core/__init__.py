"""The paper's contribution: verifiers for memory coherence/consistency.

Public surface:

* data model — :class:`Operation`, :class:`ProcessHistory`,
  :class:`Execution`, :data:`INITIAL`;
* construction — :class:`ExecutionBuilder`, :func:`parse_trace`;
* certificate checking — :func:`is_coherent_schedule`,
  :func:`is_sc_schedule`;
* decision procedures — :func:`verify_coherence`,
  :func:`verify_coherence_at`, :func:`verify_sequential_consistency`,
  :func:`verify_vscc`, :func:`vsc_via_conflict`, :func:`vsc_conflict`.
"""

from repro.core.types import (
    INITIAL,
    Address,
    Execution,
    OpKind,
    Operation,
    ProcessHistory,
    Value,
    read,
    rmw,
    schedule_str,
    write,
)
from repro.core.builder import ExecutionBuilder, ProcessBuilder, parse_trace
from repro.core.checker import (
    CheckOutcome,
    execution_from_schedule,
    is_coherent_schedule,
    is_sc_schedule,
    schedule_respects_program_order,
    value_trace_ok,
)
from repro.core.result import VerificationResult
from repro.core.exact import SearchBudgetExceeded, exact_vmc, exact_vsc
from repro.core.vmc import verify_coherence, verify_coherence_at
from repro.core.vsc import verify_sequential_consistency
from repro.core.vscc import verify_vscc, vsc_via_conflict
from repro.core.conflict import vsc_conflict
from repro.core.encode import encode_legal_schedule, sat_vmc, sat_vsc
from repro.core.explain import MinimalViolation, minimize_violation
from repro.core.online import CoherenceMonitor, SystemMonitor, monitor_run
from repro.core.serialize import dumps as execution_dumps, loads as execution_loads

__all__ = [
    "INITIAL",
    "Address",
    "Execution",
    "OpKind",
    "Operation",
    "ProcessHistory",
    "Value",
    "read",
    "rmw",
    "write",
    "schedule_str",
    "ExecutionBuilder",
    "ProcessBuilder",
    "parse_trace",
    "CheckOutcome",
    "execution_from_schedule",
    "is_coherent_schedule",
    "is_sc_schedule",
    "schedule_respects_program_order",
    "value_trace_ok",
    "VerificationResult",
    "SearchBudgetExceeded",
    "exact_vmc",
    "exact_vsc",
    "verify_coherence",
    "verify_coherence_at",
    "verify_sequential_consistency",
    "verify_vscc",
    "vsc_via_conflict",
    "vsc_conflict",
    "encode_legal_schedule",
    "sat_vmc",
    "sat_vsc",
    "MinimalViolation",
    "minimize_violation",
    "CoherenceMonitor",
    "SystemMonitor",
    "monitor_run",
    "execution_dumps",
    "execution_loads",
]
