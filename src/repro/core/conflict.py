"""VSC-Conflict (Section 6.3): merging coherent schedules into an SC one.

A coherent schedule per address encodes a serial order of that address's
operations (writes *and* the read placements).  Treating those orders as
constraints, sequential consistency reduces to a precedence question:

    program-order edges  ∪  per-address schedule edges  acyclic?

If acyclic, any topological order is a sequentially consistent schedule
(per-address value correctness is inherited from the input schedules and
is untouched by interleaving across addresses).  With consecutive-pair
edges only, the graph has O(n) edges and the check is O(n log n).

As the paper stresses, this is *weaker* than VSC: the per-address
schedules are treated as commitments.  An execution can be sequentially
consistent even though one particular choice of coherent schedules does
not merge — see ``tests/core/test_conflict.py`` for the paper's point
reproduced concretely.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.core.checker import is_coherent_schedule
from repro.core.types import Address, Execution, Operation
from repro.core.result import VerificationResult
from repro.util.digraph import CycleError, Digraph


def vsc_conflict(
    execution: Execution,
    coherent_schedules: Mapping[Address, Sequence[Operation]],
    validate_inputs: bool = True,
) -> VerificationResult:
    """Merge per-address coherent schedules into an SC schedule.

    ``coherent_schedules`` must supply one coherent schedule per address
    of the execution; when ``validate_inputs`` each is re-checked with
    the certificate checker first (O(n)).
    """
    addrs = execution.addresses()
    missing = [a for a in addrs if a not in coherent_schedules]
    if missing:
        raise ValueError(f"no coherent schedule supplied for {missing}")
    if validate_inputs:
        for a in addrs:
            outcome = is_coherent_schedule(
                execution, list(coherent_schedules[a]), addr=a
            )
            if not outcome:
                raise ValueError(
                    f"supplied schedule for address {a!r} is not coherent: "
                    f"{outcome.reason}"
                )

    ops = [op for h in execution.histories for op in h]
    index_of = {op.uid: i for i, op in enumerate(ops)}
    g = Digraph(len(ops))
    # Program-order edges (consecutive pairs suffice).
    for h in execution.histories:
        for o1, o2 in zip(h.operations, h.operations[1:]):
            g.add_edge(index_of[o1.uid], index_of[o2.uid])
    # Per-address schedule edges (consecutive pairs suffice).
    for a in addrs:
        sched = coherent_schedules[a]
        for o1, o2 in zip(sched, sched[1:]):
            g.add_edge(index_of[o1.uid], index_of[o2.uid])

    try:
        order = g.topological_order(
            tie_break=[op.index for op in ops]  # stable, readable witness
        )
    except CycleError as e:
        cycle_ops = [ops[i] for i in e.cycle]
        return VerificationResult(
            holds=False,
            method="vsc-conflict",
            reason=(
                "program order and the committed per-address schedules "
                "form a cycle: "
                + " -> ".join(str(o) for o in cycle_ops)
            ),
            stats={"cycle": [str(o) for o in cycle_ops]},
        )
    schedule = [ops[i] for i in order]
    return VerificationResult(
        holds=True,
        method="vsc-conflict",
        schedule=schedule,
        stats={"edges": g.edge_count},
    )
