"""Binary trace format: the columnar view serialized as raw blobs.

JSON (:mod:`repro.core.serialize`) stays the interchange format, but a
million-op corpus spends more time in ``json.loads`` and ``Operation``
construction than the polynomial verifier spends deciding it.  This
module stores a :class:`~repro.core.columnar.ColumnarTrace` directly:

.. code-block:: text

    offset  size  field
    0       8     magic  b"REPROBIN"
    8       2     version (u16 LE) — currently 1
    10      2     reserved (must be 0)
    12      4     n_procs (u32)
    16      8     n_ops (u64)
    24      4     n_addrs (u32)
    28      4     n_values (u32)
    32      4     n_touched (u32)
    36      4     n_constrained (u32)
    40      8     intern_len (u64) — length of the intern-table blob
    48      -     intern tables: UTF-8 JSON ``{"addrs": [...],
                  "values": [...]}`` using the JSON format's value
                  encoding ({"$initial": true}, {"$tuple": [...]}),
                  zero-padded to an 8-byte boundary
    ...     -     column blobs, little-endian, in fixed order:
                  proc_offsets  (n_procs+1) × u64
                  procs         n_ops × u32
                  indices       n_ops × u32
                  addr_ids      n_ops × u32
                  read_vids     n_ops × i32
                  write_vids    n_ops × i32
                  initial_ids   n_addrs × i32
                  final_ids     n_addrs × i32
                  kinds         n_ops × u8
                  implicit_initial  n_addrs × u8

Every blob's offset and length are computable from the header alone,
wider columns come first so each stays naturally aligned, and the
payload bytes are exactly the stdlib-``array`` memory of the columns —
a loader (or the numpy kernels) can map them zero-copy.  Malformed or
truncated input raises :class:`BinaryFormatError` carrying the byte
offset of the problem, mirroring the JSON loader's ``json.loads``
diagnostics.
"""

from __future__ import annotations

import json
import struct
from pathlib import Path

from repro.core.columnar import ColumnarTrace, OP_COLUMNS
from repro.core.serialize import _decode_value, _encode_value
from repro.core.types import Execution
from array import array
import sys

MAGIC = b"REPROBIN"
VERSION = 1

_HEADER = struct.Struct("<8sHHIQIIIIQ")
HEADER_SIZE = _HEADER.size  # 48

#: (name, typecode, item size, count source) in on-disk order.
_BLOBS = (
    ("proc_offsets", "Q", 8, "procs+1"),
    ("procs", "I", 4, "ops"),
    ("indices", "I", 4, "ops"),
    ("addr_ids", "I", 4, "ops"),
    ("read_vids", "i", 4, "ops"),
    ("write_vids", "i", 4, "ops"),
    ("initial_ids", "i", 4, "addrs"),
    ("final_ids", "i", 4, "addrs"),
    ("kinds", "B", 1, "ops"),
    ("implicit_initial", "B", 1, "addrs"),
)


class BinaryFormatError(ValueError):
    """Malformed or truncated binary trace; ``offset`` is the byte
    position of the problem."""

    def __init__(self, message: str, offset: int):
        super().__init__(f"{message} at byte {offset}")
        self.offset = offset


def _pad8(n: int) -> int:
    return (8 - n % 8) % 8


def dumps_bin(execution: Execution) -> bytes:
    """Serialize an execution to the binary trace format."""
    view = execution.columnar()
    intern = json.dumps(
        {
            "addrs": [_encode_value(a) for a in view.addrs],
            "values": [_encode_value(v) for v in view.values],
        },
        separators=(",", ":"),
    ).encode("utf-8")
    header = _HEADER.pack(
        MAGIC,
        VERSION,
        0,
        view.n_procs,
        view.n_ops,
        len(view.addrs),
        len(view.values),
        view.n_touched,
        view.n_constrained,
        len(intern),
    )
    blobs = view.column_bytes()
    parts = [header, intern, b"\x00" * _pad8(len(intern))]
    parts.extend(blobs[name] for name, _tc, _sz, _cnt in _BLOBS)
    return b"".join(parts)


def _counts(n_ops: int, n_procs: int, n_addrs: int) -> dict[str, int]:
    return {"ops": n_ops, "procs+1": n_procs + 1, "addrs": n_addrs}


def loads_bin(data: bytes) -> Execution:
    """Parse an execution from binary trace bytes.

    The returned execution carries the loaded columns as its cached
    :meth:`~repro.core.types.Execution.columnar` view, so the engine's
    hot paths never re-derive them.
    """
    view = loads_bin_view(data)
    ex = view.to_execution()
    # Share the freshly materialized operations both ways: the columns
    # become the execution's cached view, and op_at hands back the same
    # objects the histories hold.
    view._source_ops = tuple(op for h in ex.histories for op in h)
    ex._columnar = view
    return ex


def loads_bin_view(data: bytes) -> ColumnarTrace:
    """Parse binary trace bytes into a bare :class:`ColumnarTrace`."""
    if len(data) < HEADER_SIZE:
        raise BinaryFormatError("truncated header", len(data))
    (
        magic,
        version,
        reserved,
        n_procs,
        n_ops,
        n_addrs,
        n_values,
        n_touched,
        n_constrained,
        intern_len,
    ) = _HEADER.unpack_from(data, 0)
    if magic != MAGIC:
        raise BinaryFormatError(
            f"bad magic {magic!r} (expected {MAGIC!r})", 0
        )
    if version != VERSION:
        raise BinaryFormatError(f"unsupported version {version}", 8)
    if reserved != 0:
        raise BinaryFormatError("nonzero reserved field", 10)
    if not (n_touched <= n_constrained <= n_addrs):
        raise BinaryFormatError(
            f"inconsistent address counts {n_touched}/{n_constrained}"
            f"/{n_addrs}",
            24,
        )

    pos = HEADER_SIZE
    if len(data) < pos + intern_len:
        raise BinaryFormatError("truncated intern tables", len(data))
    intern_raw = data[pos : pos + intern_len]
    try:
        intern = json.loads(intern_raw.decode("utf-8"))
    except UnicodeDecodeError as e:
        raise BinaryFormatError(
            "intern tables are not UTF-8", pos + e.start
        ) from e
    except json.JSONDecodeError as e:
        raise BinaryFormatError(
            f"malformed intern JSON: {e.msg}", pos + e.pos
        ) from e
    if (
        not isinstance(intern, dict)
        or not isinstance(intern.get("addrs"), list)
        or not isinstance(intern.get("values"), list)
    ):
        raise BinaryFormatError("intern tables must be lists", pos)
    try:
        addrs = tuple(_decode_value(a) for a in intern["addrs"])
        values = tuple(_decode_value(v) for v in intern["values"])
    except ValueError as e:
        raise BinaryFormatError(f"bad interned value: {e}", pos) from e
    if len(addrs) != n_addrs or len(values) != n_values:
        raise BinaryFormatError(
            f"intern tables hold {len(addrs)} addrs/{len(values)} values, "
            f"header says {n_addrs}/{n_values}",
            pos,
        )
    pos += intern_len + _pad8(intern_len)

    counts = _counts(n_ops, n_procs, n_addrs)
    columns: dict[str, array] = {}
    for name, typecode, item, cnt in _BLOBS:
        length = counts[cnt] * item
        if len(data) < pos + length:
            raise BinaryFormatError(
                f"truncated column {name!r}", len(data)
            )
        col = array(typecode)
        col.frombytes(data[pos : pos + length])
        if sys.byteorder == "big":  # pragma: no cover
            col.byteswap()
        columns[name] = col
        pos += length
    if pos != len(data):
        raise BinaryFormatError("trailing data", pos)

    _validate_columns(columns, n_ops, n_addrs, n_values, pos)
    return ColumnarTrace(
        n_touched=n_touched,
        n_constrained=n_constrained,
        addrs=addrs,
        values=values,
        **{name: columns[name] for name, _t, _s, _c in _BLOBS},
    )


def _validate_columns(columns, n_ops, n_addrs, n_values, end) -> None:
    """Range checks so a corrupt file fails here, not as an IndexError
    deep inside a kernel."""
    off = columns["proc_offsets"]
    prev = 0
    for o in off:
        if o < prev:
            raise BinaryFormatError("proc_offsets not monotonic", end)
        prev = o
    if off[0] != 0 or off[-1] != n_ops:
        raise BinaryFormatError(
            f"proc_offsets must span 0..{n_ops}", end
        )
    if n_ops:
        from repro.core.columnar import KINDS_BY_CODE

        if max(columns["kinds"]) >= len(KINDS_BY_CODE):
            raise BinaryFormatError("unknown kind code", end)
        if max(columns["addr_ids"]) >= n_addrs:
            raise BinaryFormatError("addr_id out of range", end)
        for name in ("read_vids", "write_vids"):
            col = columns[name]
            if col and (max(col) >= n_values or min(col) < -1):
                raise BinaryFormatError(f"{name} out of range", end)
    for name in ("initial_ids", "final_ids"):
        col = columns[name]
        if col and (max(col) >= n_values or min(col) < -1):
            raise BinaryFormatError(f"{name} out of range", end)
    if any(v < 0 for v in columns["initial_ids"]):
        raise BinaryFormatError("initial_ids must be valid", end)


def sniff(data: bytes) -> bool:
    """True when ``data`` starts with the binary trace magic."""
    return data[: len(MAGIC)] == MAGIC


def save_bin(execution: Execution, path) -> None:
    """Write an execution to ``path`` in the binary trace format."""
    Path(path).write_bytes(dumps_bin(execution))


def load_bin(path) -> Execution:
    """Read an execution from a binary trace file."""
    return loads_bin(Path(path).read_bytes())
