"""Binary trace format: the columnar view serialized as raw blobs.

JSON (:mod:`repro.core.serialize`) stays the interchange format, but a
million-op corpus spends more time in ``json.loads`` and ``Operation``
construction than the polynomial verifier spends deciding it.  This
module stores a :class:`~repro.core.columnar.ColumnarTrace` directly:

.. code-block:: text

    offset  size  field
    0       8     magic  b"REPROBIN"
    8       2     version (u16 LE) — currently 1
    10      2     reserved (must be 0)
    12      4     n_procs (u32)
    16      8     n_ops (u64)
    24      4     n_addrs (u32)
    28      4     n_values (u32)
    32      4     n_touched (u32)
    36      4     n_constrained (u32)
    40      8     intern_len (u64) — length of the intern-table blob
    48      -     intern tables: UTF-8 JSON ``{"addrs": [...],
                  "values": [...]}`` using the JSON format's value
                  encoding ({"$initial": true}, {"$tuple": [...]}),
                  zero-padded to an 8-byte boundary
    ...     -     column blobs, little-endian, in fixed order:
                  proc_offsets  (n_procs+1) × u64
                  procs         n_ops × u32
                  indices       n_ops × u32
                  addr_ids      n_ops × u32
                  read_vids     n_ops × i32
                  write_vids    n_ops × i32
                  initial_ids   n_addrs × i32
                  final_ids     n_addrs × i32
                  kinds         n_ops × u8
                  implicit_initial  n_addrs × u8

Every blob's offset and length are computable from the header alone,
wider columns come first so each stays naturally aligned, and the
payload bytes are exactly the stdlib-``array`` memory of the columns —
a loader (or the numpy kernels) can map them zero-copy.  Malformed or
truncated input raises :class:`BinaryFormatError` carrying the byte
offset of the problem, mirroring the JSON loader's ``json.loads``
diagnostics.
"""

from __future__ import annotations

import json
import struct
from pathlib import Path

from repro.core.columnar import ColumnarTrace, OP_COLUMNS
from repro.core.serialize import _decode_value, _encode_value
from repro.core.types import Execution
from array import array
import sys

MAGIC = b"REPROBIN"
VERSION = 1

_HEADER = struct.Struct("<8sHHIQIIIIQ")
HEADER_SIZE = _HEADER.size  # 48

#: (name, typecode, item size, count source) in on-disk order.
_BLOBS = (
    ("proc_offsets", "Q", 8, "procs+1"),
    ("procs", "I", 4, "ops"),
    ("indices", "I", 4, "ops"),
    ("addr_ids", "I", 4, "ops"),
    ("read_vids", "i", 4, "ops"),
    ("write_vids", "i", 4, "ops"),
    ("initial_ids", "i", 4, "addrs"),
    ("final_ids", "i", 4, "addrs"),
    ("kinds", "B", 1, "ops"),
    ("implicit_initial", "B", 1, "addrs"),
)


class BinaryFormatError(ValueError):
    """Malformed or truncated binary trace; ``offset`` is the byte
    position of the problem."""

    def __init__(self, message: str, offset: int):
        super().__init__(f"{message} at byte {offset}")
        self.offset = offset


def _pad8(n: int) -> int:
    return (8 - n % 8) % 8


def dumps_bin(execution: Execution) -> bytes:
    """Serialize an execution to the binary trace format."""
    view = execution.columnar()
    intern = json.dumps(
        {
            "addrs": [_encode_value(a) for a in view.addrs],
            "values": [_encode_value(v) for v in view.values],
        },
        separators=(",", ":"),
    ).encode("utf-8")
    header = _HEADER.pack(
        MAGIC,
        VERSION,
        0,
        view.n_procs,
        view.n_ops,
        len(view.addrs),
        len(view.values),
        view.n_touched,
        view.n_constrained,
        len(intern),
    )
    blobs = view.column_bytes()
    parts = [header, intern, b"\x00" * _pad8(len(intern))]
    parts.extend(blobs[name] for name, _tc, _sz, _cnt in _BLOBS)
    return b"".join(parts)


def _counts(n_ops: int, n_procs: int, n_addrs: int) -> dict[str, int]:
    return {"ops": n_ops, "procs+1": n_procs + 1, "addrs": n_addrs}


def loads_bin(data: bytes) -> Execution:
    """Parse an execution from binary trace bytes.

    The returned execution carries the loaded columns as its cached
    :meth:`~repro.core.types.Execution.columnar` view, so the engine's
    hot paths never re-derive them.
    """
    view = loads_bin_view(data)
    ex = view.to_execution()
    # Share the freshly materialized operations both ways: the columns
    # become the execution's cached view, and op_at hands back the same
    # objects the histories hold.
    view._source_ops = tuple(op for h in ex.histories for op in h)
    ex._columnar = view
    return ex


def loads_bin_view(data: bytes) -> ColumnarTrace:
    """Parse binary trace bytes into a bare :class:`ColumnarTrace`."""
    if len(data) < HEADER_SIZE:
        raise BinaryFormatError("truncated header", len(data))
    (
        magic,
        version,
        reserved,
        n_procs,
        n_ops,
        n_addrs,
        n_values,
        n_touched,
        n_constrained,
        intern_len,
    ) = _HEADER.unpack_from(data, 0)
    if magic != MAGIC:
        raise BinaryFormatError(
            f"bad magic {magic!r} (expected {MAGIC!r})", 0
        )
    if version != VERSION:
        raise BinaryFormatError(f"unsupported version {version}", 8)
    if reserved != 0:
        raise BinaryFormatError("nonzero reserved field", 10)
    if not (n_touched <= n_constrained <= n_addrs):
        raise BinaryFormatError(
            f"inconsistent address counts {n_touched}/{n_constrained}"
            f"/{n_addrs}",
            24,
        )

    pos = HEADER_SIZE
    if len(data) < pos + intern_len:
        raise BinaryFormatError("truncated intern tables", len(data))
    intern_raw = data[pos : pos + intern_len]
    try:
        intern = json.loads(intern_raw.decode("utf-8"))
    except UnicodeDecodeError as e:
        raise BinaryFormatError(
            "intern tables are not UTF-8", pos + e.start
        ) from e
    except json.JSONDecodeError as e:
        raise BinaryFormatError(
            f"malformed intern JSON: {e.msg}", pos + e.pos
        ) from e
    if (
        not isinstance(intern, dict)
        or not isinstance(intern.get("addrs"), list)
        or not isinstance(intern.get("values"), list)
    ):
        raise BinaryFormatError("intern tables must be lists", pos)
    try:
        addrs = tuple(_decode_value(a) for a in intern["addrs"])
        values = tuple(_decode_value(v) for v in intern["values"])
    except ValueError as e:
        raise BinaryFormatError(f"bad interned value: {e}", pos) from e
    if len(addrs) != n_addrs or len(values) != n_values:
        raise BinaryFormatError(
            f"intern tables hold {len(addrs)} addrs/{len(values)} values, "
            f"header says {n_addrs}/{n_values}",
            pos,
        )
    pos += intern_len + _pad8(intern_len)

    counts = _counts(n_ops, n_procs, n_addrs)
    columns: dict[str, array] = {}
    for name, typecode, item, cnt in _BLOBS:
        length = counts[cnt] * item
        if len(data) < pos + length:
            raise BinaryFormatError(
                f"truncated column {name!r}", len(data)
            )
        col = array(typecode)
        col.frombytes(data[pos : pos + length])
        if sys.byteorder == "big":  # pragma: no cover
            col.byteswap()
        columns[name] = col
        pos += length
    if pos != len(data):
        raise BinaryFormatError("trailing data", pos)

    _validate_columns(columns, n_ops, n_addrs, n_values, pos)
    return ColumnarTrace(
        n_touched=n_touched,
        n_constrained=n_constrained,
        addrs=addrs,
        values=values,
        **{name: columns[name] for name, _t, _s, _c in _BLOBS},
    )


def _validate_columns(columns, n_ops, n_addrs, n_values, end) -> None:
    """Range checks so a corrupt file fails here, not as an IndexError
    deep inside a kernel."""
    off = columns["proc_offsets"]
    prev = 0
    for o in off:
        if o < prev:
            raise BinaryFormatError("proc_offsets not monotonic", end)
        prev = o
    if off[0] != 0 or off[-1] != n_ops:
        raise BinaryFormatError(
            f"proc_offsets must span 0..{n_ops}", end
        )
    if n_ops:
        from repro.core.columnar import KINDS_BY_CODE

        if max(columns["kinds"]) >= len(KINDS_BY_CODE):
            raise BinaryFormatError("unknown kind code", end)
        if max(columns["addr_ids"]) >= n_addrs:
            raise BinaryFormatError("addr_id out of range", end)
        for name in ("read_vids", "write_vids"):
            col = columns[name]
            if col and (max(col) >= n_values or min(col) < -1):
                raise BinaryFormatError(f"{name} out of range", end)
    for name in ("initial_ids", "final_ids"):
        col = columns[name]
        if col and (max(col) >= n_values or min(col) < -1):
            raise BinaryFormatError(f"{name} out of range", end)
    if any(v < 0 for v in columns["initial_ids"]):
        raise BinaryFormatError("initial_ids must be valid", end)


def sniff(data: bytes) -> bool:
    """True when ``data`` starts with the binary trace magic."""
    return data[: len(MAGIC)] == MAGIC


# ---------------------------------------------------------------------
# Framed commit-order stream (the online monitor's wire format)
# ---------------------------------------------------------------------
# The REPROBIN format above is a snapshot: every blob's offset is
# computed from the header, so nothing can be decoded until the trace
# is complete.  A *monitor* needs the opposite: a growing file (or
# pipe) decodable frame by frame, in commit order, without re-parsing
# what it already consumed.  The stream format is:
#
# .. code-block:: text
#
#     offset  size  field
#     0       8     magic  b"REPROSTM"
#     8       2     version (u16 LE) — currently 1
#     10      2     reserved (must be 0)
#     12      4     n_procs (u32)
#     16      -     frames
#
# Each frame is a 5-byte header ``<type u8, payload_len u32>`` followed
# by the payload:
#
# ``INTERN``   UTF-8 JSON ``{"addrs": [...], "values": [...]}`` —
#              entries *appended* to the reader's intern tables (the
#              JSON format's value encoding).
# ``OPS``      ``count u32``, then columns back-to-back, each ``count``
#              long, in commit order: kinds (u8), procs (u32), addr_ids
#              (u32), read_vids (i32), write_vids (i32).  Program-order
#              indices are implicit: arrival order per process.
# ``INITIAL``  ``count u32`` + count × (addr_id u32, value_id i32).
# ``FINAL``    same layout; usually the second-to-last frame.
# ``END``      empty payload; the stream is complete.
#
# A reader can always make progress on any prefix: a trailing partial
# frame simply stays buffered until more bytes arrive — that is what
# lets ``repro monitor`` tail a growing file.

STREAM_MAGIC = b"REPROSTM"
STREAM_VERSION = 1

_STREAM_HEADER = struct.Struct("<8sHHI")
STREAM_HEADER_SIZE = _STREAM_HEADER.size  # 16
_FRAME_HEADER = struct.Struct("<BI")

FRAME_INTERN = 1
FRAME_OPS = 2
FRAME_INITIAL = 3
FRAME_FINAL = 4
FRAME_END = 5

#: Sanity cap on a single frame's payload (a corrupt length field must
#: not make a tailing monitor buffer gigabytes before erroring).
MAX_FRAME_PAYLOAD = 1 << 28


def sniff_stream(data: bytes) -> bool:
    """True when ``data`` starts with the framed-stream magic."""
    return data[: len(STREAM_MAGIC)] == STREAM_MAGIC


def _le(a: "array") -> bytes:
    if sys.byteorder == "big":  # pragma: no cover
        a = array(a.typecode, a)
        a.byteswap()
    return a.tobytes()


class StreamWriter:
    """Encode a commit-ordered operation stream as framed chunks.

    ``out`` is any binary file-like object with ``write``.  Appended
    operations are buffered and flushed as one OPS frame per ``chunk``
    operations (plus an INTERN delta frame for any addresses/values
    first seen since the previous flush).  :meth:`finish` flushes,
    writes the FINAL constraints (if any) and the END frame.
    """

    def __init__(self, out, n_procs: int, chunk: int = 1024):
        if n_procs < 1:
            raise ValueError(f"n_procs must be >= 1, got {n_procs}")
        self._out = out
        self.n_procs = n_procs
        self.chunk = max(1, chunk)
        self._addr_id: dict = {}
        self._value_id: dict = {}
        self._sent_addrs = 0
        self._sent_values = 0
        self._new_addrs: list = []
        self._new_values: list = []
        self._kinds = array("B")
        self._procs = array("I")
        self._addr_ids = array("I")
        self._read_vids = array("i")
        self._write_vids = array("i")
        self._finished = False
        out.write(
            _STREAM_HEADER.pack(STREAM_MAGIC, STREAM_VERSION, 0, n_procs)
        )

    # -- interning --------------------------------------------------------
    def _aid(self, a) -> int:
        i = self._addr_id.get(a)
        if i is None:
            i = self._addr_id[a] = self._sent_addrs + len(self._new_addrs)
            self._new_addrs.append(a)
        return i

    def _vid(self, v) -> int:
        i = self._value_id.get(v)
        if i is None:
            i = self._value_id[v] = self._sent_values + len(self._new_values)
            self._new_values.append(v)
        return i

    def _frame(self, ftype: int, payload: bytes) -> None:
        self._out.write(_FRAME_HEADER.pack(ftype, len(payload)))
        self._out.write(payload)

    def _flush_intern(self) -> None:
        if not self._new_addrs and not self._new_values:
            return
        payload = json.dumps(
            {
                "addrs": [_encode_value(a) for a in self._new_addrs],
                "values": [_encode_value(v) for v in self._new_values],
            },
            separators=(",", ":"),
        ).encode("utf-8")
        self._frame(FRAME_INTERN, payload)
        self._sent_addrs += len(self._new_addrs)
        self._sent_values += len(self._new_values)
        self._new_addrs = []
        self._new_values = []

    def _constraints(self, ftype: int, mapping) -> None:
        if not mapping:
            return
        pairs = [(self._aid(a), self._vid(v)) for a, v in mapping.items()]
        self._flush_intern()
        payload = struct.pack("<I", len(pairs)) + b"".join(
            struct.pack("<Ii", ai, vi) for ai, vi in pairs
        )
        self._frame(ftype, payload)

    # -- public API -------------------------------------------------------
    def set_initial(self, initial) -> None:
        """Emit the INITIAL constraints (call before any appends)."""
        self._constraints(FRAME_INITIAL, initial)

    def append(
        self, kind, proc: int, addr, value_read=None, value_written=None
    ) -> None:
        """Buffer one committed operation (kind is an
        :class:`~repro.core.types.OpKind`)."""
        from repro.core.columnar import KIND_CODES

        if self._finished:
            raise ValueError("stream already finished")
        if not (0 <= proc < self.n_procs):
            raise ValueError(
                f"proc {proc} outside the declared 0..{self.n_procs - 1}"
            )
        self._kinds.append(KIND_CODES[kind])
        self._procs.append(proc)
        self._addr_ids.append(self._aid(addr))
        self._read_vids.append(self._vid(value_read) if kind.reads else -1)
        self._write_vids.append(
            self._vid(value_written) if kind.writes else -1
        )
        if len(self._kinds) >= self.chunk:
            self.flush()

    def append_op(self, op) -> None:
        self.append(
            op.kind, op.proc, op.addr,
            value_read=op.value_read, value_written=op.value_written,
        )

    def flush(self) -> None:
        """Emit buffered operations as an OPS frame (preceded by the
        INTERN delta naming anything they reference)."""
        if not self._kinds:
            return
        self._flush_intern()
        n = len(self._kinds)
        payload = b"".join(
            (
                struct.pack("<I", n),
                _le(self._kinds),
                _le(self._procs),
                _le(self._addr_ids),
                _le(self._read_vids),
                _le(self._write_vids),
            )
        )
        self._frame(FRAME_OPS, payload)
        self._kinds = array("B")
        self._procs = array("I")
        self._addr_ids = array("I")
        self._read_vids = array("i")
        self._write_vids = array("i")

    def finish(self, final=None) -> None:
        """Flush, write FINAL constraints (if given) and the END frame."""
        if self._finished:
            return
        self.flush()
        self._constraints(FRAME_FINAL, final or {})
        self._frame(FRAME_END, b"")
        self._finished = True


def dump_stream(out, schedule, n_procs: int, initial=None, final=None,
                chunk: int = 1024) -> None:
    """Write a complete commit-ordered stream in one call.

    ``schedule`` is the commit order — any iterable of operations
    interleaved across processes (each process's subsequence in program
    order)."""
    w = StreamWriter(out, n_procs, chunk=chunk)
    w.set_initial(initial or {})
    for op in schedule:
        w.append_op(op)
    w.finish(final or {})


class FrameReader:
    """Incremental decoder for the framed stream format.

    Feed raw bytes as they arrive (:meth:`feed`), then drain decoded
    events (:meth:`events`).  A trailing partial frame stays buffered —
    feeding more bytes later resumes exactly where decoding stopped, so
    a monitor can tail a growing file without re-parsing.  Events:

    * ``("initial", {addr: value})``
    * ``("op", Operation)`` — program-order index assigned per process
      in arrival order
    * ``("final", {addr: value})``
    * ``("end", None)``

    Malformed input raises :class:`BinaryFormatError` with the absolute
    byte offset of the problem.
    """

    def __init__(self):
        self._buf = bytearray()
        self._consumed = 0  # absolute offset of _buf[0] in the stream
        self._header_done = False
        self.n_procs: int | None = None
        self.addrs: list = []
        self.values: list = []
        self._next_index: list[int] = []
        self.ended = False

    def feed(self, data: bytes) -> None:
        self._buf.extend(data)

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered but not yet decodable (partial frame)."""
        return len(self._buf)

    @property
    def bytes_consumed(self) -> int:
        """Absolute stream offset decoded so far — the byte position a
        truncation diagnostic should point at when the producer dies
        mid-frame (``repro monitor --follow`` on a pipe, the service's
        ingestion front-end)."""
        return self._consumed

    def _error(self, message: str, rel: int = 0) -> BinaryFormatError:
        return BinaryFormatError(message, self._consumed + rel)

    def _parse_header(self) -> bool:
        if len(self._buf) < STREAM_HEADER_SIZE:
            return False
        magic, version, reserved, n_procs = _STREAM_HEADER.unpack_from(
            self._buf, 0
        )
        if magic != STREAM_MAGIC:
            raise self._error(
                f"bad stream magic {bytes(magic)!r} "
                f"(expected {STREAM_MAGIC!r})"
            )
        if version != STREAM_VERSION:
            raise self._error(f"unsupported stream version {version}", 8)
        if reserved != 0:
            raise self._error("nonzero reserved field", 10)
        if n_procs < 1:
            raise self._error("n_procs must be >= 1", 12)
        self.n_procs = n_procs
        self._next_index = [0] * n_procs
        del self._buf[:STREAM_HEADER_SIZE]
        self._consumed += STREAM_HEADER_SIZE
        self._header_done = True
        return True

    def events(self):
        """Yield every event decodable from the buffered bytes."""
        if not self._header_done and not self._parse_header():
            return
        hdr = _FRAME_HEADER
        while True:
            if len(self._buf) < hdr.size:
                return
            ftype, length = hdr.unpack_from(self._buf, 0)
            if length > MAX_FRAME_PAYLOAD:
                raise self._error(
                    f"frame payload length {length} exceeds the "
                    f"{MAX_FRAME_PAYLOAD}-byte cap", 1
                )
            if self.ended:
                raise self._error("data after the END frame")
            total = hdr.size + length
            if len(self._buf) < total:
                return
            payload = bytes(self._buf[hdr.size:total])
            del self._buf[:total]
            start = self._consumed + hdr.size
            self._consumed += total
            yield from self._decode(ftype, payload, start)

    def _decode(self, ftype: int, payload: bytes, start: int):
        if ftype == FRAME_INTERN:
            self._decode_intern(payload, start)
            return
        if ftype == FRAME_OPS:
            yield from self._decode_ops(payload, start)
            return
        if ftype in (FRAME_INITIAL, FRAME_FINAL):
            tag = "initial" if ftype == FRAME_INITIAL else "final"
            yield (tag, self._decode_constraints(payload, start))
            return
        if ftype == FRAME_END:
            if payload:
                raise BinaryFormatError("END frame carries a payload", start)
            self.ended = True
            yield ("end", None)
            return
        raise BinaryFormatError(f"unknown frame type {ftype}", start - 5)

    def _decode_intern(self, payload: bytes, start: int) -> None:
        try:
            intern = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as e:
            raise BinaryFormatError(
                f"malformed intern frame: {e}", start
            ) from e
        if (
            not isinstance(intern, dict)
            or not isinstance(intern.get("addrs"), list)
            or not isinstance(intern.get("values"), list)
        ):
            raise BinaryFormatError("intern tables must be lists", start)
        try:
            self.addrs.extend(_decode_value(a) for a in intern["addrs"])
            self.values.extend(_decode_value(v) for v in intern["values"])
        except ValueError as e:
            raise BinaryFormatError(
                f"bad interned value: {e}", start
            ) from e

    def _decode_ops(self, payload: bytes, start: int):
        from repro.core.columnar import KINDS_BY_CODE
        from repro.core.types import Operation

        if len(payload) < 4:
            raise BinaryFormatError("truncated OPS frame", start)
        (n,) = struct.unpack_from("<I", payload, 0)
        expect = 4 + n * (1 + 4 + 4 + 4 + 4)
        if len(payload) != expect:
            raise BinaryFormatError(
                f"OPS frame declares {n} ops but carries "
                f"{len(payload)} payload bytes (expected {expect})",
                start,
            )
        cols = []
        pos = 4
        for typecode, size in (("B", 1), ("I", 4), ("I", 4), ("i", 4), ("i", 4)):
            col = array(typecode)
            col.frombytes(payload[pos:pos + n * size])
            if sys.byteorder == "big":  # pragma: no cover
                col.byteswap()
            cols.append(col)
            pos += n * size
        kinds, procs, addr_ids, read_vids, write_vids = cols
        n_addrs, n_values = len(self.addrs), len(self.values)
        for i in range(n):
            kc = kinds[i]
            if kc >= len(KINDS_BY_CODE):
                raise BinaryFormatError(f"unknown kind code {kc}", start)
            p = procs[i]
            if p >= self.n_procs:
                raise BinaryFormatError(
                    f"proc {p} outside the declared 0..{self.n_procs - 1}",
                    start,
                )
            ai, rv, wv = addr_ids[i], read_vids[i], write_vids[i]
            if ai >= n_addrs or rv >= n_values or wv >= n_values:
                raise BinaryFormatError(
                    "op references an unseen intern id", start
                )
            kind = KINDS_BY_CODE[kc]
            if (rv >= 0) != kind.reads or (wv >= 0) != kind.writes:
                raise BinaryFormatError(
                    f"value ids disagree with kind {kind.value!r}", start
                )
            index = self._next_index[p]
            self._next_index[p] = index + 1
            yield (
                "op",
                Operation(
                    kind,
                    self.addrs[ai],
                    p,
                    index,
                    value_read=self.values[rv] if rv >= 0 else None,
                    value_written=self.values[wv] if wv >= 0 else None,
                ),
            )

    def _decode_constraints(self, payload: bytes, start: int) -> dict:
        if len(payload) < 4:
            raise BinaryFormatError("truncated constraints frame", start)
        (n,) = struct.unpack_from("<I", payload, 0)
        if len(payload) != 4 + n * 8:
            raise BinaryFormatError(
                f"constraints frame declares {n} pairs but carries "
                f"{len(payload)} payload bytes", start
            )
        out = {}
        for i in range(n):
            ai, vi = struct.unpack_from("<Ii", payload, 4 + i * 8)
            if ai >= len(self.addrs) or not (0 <= vi < len(self.values)):
                raise BinaryFormatError(
                    "constraint references an unseen intern id", start
                )
            out[self.addrs[ai]] = self.values[vi]
        return out


def loads_stream(data: bytes):
    """Decode one *complete* REPROSTM stream into ``(execution,
    commit_order)`` — the batch counterpart of :class:`FrameReader`,
    used when a finished stream file is handed to an offline command
    (``repro verify``)."""
    reader = FrameReader()
    reader.feed(data)
    initial: dict = {}
    final: dict = {}
    commit_order = []
    for tag, payload in reader.events():
        if tag == "op":
            commit_order.append(payload)
        elif tag == "initial":
            initial.update(payload)
        elif tag == "final":
            final.update(payload)
    if not reader.ended:
        raise BinaryFormatError(
            "stream is incomplete (no END frame; "
            f"{reader.pending_bytes} bytes still buffered)",
            reader._consumed,
        )
    if reader.pending_bytes:
        raise BinaryFormatError(
            f"{reader.pending_bytes} trailing bytes after the END frame",
            reader._consumed,
        )
    histories = [[] for _ in range(reader.n_procs)]
    for op in commit_order:
        histories[op.proc].append(op)
    execution = Execution.from_ops(histories, initial=initial, final=final)
    return execution, commit_order


def save_bin(execution: Execution, path) -> None:
    """Write an execution to ``path`` in the binary trace format."""
    Path(path).write_bytes(dumps_bin(execution))


def load_bin(path) -> Execution:
    """Read an execution from a binary trace file."""
    return loads_bin(Path(path).read_bytes())
