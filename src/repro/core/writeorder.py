"""VMC with the write-order supplied (Section 5.2; Figure 5.3, row 8).

If the memory system reports the order in which the writes to a location
were serialized (e.g. the bus order of a snooping protocol —
:mod:`repro.memsys` exports exactly this), verifying coherence becomes
polynomial: the write-order is the skeleton of the schedule and only the
reads need placing.

Model: writes ``w_1 .. w_W`` in the given order create *gaps*
``0 .. W`` where gap ``g`` sits just after ``w_g`` (gap 0 precedes all
writes) and holds value ``value(w_g)`` (gap 0 holds ``d_I``).  A read
must be placed

* in a gap whose value matches the value it returned,
* at or after the gap of its program-order predecessor, and
* before its next program-order write.

Reads of different processes never constrain each other, and within a
process placing each read in the *earliest* admissible gap is optimal
(a classic exchange argument), so a left-to-right greedy decides the
instance.  With a per-value sorted gap index the greedy runs in
O(n log n) — comfortably within the paper's O(n²) bound.  When every
operation is a read-modify-write the write-order is already a total
order of all operations and a single O(n) scan suffices (the paper's
O(n) special case), which falls out of the same code path because RMWs
are writes with an attached read constraint.
"""

from __future__ import annotations

from bisect import bisect_left
from collections import defaultdict
from typing import Sequence

from repro.core.types import (
    Address,
    Execution,
    OpKind,
    Operation,
    Value,
)
from repro.core.result import Certificate, VerificationResult


def _refuted(
    write_order: Sequence[Operation],
    reason: str,
    addr: Address | None,
) -> VerificationResult:
    """A VIOLATED verdict of the order-augmented instance.

    The refutation is relative to the supplied order — the raw trace
    alone may be perfectly schedulable — so the verdict carries an
    ``order`` certificate naming the order it refutes; the trusted
    checker re-decides the augmented instance independently.
    """
    return VerificationResult(
        holds=False,
        method="write-order",
        reason=reason,
        address=addr,
        certificate=Certificate(
            "order", tuple(op.uid for op in write_order)
        ),
    )


def writeorder_vmc(
    execution: Execution, write_order: Sequence[Operation]
) -> VerificationResult:
    """Decide VMC for a single-address execution given its write-order.

    ``write_order`` must list exactly the execution's write operations
    (WRITE and RMW kinds), in the order the memory system serialized
    them.  An inconsistent write-order (wrong ops, or contradicting
    program order) makes the answer "not coherent under this order".
    """
    addrs = execution.constrained_addresses()
    if len(addrs) > 1:
        raise ValueError(f"write-order VMC is per-address, got {addrs}")
    addr = addrs[0] if addrs else None
    d_i = execution.initial_value(addr) if addr is not None else None
    d_f = execution.final_value(addr) if addr is not None else None

    writes_in_exec = [op for op in execution.all_ops() if op.kind.writes]
    if sorted(op.uid for op in write_order) != sorted(
        op.uid for op in writes_in_exec
    ):
        return _refuted(
            write_order,
            "supplied write-order does not contain exactly the "
            "execution's write operations",
            addr,
        )

    # Validate: per process, writes appear in the order as in po.
    pos_in_order = {op.uid: i for i, op in enumerate(write_order)}
    for h in execution.histories:
        w_idx = [pos_in_order[op.uid] for op in h if op.kind.writes]
        if w_idx != sorted(w_idx):
            return _refuted(
                write_order,
                f"write-order contradicts program order of process "
                f"{h.proc}",
                addr,
            )

    # Gap values: value at gap g (0..W).
    gap_value: list[Value] = [d_i] + [w.value_written for w in write_order]
    gaps_of_value: dict[Value, list[int]] = defaultdict(list)
    for g, v in enumerate(gap_value):
        gaps_of_value[v].append(g)  # ascending by construction

    # RMW read components: RMW at order position j reads gap j's value
    # (the state just before it executes, i.e. after write j-1 = gap j-1).
    for j, w in enumerate(write_order):
        if w.kind is OpKind.RMW and w.value_read != gap_value[j]:
            return _refuted(
                write_order,
                f"{w} is serialized at write position {j} where the "
                f"value is {gap_value[j]!r}, but it read {w.value_read!r}",
                addr,
            )

    # Final value check: last write must produce d_F.
    if d_f is not None:
        last = gap_value[-1]
        if last != d_f:
            return _refuted(
                write_order,
                f"last write leaves {last!r} but final value "
                f"{d_f!r} is required",
                addr,
            )

    # Greedy placement of simple reads.
    placement: dict[tuple[int, int], int] = {}
    for h in execution.histories:
        cursor = 0  # earliest admissible gap for the next op of this proc
        for op in h:
            if op.kind.writes:
                # The write itself sits at the start of gap j+1; ops after
                # it must be at gap >= its position + 1... the write at
                # order index j occupies the boundary: subsequent reads
                # are in gaps >= j+1, i.e. >= pos+1.
                cursor = max(cursor, pos_in_order[op.uid] + 1)
                continue
            if op.kind.is_sync:
                continue
            # op is a simple read: find earliest gap >= cursor with the
            # right value, and < position of next po write (checked after
            # the fact: cursor advances past it when the write arrives —
            # a read placed at gap > next write's position would bump
            # that write's validation below).
            gaps = gaps_of_value.get(op.value_read)
            if not gaps:
                return _refuted(
                    write_order,
                    f"{op} reads {op.value_read!r}, which no write "
                    f"produces (and it is not the initial value)",
                    addr,
                )
            i = bisect_left(gaps, cursor)
            if i == len(gaps):
                return _refuted(
                    write_order,
                    f"{op} reads {op.value_read!r} but no write of "
                    f"that value is serialized after its program-order "
                    f"predecessors",
                    addr,
                )
            g = gaps[i]
            placement[op.uid] = g
            cursor = g
        # Verify no read was pushed past a later po write: re-scan.
        limit = len(write_order)  # exclusive upper gap bound
        for op in reversed(h.operations):
            if op.kind.writes:
                limit = pos_in_order[op.uid]
            elif op.kind is OpKind.READ:
                if placement[op.uid] > limit:
                    return _refuted(
                        write_order,
                        f"{op} cannot be served between its "
                        f"program-order neighbouring writes",
                        addr,
                    )

    # Assemble the witness schedule: per gap, writes then reads.
    reads_in_gap: dict[int, list[Operation]] = defaultdict(list)
    for h in execution.histories:
        for op in h:
            if op.kind is OpKind.READ:
                reads_in_gap[placement[op.uid]].append(op)
    schedule: list[Operation] = []
    schedule.extend(sorted(reads_in_gap.get(0, []), key=lambda o: o.uid))
    for j, w in enumerate(write_order):
        schedule.append(w)
        schedule.extend(sorted(reads_in_gap.get(j + 1, []), key=lambda o: o.uid))
    return VerificationResult(
        holds=True,
        method="write-order",
        schedule=schedule,
        address=addr,
        stats={"gaps": len(gap_value)},
    )
