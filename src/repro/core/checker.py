"""Certificate checkers (Theorem 4.2, membership in NP).

A schedule is the polynomial-size certificate for VMC/VSC: these
functions decide in linear time whether a proposed schedule really is a
coherent (single-address) or sequentially consistent (multi-address)
interleaving of an execution's operations.

Every solver in this library funnels its witness through these checkers
in the test suite, so a bug in a solver cannot silently produce a bogus
"coherent" verdict with an invalid schedule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.core.types import (
    INITIAL,
    Address,
    Execution,
    OpKind,
    Operation,
    Value,
)


@dataclass(frozen=True)
class CheckOutcome:
    """Result of a certificate check.

    ``ok`` is the verdict; on failure ``position`` is the index of the
    offending operation in the schedule (or -1 for structural problems)
    and ``reason`` is a human-readable explanation.
    """

    ok: bool
    position: int = -1
    reason: str = ""

    def __bool__(self) -> bool:
        return self.ok


_OK = CheckOutcome(True)


def _check_value_trace(
    schedule: Sequence[Operation],
    initial: Mapping[Address, Value],
    final: Mapping[Address, Value] | None,
) -> CheckOutcome:
    """Core value check: every read returns the immediately preceding
    write's value for its address (or the initial value), and the last
    write per address produces the required final value."""
    current: dict[Address, Value] = {}
    for i, op in enumerate(schedule):
        if op.kind.is_sync:
            continue
        if op.kind.reads:
            expected = current.get(op.addr, initial.get(op.addr, INITIAL))
            if op.value_read != expected:
                return CheckOutcome(
                    False,
                    i,
                    f"{op} reads {op.value_read!r} but the current value of "
                    f"{op.addr!r} is {expected!r}",
                )
        if op.kind.writes:
            current[op.addr] = op.value_written
    if final:
        for addr, want in final.items():
            got = current.get(addr, initial.get(addr, INITIAL))
            if got != want:
                return CheckOutcome(
                    False,
                    len(schedule) - 1 if schedule else -1,
                    f"final value of {addr!r} is {got!r}, required {want!r}",
                )
    return _OK


def schedule_respects_program_order(
    execution: Execution, schedule: Sequence[Operation]
) -> CheckOutcome:
    """Whether ``schedule`` contains exactly the execution's operations,
    each exactly once, with every process's operations in program order."""
    expected = {op.uid: op for op in execution.all_ops()}
    next_index: dict[int, int] = {}
    seen: set[tuple[int, int]] = set()
    for i, op in enumerate(schedule):
        if op.uid not in expected:
            return CheckOutcome(False, i, f"{op} is not part of the execution")
        if op.uid in seen:
            return CheckOutcome(False, i, f"{op} appears twice in the schedule")
        if expected[op.uid] != op:
            return CheckOutcome(
                False, i, f"{op} differs from the execution's operation {expected[op.uid]}"
            )
        seen.add(op.uid)
        # Program order within the process must be preserved.  The
        # sub-execution case (restrict_to_address) keeps original po
        # indices, so we compare indices monotonically rather than
        # requiring consecutive values.
        prev = next_index.get(op.proc, -1)
        if op.index <= prev:
            return CheckOutcome(
                False,
                i,
                f"{op} violates program order of process {op.proc} "
                f"(a later operation of that process already appeared)",
            )
        next_index[op.proc] = op.index
    if len(seen) != len(expected):
        missing = next(uid for uid in expected if uid not in seen)
        return CheckOutcome(
            False, -1, f"schedule is missing operation {expected[missing]}"
        )
    return _OK


def is_coherent_schedule(
    execution: Execution,
    schedule: Sequence[Operation],
    addr: Address | None = None,
) -> CheckOutcome:
    """Full VMC certificate check for a single-address execution.

    If the execution touches several addresses, pass ``addr`` and the
    check applies to ``execution.restrict_to_address(addr)``.
    """
    if addr is not None:
        execution = execution.restrict_to_address(addr)
    addrs = execution.addresses()
    if len(addrs) > 1:
        return CheckOutcome(
            False,
            -1,
            f"coherence is per-address but the execution touches {addrs}; "
            f"pass addr= to select one",
        )
    po = schedule_respects_program_order(execution, schedule)
    if not po:
        return po
    return _check_value_trace(schedule, execution.initial, execution.final)


def is_sc_schedule(
    execution: Execution, schedule: Sequence[Operation]
) -> CheckOutcome:
    """Full VSC certificate check (all addresses at once)."""
    po = schedule_respects_program_order(execution, schedule)
    if not po:
        return po
    return _check_value_trace(schedule, execution.initial, execution.final)


def value_trace_ok(
    schedule: Sequence[Operation],
    initial: Mapping[Address, Value] | None = None,
    final: Mapping[Address, Value] | None = None,
) -> CheckOutcome:
    """Check only the read-values property of an arbitrary op sequence
    (no membership/program-order validation) — used by generators that
    construct executions *from* schedules."""
    return _check_value_trace(schedule, initial or {}, final)


def execution_from_schedule(
    schedule: Sequence[Operation],
    num_processes: int,
    initial: Mapping[Address, Value] | None = None,
    record_final: bool = True,
) -> Execution:
    """Slice a (legal) schedule back into an execution.

    The inverse of scheduling: distribute operations to their processes
    preserving order of appearance.  Used heavily by property tests —
    an execution built this way is coherent/SC *by construction*, with
    the input schedule as witness.  ``record_final`` captures the last
    written value per address as the required ``d_F``.
    """
    per_proc: list[list[Operation]] = [[] for _ in range(num_processes)]
    current: dict[Address, Value] = {}
    for op in schedule:
        if not (0 <= op.proc < num_processes):
            raise ValueError(f"{op} names process outside 0..{num_processes - 1}")
        per_proc[op.proc].append(op)
        if op.kind.writes:
            current[op.addr] = op.value_written
    final = dict(current) if record_final else None
    return Execution.from_ops(per_proc, initial=initial, final=final)
