"""VSCC (Definition 6.2): sequential consistency for coherent executions.

VSCC is a *promise* problem: the input is promised to be coherent per
address.  The paper's point (Section 6.3) is that the promise does not
help — VSCC is NP-Complete, even when the write-order makes checking
the promise polynomial.

``verify_vscc`` therefore does two things:

1. checks the promise (per-address coherence; with write-orders this is
   the polynomial Section 5.2 algorithm, otherwise whatever the VMC
   dispatcher picks), reporting a broken promise distinctly from an SC
   violation;
2. decides sequential consistency.

It also exposes the *incomplete-but-fast* pipeline the paper warns
about: ``vsc_via_conflict`` commits to the coherent schedules found in
step 1 and merges them in O(n log n) — sound when it answers yes, but
it may answer no for an SC execution whose chosen per-address schedules
simply don't merge.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.core.conflict import vsc_conflict
from repro.core.result import VerificationResult
from repro.core.types import Address, Execution, Operation
from repro.core.vmc import verify_coherence
from repro.core.vsc import verify_sequential_consistency


def verify_vscc(
    execution: Execution,
    write_orders: Mapping[Address, Sequence[Operation]] | None = None,
    method: str = "auto",
    *,
    jobs: int = 1,
    cache=None,
) -> VerificationResult:
    """Check the coherence promise, then decide sequential consistency.

    ``jobs``/``cache`` are forwarded to the engine for the per-address
    coherence-promise check (the SC decision itself is one task).
    """
    coherence = verify_coherence(
        execution, write_orders=write_orders, jobs=jobs, cache=cache
    )
    if not coherence:
        return VerificationResult(
            holds=False,
            method="vscc-promise",
            reason=f"the coherence promise is broken: {coherence.reason}",
            per_address=coherence.per_address,
        )
    result = verify_sequential_consistency(execution, method=method)
    result.per_address = coherence.per_address
    result.method = f"vscc/{result.method}"
    return result


def vsc_via_conflict(
    execution: Execution,
    write_orders: Mapping[Address, Sequence[Operation]] | None = None,
    *,
    jobs: int = 1,
    cache=None,
) -> VerificationResult:
    """The divide-and-conquer pipeline the paper shows is incomplete.

    Verify coherence per address (polynomial with write-orders), then
    treat the witnesses as commitments and merge (VSC-Conflict,
    O(n log n)).  A ``holds`` answer is always correct; a negative
    answer only means *these* schedules don't merge.
    """
    coherence = verify_coherence(
        execution, write_orders=write_orders, jobs=jobs, cache=cache
    )
    if not coherence:
        return VerificationResult(
            holds=False,
            method="conflict-pipeline",
            reason=f"not even coherent: {coherence.reason}",
            per_address=coherence.per_address,
        )
    schedules = {
        a: r.schedule
        for a, r in coherence.per_address.items()
        if r.schedule is not None
    }
    result = vsc_conflict(execution, schedules, validate_inputs=False)
    result.method = "conflict-pipeline"
    result.per_address = coherence.per_address
    if not result.holds:
        result.reason += (
            " (note: this pipeline is incomplete — the execution may "
            "still be sequentially consistent under a different choice "
            "of coherent schedules; see Section 6.3)"
        )
    return result
