"""Counterexample minimization: *why* is this execution incoherent?

A raw "no coherent schedule exists" over thousands of operations is
unactionable.  This module shrinks an incoherent (single-address)
execution to a small core that is still incoherent, delta-debugging
style:

1. drop entire processes while the violation persists;
2. truncate each history from the back (later operations can only add
   constraints *after* the part that already fails — not true in
   general for final-value constraints, so truncation re-checks);
3. drop individual operations greedily (removing an operation can only
   *relax* scheduling constraints except where its write sourced later
   reads — the oracle re-check keeps us honest).

The result is a :class:`MinimalViolation` bundling the core execution
and a human-readable narrative.  Minimization calls the decision oracle
O(total ops) times, each on a shrinking instance; pass ``oracle=`` to
use a cheaper decision procedure (e.g. the write-order checker bound to
a supplied order).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.exact import exact_vmc
from repro.core.types import Execution, Operation
from repro.core.result import VerificationResult

Oracle = Callable[[Execution], VerificationResult]


@dataclass
class MinimalViolation:
    """A shrunken incoherent core."""

    execution: Execution
    original_ops: int
    reason: str

    @property
    def core_ops(self) -> int:
        return self.execution.num_ops

    def narrative(self) -> str:
        lines = [
            f"minimal incoherent core: {self.core_ops} of "
            f"{self.original_ops} operations",
            self.execution.pretty(),
            f"verifier: {self.reason}",
        ]
        return "\n".join(lines)


def _rebuild(
    histories: list[list[Operation]], template: Execution
) -> Execution:
    kept = [h for h in histories if h]
    return Execution.from_ops(
        kept if kept else [[]],
        initial=template.initial,
        final=template.final,
    )


def minimize_violation(
    execution: Execution,
    oracle: Oracle | None = None,
    max_oracle_calls: int = 2000,
) -> MinimalViolation:
    """Shrink an incoherent single-address execution to a small core.

    Raises ``ValueError`` if the execution is actually coherent under
    the oracle.  The default oracle is the exact solver; for large
    instances supply a polynomial one.
    """
    decide: Oracle = oracle or exact_vmc
    calls = 0

    def incoherent(ex: Execution) -> VerificationResult | None:
        nonlocal calls
        calls += 1
        if calls > max_oracle_calls:
            raise RuntimeError("minimization exceeded its oracle budget")
        result = decide(ex)
        return result if not result else None

    baseline = incoherent(execution)
    if baseline is None:
        raise ValueError("execution is coherent; nothing to minimize")

    # Dropping operations can manufacture *degenerate* failures through
    # the final-value constraint (remove the last write of d_F and any
    # remainder is "incoherent").  If the violation survives without the
    # final constraints, minimize the unconstrained instance — the core
    # then demonstrates the genuine read-value conflict.
    unconstrained = Execution.from_ops(
        [list(h.operations) for h in execution.histories],
        initial=execution.initial,
    )
    without_finals = incoherent(unconstrained)
    if without_finals is not None:
        execution = unconstrained
        baseline = without_finals

    histories = [list(h.operations) for h in execution.histories]
    current = execution
    reason = baseline.reason

    # Phase 1: drop whole processes.
    p = 0
    while p < len(histories):
        if not histories[p]:
            p += 1
            continue
        candidate_histories = histories[:p] + [[]] + histories[p + 1 :]
        candidate = _rebuild(candidate_histories, execution)
        failed = incoherent(candidate)
        if failed is not None:
            histories = candidate_histories
            current = candidate
            reason = failed.reason
        p += 1

    # Phase 2: truncate histories from the back.
    for p in range(len(histories)):
        while histories[p]:
            candidate_histories = [list(h) for h in histories]
            candidate_histories[p] = candidate_histories[p][:-1]
            candidate = _rebuild(candidate_histories, execution)
            failed = incoherent(candidate)
            if failed is None:
                break
            histories = candidate_histories
            current = candidate
            reason = failed.reason

    # Phase 3: drop single operations.
    p = 0
    while p < len(histories):
        i = 0
        while i < len(histories[p]):
            candidate_histories = [list(h) for h in histories]
            del candidate_histories[p][i]
            candidate = _rebuild(candidate_histories, execution)
            failed = incoherent(candidate)
            if failed is not None:
                histories = candidate_histories
                current = candidate
                reason = failed.reason
            else:
                i += 1
        p += 1

    return MinimalViolation(
        execution=current,
        original_ops=execution.num_ops,
        reason=reason,
    )
