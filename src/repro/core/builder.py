"""Ergonomic construction of executions.

Two styles:

* the fluent :class:`ExecutionBuilder` /
  :class:`ProcessBuilder` pair::

      b = ExecutionBuilder(initial={"x": 0})
      p0 = b.process()
      p0.write("x", 1).read("x", 1)
      p1 = b.process()
      p1.read("x", 0)
      execution = b.build(final={"x": 1})

* a compact text format, one process per line, mirroring the paper's
  column notation::

      P0: W(x,1) R(x,1)
      P1: R(x,0)

  parsed by :func:`parse_trace`.  Values are ints when they look like
  ints, the string ``init`` for :data:`INITIAL`, else strings.
"""

from __future__ import annotations

import re
from typing import Mapping

from repro.core.types import (
    INITIAL,
    Address,
    Execution,
    OpKind,
    Operation,
    Value,
)


class ProcessBuilder:
    """Accumulates one process's operations in program order."""

    def __init__(self, proc: int):
        self.proc = proc
        self.ops: list[Operation] = []

    def _append(self, kind: OpKind, addr: Address, vr: Value, vw: Value) -> "ProcessBuilder":
        self.ops.append(
            Operation(
                kind,
                addr,
                self.proc,
                len(self.ops),
                value_read=vr,
                value_written=vw,
            )
        )
        return self

    def read(self, addr: Address, value: Value) -> "ProcessBuilder":
        """Append ``R(addr, value)``."""
        return self._append(OpKind.READ, addr, value, None)

    def write(self, addr: Address, value: Value) -> "ProcessBuilder":
        """Append ``W(addr, value)``."""
        return self._append(OpKind.WRITE, addr, None, value)

    def rmw(self, addr: Address, value_read: Value, value_written: Value) -> "ProcessBuilder":
        """Append ``RW(addr, d_r, d_w)``."""
        return self._append(OpKind.RMW, addr, value_read, value_written)

    def acquire(self, lock: Address) -> "ProcessBuilder":
        """Append an acquire of ``lock`` (Figure 6.1 synchronization)."""
        return self._append(OpKind.ACQUIRE, lock, None, None)

    def release(self, lock: Address) -> "ProcessBuilder":
        """Append a release of ``lock``."""
        return self._append(OpKind.RELEASE, lock, None, None)


class ExecutionBuilder:
    """Builds an :class:`~repro.core.types.Execution` process by process."""

    def __init__(self, initial: Mapping[Address, Value] | None = None):
        self.initial = dict(initial or {})
        self.processes: list[ProcessBuilder] = []

    def process(self) -> ProcessBuilder:
        """Open the next process history and return its builder."""
        p = ProcessBuilder(len(self.processes))
        self.processes.append(p)
        return p

    def build(self, final: Mapping[Address, Value] | None = None) -> Execution:
        return Execution.from_ops(
            [p.ops for p in self.processes], initial=self.initial, final=final
        )


_OP_RE = re.compile(
    r"(?P<kind>RW|R|W|ACQ|REL)\s*\(\s*(?P<args>[^)]*)\s*\)", re.IGNORECASE
)
_LINE_RE = re.compile(r"^\s*P?(?P<proc>\d+)\s*:\s*(?P<body>.*)$")


def _parse_value(tok: str) -> Value:
    tok = tok.strip()
    if tok.lower() == "init":
        return INITIAL
    try:
        return int(tok)
    except ValueError:
        return tok


def parse_trace(
    text: str,
    initial: Mapping[Address, Value] | None = None,
    final: Mapping[Address, Value] | None = None,
    default_addr: Address = "a",
) -> Execution:
    """Parse the compact text format into an execution.

    Single-address shorthand is accepted: ``R(1)`` / ``W(2)`` /
    ``RW(1,2)`` apply to ``default_addr`` (the paper's shorthand when
    all operations share one address).
    """
    per_proc: dict[int, list[Operation]] = {}
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        m = _LINE_RE.match(line)
        if not m:
            raise ValueError(f"cannot parse trace line: {raw!r}")
        proc = int(m.group("proc"))
        ops = per_proc.setdefault(proc, [])
        body = m.group("body")
        consumed = 0
        for om in _OP_RE.finditer(body):
            consumed += 1
            kind = om.group("kind").upper()
            args = [a for a in om.group("args").split(",") if a.strip() != ""]
            if kind == "R":
                if len(args) == 1:
                    addr, vals = default_addr, args
                elif len(args) == 2:
                    addr, vals = _parse_value(args[0]), args[1:]
                else:
                    raise ValueError(f"R takes 1 or 2 args: {om.group(0)!r}")
                ops.append(
                    Operation(
                        OpKind.READ, addr, proc, len(ops),
                        value_read=_parse_value(vals[0]),
                    )
                )
            elif kind == "W":
                if len(args) == 1:
                    addr, vals = default_addr, args
                elif len(args) == 2:
                    addr, vals = _parse_value(args[0]), args[1:]
                else:
                    raise ValueError(f"W takes 1 or 2 args: {om.group(0)!r}")
                ops.append(
                    Operation(
                        OpKind.WRITE, addr, proc, len(ops),
                        value_written=_parse_value(vals[0]),
                    )
                )
            elif kind == "RW":
                if len(args) == 2:
                    addr, vals = default_addr, args
                elif len(args) == 3:
                    addr, vals = _parse_value(args[0]), args[1:]
                else:
                    raise ValueError(f"RW takes 2 or 3 args: {om.group(0)!r}")
                ops.append(
                    Operation(
                        OpKind.RMW, addr, proc, len(ops),
                        value_read=_parse_value(vals[0]),
                        value_written=_parse_value(vals[1]),
                    )
                )
            else:  # ACQ / REL
                if len(args) != 1:
                    raise ValueError(f"{kind} takes 1 arg: {om.group(0)!r}")
                ops.append(
                    Operation(
                        OpKind.ACQUIRE if kind == "ACQ" else OpKind.RELEASE,
                        _parse_value(args[0]), proc, len(ops),
                    )
                )
        if consumed == 0 and body.strip():
            raise ValueError(f"no operations recognised in: {raw!r}")
    if not per_proc:
        return Execution.from_ops([], initial=initial, final=final)
    max_proc = max(per_proc)
    histories = [per_proc.get(p, []) for p in range(max_proc + 1)]
    return Execution.from_ops(histories, initial=initial, final=final)
