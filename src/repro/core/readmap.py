"""VMC with every value written at most once (Figure 5.3, row 5).

When no value is written twice the *read-map* is forced: each read of
value ``v`` can only have been served by the unique write of ``v`` (or
by the initial value).  Coherence then collapses to a precedence
question, solvable in linear time:

1. Form *blocks*: the initial block (reads of ``d_I``) and, per write,
   the write followed by all reads of its value.  Within a block the
   write precedes its reads and reads commute, so block-internal order
   is determined up to the harmless ordering of reads.
2. A read-modify-write both terminates the block it reads (it must sit
   immediately after that block: any later position would put another
   write in between) and opens its own block — the two blocks are
   *fused* so they stay adjacent in every schedule.
3. Build a digraph over fused block-chains: the initial chain precedes
   every other; program order between operations induces edges between
   their chains (a program-order pair inside one chain must agree with
   the chain's internal order); the final value's chain, when ``d_F``
   is specified, must come last.
4. A coherent schedule exists iff the digraph is acyclic; the witness
   is the concatenation of chains in topological order.

Complexity: O(n) node/edge construction plus Kahn's algorithm — O(n).
The paper quotes O(n) for simple operations and O(n lg n) for RMWs.
"""

from __future__ import annotations

from collections import defaultdict

from repro.core.types import (
    Address,
    Execution,
    OpKind,
    Operation,
    Value,
)
from repro.core.result import VerificationResult
from repro.util.digraph import CycleError, Digraph


def applicable(execution: Execution, addr: Address | None = None) -> bool:
    """True when every value is written at most once (per address)."""
    return execution.max_writes_per_value(addr) <= 1


def readmap_vmc(execution: Execution) -> VerificationResult:
    """Decide VMC for a single-address, unique-write-values execution."""
    addrs = execution.constrained_addresses()
    if len(addrs) > 1:
        raise ValueError(f"readmap VMC is per-address, got {addrs}")
    addr = addrs[0] if addrs else None
    if not applicable(execution):
        raise ValueError("some value is written more than once")
    d_i = execution.initial_value(addr) if addr is not None else None
    d_f = execution.final_value(addr) if addr is not None else None

    ops = [op for h in execution.histories for op in h]
    if not ops:
        ok = d_f is None or d_f == d_i
        return VerificationResult(
            holds=ok,
            method="readmap",
            schedule=[] if ok else None,
            reason="" if ok else f"no operations but final value {d_f!r} "
            f"differs from initial {d_i!r}",
        )

    # --- 1. map each op to a block ------------------------------------
    # Block 0 is the initial block.  Block i+1 belongs to writer ops[i].
    writers: list[Operation] = [op for op in ops if op.kind.writes]
    block_of_value: dict[Value, int] = {}
    for b, w in enumerate(writers, start=1):
        v = w.value_written
        if v == d_i:
            # A write re-creating the initial value is still a distinct
            # block; reads of d_i are only unambiguous if they can be
            # attributed.  Reads of d_i are assigned to the *initial*
            # block (they may also read from this write, so the forced
            # read-map assumption breaks).  Fall back to exact in the
            # dispatcher for this corner; here we treat it as ambiguous.
            raise ValueError(
                "a write re-creates the initial value; read-map is not "
                "forced — use the exact solver"
            )
        block_of_value[v] = b

    num_blocks = len(writers) + 1
    block_write: list[Operation | None] = [None] + writers
    block_reads: list[list[Operation]] = [[] for _ in range(num_blocks)]
    block_of_op: dict[tuple[int, int], int] = {}
    for b, w in enumerate(writers, start=1):
        block_of_op[w.uid] = b

    rmw_reading_block: dict[int, Operation] = {}  # block -> the RMW reading it
    for op in ops:
        if not op.kind.reads:
            continue
        v = op.value_read
        if v == d_i and v not in block_of_value:
            b = 0
        elif v in block_of_value:
            b = block_of_value[v]
        else:
            return VerificationResult(
                holds=False,
                method="readmap",
                reason=f"{op} reads {v!r}, which is never written and is "
                f"not the initial value {d_i!r}",
            )
        if op.kind is OpKind.RMW:
            if b == block_of_op[op.uid]:
                return VerificationResult(
                    holds=False,
                    method="readmap",
                    reason=f"{op} would have to read its own written value",
                )
            if b in rmw_reading_block:
                return VerificationResult(
                    holds=False,
                    method="readmap",
                    reason=(
                        f"both {rmw_reading_block[b]} and {op} must "
                        f"immediately follow the unique write of "
                        f"{v!r}; they cannot both be adjacent to it"
                    ),
                )
            rmw_reading_block[b] = op
        else:
            block_reads[b].append(op)
            block_of_op[op.uid] = b

    # --- 2. fuse RMW chains -------------------------------------------
    # chain id = representative block; union along rmw edges b -> block(rmw).
    next_block: dict[int, int] = {
        b: block_of_op[op.uid] for b, op in rmw_reading_block.items()
    }
    in_chain_pred: dict[int, int] = {v: k for k, v in next_block.items()}
    if len(in_chain_pred) != len(next_block):
        # Two blocks chain into the same successor — impossible since a
        # block's RMW reader is unique, and an RMW reads one value.
        return VerificationResult(
            holds=False,
            method="readmap",
            reason="conflicting read-modify-write adjacency requirements",
        )
    chain_head: dict[int, int] = {}
    chain_members: dict[int, list[int]] = {}
    for b in range(num_blocks):
        if b in in_chain_pred:
            continue  # not a head
        members = [b]
        cur = b
        seen = {b}
        while cur in next_block:
            cur = next_block[cur]
            if cur in seen:
                return VerificationResult(
                    holds=False,
                    method="readmap",
                    reason="read-modify-write adjacency forms a cycle of blocks",
                )
            seen.add(cur)
            members.append(cur)
        for m in members:
            chain_head[m] = b
        chain_members[b] = members
    if len(chain_head) != num_blocks:
        # Some blocks only appear inside a cycle of next_block links.
        return VerificationResult(
            holds=False,
            method="readmap",
            reason="read-modify-write adjacency forms a cycle of blocks",
        )

    heads = sorted(chain_members)
    chain_index = {h: i for i, h in enumerate(heads)}

    def chain_of_block(b: int) -> int:
        return chain_index[chain_head[b]]

    # Position of each op inside its chain, for intra-chain po checks:
    # (block position in chain, 0 for the write / RMW, 1 for reads).
    op_pos: dict[tuple[int, int], tuple[int, int]] = {}
    for head, members in chain_members.items():
        for bi, b in enumerate(members):
            w = block_write[b]
            if w is not None:
                op_pos[w.uid] = (bi, 0)
            for r in block_reads[b]:
                op_pos[r.uid] = (bi, 1)

    # --- 3. precedence digraph over chains ------------------------------
    g = Digraph(len(heads))
    init_chain = chain_of_block(0)
    for i in range(len(heads)):
        if i != init_chain:
            g.add_edge(init_chain, i)
    for h in execution.histories:
        for o1, o2 in zip(h.operations, h.operations[1:]):
            c1, c2 = chain_of_block(block_of_op[o1.uid]), chain_of_block(
                block_of_op[o2.uid]
            )
            if c1 == c2:
                if op_pos[o1.uid] > op_pos[o2.uid]:
                    return VerificationResult(
                        holds=False,
                        method="readmap",
                        reason=f"program order {o1} -> {o2} contradicts the "
                        f"forced order within their write-block chain",
                    )
            else:
                g.add_edge(c1, c2)
    if d_f is not None:
        fb = block_of_value.get(d_f)
        if fb is None:
            if writers or d_f != d_i:
                return VerificationResult(
                    holds=False,
                    method="readmap",
                    reason=f"required final value {d_f!r} is never written"
                    + ("" if writers else f" and initial is {d_i!r}"),
                )
        else:
            # The chain containing the final write must come last, and
            # the final write's block must be the last block of its chain.
            fc = chain_of_block(fb)
            if chain_members[chain_head[fb]][-1] != fb:
                return VerificationResult(
                    holds=False,
                    method="readmap",
                    reason=f"the write of final value {d_f!r} is forcibly "
                    f"followed by a read-modify-write's own write",
                )
            for i in range(len(heads)):
                if i != fc:
                    g.add_edge(i, fc)

    # --- 4. topological order = witness --------------------------------
    try:
        order = g.topological_order()
    except CycleError as e:
        return VerificationResult(
            holds=False,
            method="readmap",
            reason=f"write-block precedence graph is cyclic (chains {e.cycle})",
            stats={"cycle": e.cycle},
        )
    schedule: list[Operation] = []
    for ci in order:
        head = heads[ci]
        for b in chain_members[head]:
            w = block_write[b]
            if w is not None:
                schedule.append(w)
            schedule.extend(sorted(block_reads[b], key=lambda o: o.uid))
    return VerificationResult(
        holds=True,
        method="readmap",
        schedule=schedule,
        address=addr,
        stats={"blocks": num_blocks, "chains": len(heads)},
    )
