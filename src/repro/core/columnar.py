"""Columnar (structure-of-arrays) view of an execution.

The object model in :mod:`repro.core.types` is the right interface for
building and inspecting traces, but the polynomial hot paths — read
elimination, happens-before saturation, frontier packing, CNF layout,
cache fingerprinting — only ever need *codes*: which kind, which
process, which address, which value.  Re-deriving those codes by
walking ``Operation`` dataclasses was duplicated across ``infer.py``,
``exact.py``, ``encode.py`` and ``engine/cache.py``; this module
computes them once per execution and shares the result.

A :class:`ColumnarTrace` holds parallel columns over the flat,
process-major operation sequence (process 0's history first, in
program order, then process 1's, ...):

* ``kinds[i]`` — the operation kind as a small integer code;
* ``procs[i]`` / ``indices[i]`` — the operation's uid, preserving
  *gappy* program-order indices of sub-executions;
* ``addr_ids[i]`` — index into the interned ``addrs`` table;
* ``read_vids[i]`` / ``write_vids[i]`` — indices into the interned
  ``values`` table, ``-1`` when the kind does not read / write.

plus per-process (``proc_slice``) and per-address (``addr_ops``) index
slices, and the initial/final constraints as value ids per address.
``initial_ids[ai]`` is always a valid value id — the *effective*
initial value, interning the :data:`~repro.core.types.INITIAL` default
for addresses absent from the ``initial`` mapping — so consumers can
compare read value ids against it directly; ``implicit_initial[ai]``
records which entries were defaulted, keeping the round-trip to
``Execution`` lossless.

Address table ordering is load-bearing: the first ``n_touched``
entries are the touched addresses in first-appearance order (exactly
``Execution.addresses()``), the first ``n_constrained`` entries add
the final-only addresses (exactly ``Execution.constrained_addresses()``),
and any remaining entries are addresses appearing only in ``initial``.

Columns are stdlib ``array`` arrays with fixed little-endian-friendly
type codes, so the binary trace format (:mod:`repro.core.serialize_bin`)
can dump and load them as raw blobs, and the numpy kernels
(:mod:`repro.core.kernels`) can wrap them zero-copy via
``np.frombuffer``.

Value interning uses dictionary (``hash``/``==``) semantics — the same
equality every verifier already applies when it groups writers by
value — so two values receive the same id exactly when the verifiers
would treat them as the same value.

The view is immutable and cached: :meth:`Execution.columnar` builds it
on first use and memoizes it on the instance (executions are never
mutated after construction).  The cache is excluded from pickling so
process-pool tasks do not ship redundant columns.
"""

from __future__ import annotations

from array import array
from typing import Hashable

from repro.core.types import (
    Address,
    Execution,
    OpKind,
    Operation,
    ProcessHistory,
    Value,
)

#: Kind codes, stable across releases (the binary format stores them).
KIND_CODES: dict[OpKind, int] = {
    OpKind.READ: 0,
    OpKind.WRITE: 1,
    OpKind.RMW: 2,
    OpKind.ACQUIRE: 3,
    OpKind.RELEASE: 4,
}
KINDS_BY_CODE: tuple[OpKind, ...] = tuple(
    k for k, _ in sorted(KIND_CODES.items(), key=lambda kv: kv[1])
)

#: ``array`` type codes per column — fixed sizes, so the binary format
#: can compute blob lengths from the header alone.
COLUMN_TYPECODES = {
    "kinds": "B",       # u8
    "procs": "I",       # u32
    "indices": "I",     # u32
    "addr_ids": "I",    # u32
    "read_vids": "i",   # i32 (-1 = kind does not read)
    "write_vids": "i",  # i32 (-1 = kind does not write)
}
#: The per-op columns in their canonical (binary-format) order.
OP_COLUMNS = tuple(COLUMN_TYPECODES)


class ColumnarTrace:
    """Immutable structure-of-arrays view of one :class:`Execution`."""

    __slots__ = (
        "n_ops",
        "n_procs",
        "kinds",
        "procs",
        "indices",
        "addr_ids",
        "read_vids",
        "write_vids",
        "proc_offsets",
        "addrs",
        "values",
        "n_touched",
        "n_constrained",
        "initial_ids",
        "implicit_initial",
        "final_ids",
        "_addr_ops",
        "_uid_pos",
        "_addr_id_of",
        "_source_ops",
    )

    def __init__(
        self,
        *,
        kinds: array,
        procs: array,
        indices: array,
        addr_ids: array,
        read_vids: array,
        write_vids: array,
        proc_offsets: array,
        addrs: tuple[Address, ...],
        values: tuple[Value, ...],
        n_touched: int,
        n_constrained: int,
        initial_ids: array,
        implicit_initial: array,
        final_ids: array,
    ):
        self.n_ops = len(kinds)
        self.n_procs = len(proc_offsets) - 1
        self.kinds = kinds
        self.procs = procs
        self.indices = indices
        self.addr_ids = addr_ids
        self.read_vids = read_vids
        self.write_vids = write_vids
        self.proc_offsets = proc_offsets
        self.addrs = addrs
        self.values = values
        self.n_touched = n_touched
        self.n_constrained = n_constrained
        self.initial_ids = initial_ids
        self.implicit_initial = implicit_initial
        self.final_ids = final_ids
        self._addr_ops: list[array] | None = None
        self._uid_pos: dict[tuple[int, int], int] | None = None
        self._addr_id_of: dict[Address, int] | None = None
        #: Original Operation objects in flat order when the view was
        #: built from an Execution (None for views loaded from the
        #: binary format); lets op_at/restricted views hand back the
        #: *same* objects the caller already holds.
        self._source_ops: tuple[Operation, ...] | None = None

    # -- construction ---------------------------------------------------
    @staticmethod
    def from_execution(execution: Execution) -> "ColumnarTrace":
        """Build the columnar view (one O(n) walk of the object model)."""
        addr_id: dict[Hashable, int] = {}
        value_id: dict[Hashable, int] = {}
        addrs: list[Address] = []
        values: list[Value] = []

        def aid(a: Address) -> int:
            i = addr_id.get(a)
            if i is None:
                i = addr_id[a] = len(addrs)
                addrs.append(a)
            return i

        def vid(v: Value) -> int:
            i = value_id.get(v)
            if i is None:
                i = value_id[v] = len(values)
                values.append(v)
            return i

        kinds = array(COLUMN_TYPECODES["kinds"])
        procs = array(COLUMN_TYPECODES["procs"])
        indices = array(COLUMN_TYPECODES["indices"])
        addr_ids = array(COLUMN_TYPECODES["addr_ids"])
        read_vids = array(COLUMN_TYPECODES["read_vids"])
        write_vids = array(COLUMN_TYPECODES["write_vids"])
        proc_offsets = array("Q", [0])
        for h in execution.histories:
            for op in h:
                kinds.append(KIND_CODES[op.kind])
                procs.append(op.proc)
                indices.append(op.index)
                addr_ids.append(aid(op.addr))
                read_vids.append(vid(op.value_read) if op.kind.reads else -1)
                write_vids.append(
                    vid(op.value_written) if op.kind.writes else -1
                )
            proc_offsets.append(len(kinds))
        n_touched = len(addrs)
        for a in execution.final:
            aid(a)
        n_constrained = len(addrs)
        for a in execution.initial:
            aid(a)

        initial_ids = array("i")
        implicit_initial = array("B")
        final_ids = array("i")
        for a in addrs:
            initial_ids.append(vid(execution.initial_value(a)))
            implicit_initial.append(0 if a in execution.initial else 1)
            final_ids.append(
                vid(execution.final[a]) if a in execution.final else -1
            )
        view = ColumnarTrace(
            kinds=kinds,
            procs=procs,
            indices=indices,
            addr_ids=addr_ids,
            read_vids=read_vids,
            write_vids=write_vids,
            proc_offsets=proc_offsets,
            addrs=tuple(addrs),
            values=tuple(values),
            n_touched=n_touched,
            n_constrained=n_constrained,
            initial_ids=initial_ids,
            implicit_initial=implicit_initial,
            final_ids=final_ids,
        )
        view._source_ops = tuple(
            op for h in execution.histories for op in h
        )
        return view

    # -- slices -----------------------------------------------------------
    def proc_slice(self, p: int) -> slice:
        """Flat-position slice of process ``p``'s operations."""
        return slice(self.proc_offsets[p], self.proc_offsets[p + 1])

    @property
    def addr_ops(self) -> list[array]:
        """Per-address flat positions, process-major program order.

        ``addr_ops[ai]`` lists every flat position whose operation
        touches ``addrs[ai]`` — the shared replacement for the ad-hoc
        address→ops maps the verifiers used to rebuild individually.
        """
        if self._addr_ops is None:
            per = [array("I") for _ in self.addrs]
            for i, ai in enumerate(self.addr_ids):
                per[ai].append(i)
            self._addr_ops = per
        return self._addr_ops

    def ops_at_id(self, ai: int) -> array:
        """Flat positions of the operations at address id ``ai``."""
        return self.addr_ops[ai]

    @property
    def uid_pos(self) -> dict[tuple[int, int], int]:
        """uid ``(proc, index)`` → flat position."""
        if self._uid_pos is None:
            self._uid_pos = {
                (self.procs[i], self.indices[i]): i
                for i in range(self.n_ops)
            }
        return self._uid_pos

    # -- conversion back --------------------------------------------------
    def to_execution(self) -> Execution:
        """Materialize an equal :class:`Execution` from the columns.

        Gappy program-order indices (sub-executions) are preserved, so
        the histories are rebuilt through ``object.__new__`` exactly
        like :meth:`Execution.restrict_to_address` does.
        """
        histories = []
        for p in range(self.n_procs):
            s = self.proc_slice(p)
            ops = tuple(self.op_at(i) for i in range(s.start, s.stop))
            ph = object.__new__(ProcessHistory)
            object.__setattr__(ph, "proc", p)
            object.__setattr__(ph, "operations", ops)
            histories.append(ph)
        initial = {
            a: self.values[vi]
            for a, vi, imp in zip(
                self.addrs, self.initial_ids, self.implicit_initial
            )
            if not imp
        }
        final = {
            a: self.values[vi]
            for a, vi in zip(self.addrs, self.final_ids)
            if vi >= 0
        }
        return Execution(histories, initial=initial, final=final)

    def op_at(self, i: int) -> Operation:
        """The :class:`Operation` at flat position ``i`` — the original
        object when the view came from an Execution, a freshly (and
        equally) materialized one when it was loaded from bytes."""
        if self._source_ops is not None:
            return self._source_ops[i]
        kind = KINDS_BY_CODE[self.kinds[i]]
        rv = self.read_vids[i]
        wv = self.write_vids[i]
        return Operation(
            kind,
            self.addrs[self.addr_ids[i]],
            self.procs[i],
            self.indices[i],
            value_read=self.values[rv] if rv >= 0 else None,
            value_written=self.values[wv] if wv >= 0 else None,
        )

    # -- address-restricted views -----------------------------------------
    def restrict_to_address_id(self, ai: int) -> Execution:
        """Single-address sub-execution for ``addrs[ai]`` (the engine's
        per-address VMC task unit), built from the column slices."""
        addr = self.addrs[ai]
        positions = self.addr_ops[ai]
        per_proc: list[list[Operation]] = [[] for _ in range(self.n_procs)]
        for i in positions:
            per_proc[self.procs[i]].append(self.op_at(i))
        histories = []
        for p in range(self.n_procs):
            ph = object.__new__(ProcessHistory)
            object.__setattr__(ph, "proc", p)
            object.__setattr__(ph, "operations", tuple(per_proc[p]))
            histories.append(ph)
        ex = object.__new__(Execution)
        ex.histories = tuple(histories)
        ex.initial = {addr: self.values[self.initial_ids[ai]]}
        fi = self.final_ids[ai]
        ex.final = {addr: self.values[fi]} if fi >= 0 else {}
        return ex

    def addr_index(self, addr: Address) -> int:
        """Address → id (cached dict; KeyError for unknown addresses)."""
        if self._addr_id_of is None:
            self._addr_id_of = {a: i for i, a in enumerate(self.addrs)}
        return self._addr_id_of[addr]

    # -- misc -------------------------------------------------------------
    def column_bytes(self) -> dict[str, bytes]:
        """Raw little-endian bytes of every per-op column (plus the
        offsets and constraint columns), the payload of the binary
        trace format."""
        import sys

        def raw(a: array) -> bytes:
            if sys.byteorder == "big":  # pragma: no cover
                a = array(a.typecode, a)
                a.byteswap()
            return a.tobytes()

        out = {name: raw(getattr(self, name)) for name in OP_COLUMNS}
        out["proc_offsets"] = raw(self.proc_offsets)
        out["initial_ids"] = raw(self.initial_ids)
        out["implicit_initial"] = raw(self.implicit_initial)
        out["final_ids"] = raw(self.final_ids)
        return out

    def __repr__(self) -> str:
        return (
            f"ColumnarTrace(ops={self.n_ops}, procs={self.n_procs}, "
            f"addrs={len(self.addrs)}, values={len(self.values)})"
        )


def columnar(execution: Execution) -> ColumnarTrace:
    """The cached columnar view of ``execution`` (module-level alias of
    :meth:`Execution.columnar` for call sites that prefer a function)."""
    return execution.columnar()
