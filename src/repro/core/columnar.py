"""Columnar (structure-of-arrays) view of an execution.

The object model in :mod:`repro.core.types` is the right interface for
building and inspecting traces, but the polynomial hot paths — read
elimination, happens-before saturation, frontier packing, CNF layout,
cache fingerprinting — only ever need *codes*: which kind, which
process, which address, which value.  Re-deriving those codes by
walking ``Operation`` dataclasses was duplicated across ``infer.py``,
``exact.py``, ``encode.py`` and ``engine/cache.py``; this module
computes them once per execution and shares the result.

A :class:`ColumnarTrace` holds parallel columns over the flat,
process-major operation sequence (process 0's history first, in
program order, then process 1's, ...):

* ``kinds[i]`` — the operation kind as a small integer code;
* ``procs[i]`` / ``indices[i]`` — the operation's uid, preserving
  *gappy* program-order indices of sub-executions;
* ``addr_ids[i]`` — index into the interned ``addrs`` table;
* ``read_vids[i]`` / ``write_vids[i]`` — indices into the interned
  ``values`` table, ``-1`` when the kind does not read / write.

plus per-process (``proc_slice``) and per-address (``addr_ops``) index
slices, and the initial/final constraints as value ids per address.
``initial_ids[ai]`` is always a valid value id — the *effective*
initial value, interning the :data:`~repro.core.types.INITIAL` default
for addresses absent from the ``initial`` mapping — so consumers can
compare read value ids against it directly; ``implicit_initial[ai]``
records which entries were defaulted, keeping the round-trip to
``Execution`` lossless.

Address table ordering is load-bearing: the first ``n_touched``
entries are the touched addresses in first-appearance order (exactly
``Execution.addresses()``), the first ``n_constrained`` entries add
the final-only addresses (exactly ``Execution.constrained_addresses()``),
and any remaining entries are addresses appearing only in ``initial``.

Columns are stdlib ``array`` arrays with fixed little-endian-friendly
type codes, so the binary trace format (:mod:`repro.core.serialize_bin`)
can dump and load them as raw blobs, and the numpy kernels
(:mod:`repro.core.kernels`) can wrap them zero-copy via
``np.frombuffer``.

Value interning uses dictionary (``hash``/``==``) semantics — the same
equality every verifier already applies when it groups writers by
value — so two values receive the same id exactly when the verifiers
would treat them as the same value.

The view is immutable and cached: :meth:`Execution.columnar` builds it
on first use and memoizes it on the instance (executions are never
mutated after construction).  The cache is excluded from pickling so
process-pool tasks do not ship redundant columns.
"""

from __future__ import annotations

from array import array
from typing import Hashable

from repro.core.types import (
    Address,
    Execution,
    OpKind,
    Operation,
    ProcessHistory,
    Value,
)

#: Kind codes, stable across releases (the binary format stores them).
KIND_CODES: dict[OpKind, int] = {
    OpKind.READ: 0,
    OpKind.WRITE: 1,
    OpKind.RMW: 2,
    OpKind.ACQUIRE: 3,
    OpKind.RELEASE: 4,
}
KINDS_BY_CODE: tuple[OpKind, ...] = tuple(
    k for k, _ in sorted(KIND_CODES.items(), key=lambda kv: kv[1])
)

#: ``array`` type codes per column — fixed sizes, so the binary format
#: can compute blob lengths from the header alone.
COLUMN_TYPECODES = {
    "kinds": "B",       # u8
    "procs": "I",       # u32
    "indices": "I",     # u32
    "addr_ids": "I",    # u32
    "read_vids": "i",   # i32 (-1 = kind does not read)
    "write_vids": "i",  # i32 (-1 = kind does not write)
}
#: The per-op columns in their canonical (binary-format) order.
OP_COLUMNS = tuple(COLUMN_TYPECODES)


class ColumnarTrace:
    """Immutable structure-of-arrays view of one :class:`Execution`."""

    __slots__ = (
        "n_ops",
        "n_procs",
        "kinds",
        "procs",
        "indices",
        "addr_ids",
        "read_vids",
        "write_vids",
        "proc_offsets",
        "addrs",
        "values",
        "n_touched",
        "n_constrained",
        "initial_ids",
        "implicit_initial",
        "final_ids",
        "_addr_ops",
        "_uid_pos",
        "_addr_id_of",
        "_source_ops",
    )

    def __init__(
        self,
        *,
        kinds: array,
        procs: array,
        indices: array,
        addr_ids: array,
        read_vids: array,
        write_vids: array,
        proc_offsets: array,
        addrs: tuple[Address, ...],
        values: tuple[Value, ...],
        n_touched: int,
        n_constrained: int,
        initial_ids: array,
        implicit_initial: array,
        final_ids: array,
    ):
        self.n_ops = len(kinds)
        self.n_procs = len(proc_offsets) - 1
        self.kinds = kinds
        self.procs = procs
        self.indices = indices
        self.addr_ids = addr_ids
        self.read_vids = read_vids
        self.write_vids = write_vids
        self.proc_offsets = proc_offsets
        self.addrs = addrs
        self.values = values
        self.n_touched = n_touched
        self.n_constrained = n_constrained
        self.initial_ids = initial_ids
        self.implicit_initial = implicit_initial
        self.final_ids = final_ids
        self._addr_ops: list[array] | None = None
        self._uid_pos: dict[tuple[int, int], int] | None = None
        self._addr_id_of: dict[Address, int] | None = None
        #: Original Operation objects in flat order when the view was
        #: built from an Execution (None for views loaded from the
        #: binary format); lets op_at/restricted views hand back the
        #: *same* objects the caller already holds.
        self._source_ops: tuple[Operation, ...] | None = None

    # -- construction ---------------------------------------------------
    @staticmethod
    def from_execution(execution: Execution) -> "ColumnarTrace":
        """Build the columnar view (one O(n) walk of the object model)."""
        addr_id: dict[Hashable, int] = {}
        value_id: dict[Hashable, int] = {}
        addrs: list[Address] = []
        values: list[Value] = []

        def aid(a: Address) -> int:
            i = addr_id.get(a)
            if i is None:
                i = addr_id[a] = len(addrs)
                addrs.append(a)
            return i

        def vid(v: Value) -> int:
            i = value_id.get(v)
            if i is None:
                i = value_id[v] = len(values)
                values.append(v)
            return i

        kinds = array(COLUMN_TYPECODES["kinds"])
        procs = array(COLUMN_TYPECODES["procs"])
        indices = array(COLUMN_TYPECODES["indices"])
        addr_ids = array(COLUMN_TYPECODES["addr_ids"])
        read_vids = array(COLUMN_TYPECODES["read_vids"])
        write_vids = array(COLUMN_TYPECODES["write_vids"])
        proc_offsets = array("Q", [0])
        for h in execution.histories:
            for op in h:
                kinds.append(KIND_CODES[op.kind])
                procs.append(op.proc)
                indices.append(op.index)
                addr_ids.append(aid(op.addr))
                read_vids.append(vid(op.value_read) if op.kind.reads else -1)
                write_vids.append(
                    vid(op.value_written) if op.kind.writes else -1
                )
            proc_offsets.append(len(kinds))
        n_touched = len(addrs)
        for a in execution.final:
            aid(a)
        n_constrained = len(addrs)
        for a in execution.initial:
            aid(a)

        initial_ids = array("i")
        implicit_initial = array("B")
        final_ids = array("i")
        for a in addrs:
            initial_ids.append(vid(execution.initial_value(a)))
            implicit_initial.append(0 if a in execution.initial else 1)
            final_ids.append(
                vid(execution.final[a]) if a in execution.final else -1
            )
        view = ColumnarTrace(
            kinds=kinds,
            procs=procs,
            indices=indices,
            addr_ids=addr_ids,
            read_vids=read_vids,
            write_vids=write_vids,
            proc_offsets=proc_offsets,
            addrs=tuple(addrs),
            values=tuple(values),
            n_touched=n_touched,
            n_constrained=n_constrained,
            initial_ids=initial_ids,
            implicit_initial=implicit_initial,
            final_ids=final_ids,
        )
        view._source_ops = tuple(
            op for h in execution.histories for op in h
        )
        return view

    # -- slices -----------------------------------------------------------
    def proc_slice(self, p: int) -> slice:
        """Flat-position slice of process ``p``'s operations."""
        return slice(self.proc_offsets[p], self.proc_offsets[p + 1])

    @property
    def addr_ops(self) -> list[array]:
        """Per-address flat positions, process-major program order.

        ``addr_ops[ai]`` lists every flat position whose operation
        touches ``addrs[ai]`` — the shared replacement for the ad-hoc
        address→ops maps the verifiers used to rebuild individually.
        """
        if self._addr_ops is None:
            per = [array("I") for _ in self.addrs]
            for i, ai in enumerate(self.addr_ids):
                per[ai].append(i)
            self._addr_ops = per
        return self._addr_ops

    def ops_at_id(self, ai: int) -> array:
        """Flat positions of the operations at address id ``ai``."""
        return self.addr_ops[ai]

    @property
    def uid_pos(self) -> dict[tuple[int, int], int]:
        """uid ``(proc, index)`` → flat position."""
        if self._uid_pos is None:
            self._uid_pos = {
                (self.procs[i], self.indices[i]): i
                for i in range(self.n_ops)
            }
        return self._uid_pos

    # -- conversion back --------------------------------------------------
    def to_execution(self) -> Execution:
        """Materialize an equal :class:`Execution` from the columns.

        Gappy program-order indices (sub-executions) are preserved, so
        the histories are rebuilt through ``object.__new__`` exactly
        like :meth:`Execution.restrict_to_address` does.
        """
        histories = []
        for p in range(self.n_procs):
            s = self.proc_slice(p)
            ops = tuple(self.op_at(i) for i in range(s.start, s.stop))
            ph = object.__new__(ProcessHistory)
            object.__setattr__(ph, "proc", p)
            object.__setattr__(ph, "operations", ops)
            histories.append(ph)
        initial = {
            a: self.values[vi]
            for a, vi, imp in zip(
                self.addrs, self.initial_ids, self.implicit_initial
            )
            if not imp
        }
        final = {
            a: self.values[vi]
            for a, vi in zip(self.addrs, self.final_ids)
            if vi >= 0
        }
        return Execution(histories, initial=initial, final=final)

    def op_at(self, i: int) -> Operation:
        """The :class:`Operation` at flat position ``i`` — the original
        object when the view came from an Execution, a freshly (and
        equally) materialized one when it was loaded from bytes."""
        if self._source_ops is not None:
            return self._source_ops[i]
        kind = KINDS_BY_CODE[self.kinds[i]]
        rv = self.read_vids[i]
        wv = self.write_vids[i]
        return Operation(
            kind,
            self.addrs[self.addr_ids[i]],
            self.procs[i],
            self.indices[i],
            value_read=self.values[rv] if rv >= 0 else None,
            value_written=self.values[wv] if wv >= 0 else None,
        )

    # -- address-restricted views -----------------------------------------
    def restrict_to_address_id(self, ai: int) -> Execution:
        """Single-address sub-execution for ``addrs[ai]`` (the engine's
        per-address VMC task unit), built from the column slices."""
        addr = self.addrs[ai]
        positions = self.addr_ops[ai]
        per_proc: list[list[Operation]] = [[] for _ in range(self.n_procs)]
        for i in positions:
            per_proc[self.procs[i]].append(self.op_at(i))
        histories = []
        for p in range(self.n_procs):
            ph = object.__new__(ProcessHistory)
            object.__setattr__(ph, "proc", p)
            object.__setattr__(ph, "operations", tuple(per_proc[p]))
            histories.append(ph)
        ex = object.__new__(Execution)
        ex.histories = tuple(histories)
        ex.initial = {addr: self.values[self.initial_ids[ai]]}
        fi = self.final_ids[ai]
        ex.final = {addr: self.values[fi]} if fi >= 0 else {}
        return ex

    def addr_index(self, addr: Address) -> int:
        """Address → id (cached dict; KeyError for unknown addresses)."""
        if self._addr_id_of is None:
            self._addr_id_of = {a: i for i, a in enumerate(self.addrs)}
        return self._addr_id_of[addr]

    # -- misc -------------------------------------------------------------
    def column_bytes(self) -> dict[str, bytes]:
        """Raw little-endian bytes of every per-op column (plus the
        offsets and constraint columns), the payload of the binary
        trace format."""
        import sys

        def raw(a: array) -> bytes:
            if sys.byteorder == "big":  # pragma: no cover
                a = array(a.typecode, a)
                a.byteswap()
            return a.tobytes()

        out = {name: raw(getattr(self, name)) for name in OP_COLUMNS}
        out["proc_offsets"] = raw(self.proc_offsets)
        out["initial_ids"] = raw(self.initial_ids)
        out["implicit_initial"] = raw(self.implicit_initial)
        out["final_ids"] = raw(self.final_ids)
        return out

    def __repr__(self) -> str:
        return (
            f"ColumnarTrace(ops={self.n_ops}, procs={self.n_procs}, "
            f"addrs={len(self.addrs)}, values={len(self.values)})"
        )


class ColumnarBuilder:
    """Append-friendly accumulator producing a :class:`ColumnarTrace`.

    :meth:`ColumnarTrace.from_execution` needs the whole object model up
    front; a *stream* — the framed binary format, the online monitor's
    retained window, a simulator feeding commits live — only ever sees
    one operation at a time, usually in **commit order** (interleaved
    across processes).  The builder interns addresses and values as they
    appear, appends one row per operation, and :meth:`build` reorders
    the rows process-major and re-interns the tables in the canonical
    first-appearance order, so the result is indistinguishable from
    ``ColumnarTrace.from_execution`` of the same trace (including the
    binary round-trip bytes).

    Appends are O(1); ``build()`` is one O(n) pass.  Program-order
    indices may be supplied explicitly (gappy sub-traces) or left to the
    per-process counters (``index=None``); within each process they must
    be strictly increasing — arrival order *is* program order.
    """

    __slots__ = (
        "_addr_id", "_value_id", "_addrs", "_values",
        "_kinds", "_procs", "_indices", "_addr_ids",
        "_read_vids", "_write_vids",
        "_next_index", "_initial", "_final",
    )

    def __init__(self) -> None:
        self._addr_id: dict[Hashable, int] = {}
        self._value_id: dict[Hashable, int] = {}
        self._addrs: list[Address] = []
        self._values: list[Value] = []
        self._kinds = array(COLUMN_TYPECODES["kinds"])
        self._procs = array(COLUMN_TYPECODES["procs"])
        self._indices = array(COLUMN_TYPECODES["indices"])
        self._addr_ids = array(COLUMN_TYPECODES["addr_ids"])
        self._read_vids = array(COLUMN_TYPECODES["read_vids"])
        self._write_vids = array(COLUMN_TYPECODES["write_vids"])
        self._next_index: dict[int, int] = {}
        self._initial: dict[int, int] = {}  # addr id -> value id
        self._final: dict[int, int] = {}

    # -- interning --------------------------------------------------------
    def intern_addr(self, a: Address) -> int:
        i = self._addr_id.get(a)
        if i is None:
            i = self._addr_id[a] = len(self._addrs)
            self._addrs.append(a)
        return i

    def intern_value(self, v: Value) -> int:
        i = self._value_id.get(v)
        if i is None:
            i = self._value_id[v] = len(self._values)
            self._values.append(v)
        return i

    @property
    def addrs(self) -> tuple[Address, ...]:
        return tuple(self._addrs)

    @property
    def values(self) -> tuple[Value, ...]:
        return tuple(self._values)

    @property
    def n_ops(self) -> int:
        return len(self._kinds)

    @property
    def n_procs(self) -> int:
        return max(self._next_index, default=-1) + 1

    # -- appends ----------------------------------------------------------
    def append(
        self,
        kind: OpKind,
        proc: int,
        addr: Address,
        value_read: Value = None,
        value_written: Value = None,
        index: int | None = None,
    ) -> int:
        """Append one operation in arrival order; returns its arrival
        position.  ``index=None`` assigns the next program-order index
        of ``proc``."""
        return self.append_codes(
            KIND_CODES[kind],
            proc,
            self.intern_addr(addr),
            self.intern_value(value_read) if kind.reads else -1,
            self.intern_value(value_written) if kind.writes else -1,
            index,
        )

    def append_op(self, op: Operation) -> int:
        """Append an existing :class:`Operation` (keeps its index)."""
        return self.append(
            op.kind, op.proc, op.addr,
            value_read=op.value_read,
            value_written=op.value_written,
            index=op.index,
        )

    def append_codes(
        self,
        kind_code: int,
        proc: int,
        addr_id: int,
        read_vid: int,
        write_vid: int,
        index: int | None = None,
    ) -> int:
        """Append one pre-interned row (the frame decoder's fast path)."""
        nxt = self._next_index.get(proc, 0)
        if index is None:
            index = nxt
        elif index < nxt:
            raise ValueError(
                f"program-order index {index} of P{proc} is not "
                f"increasing (next expected >= {nxt})"
            )
        self._next_index[proc] = index + 1
        pos = len(self._kinds)
        self._kinds.append(kind_code)
        self._procs.append(proc)
        self._indices.append(index)
        self._addr_ids.append(addr_id)
        self._read_vids.append(read_vid)
        self._write_vids.append(write_vid)
        return pos

    def set_initial(self, addr: Address, value: Value) -> None:
        self._initial[self.intern_addr(addr)] = self.intern_value(value)

    def set_final(self, addr: Address, value: Value) -> None:
        self._final[self.intern_addr(addr)] = self.intern_value(value)

    # -- finishing --------------------------------------------------------
    def build(self, n_procs: int | None = None) -> ColumnarTrace:
        """One O(n) pass: bucket rows process-major (stable, so arrival
        order within a process is preserved as program order), re-intern
        addresses and values in the canonical first-appearance order,
        and assemble the immutable view."""
        from repro.core.types import INITIAL

        if n_procs is None:
            n_procs = self.n_procs
        by_proc: list[list[int]] = [[] for _ in range(n_procs)]
        for pos, p in enumerate(self._procs):
            by_proc[p].append(pos)

        # Canonical tables: touched addresses in process-major
        # first-appearance order, then final-only, then initial-only —
        # matching ColumnarTrace.from_execution exactly.
        addr_map: dict[int, int] = {}
        value_map: dict[int, int] = {}
        addrs: list[Address] = []
        values: list[Value] = []

        def remap_addr(old: int) -> int:
            new = addr_map.get(old)
            if new is None:
                new = addr_map[old] = len(addrs)
                addrs.append(self._addrs[old])
            return new

        def remap_vid(old: int) -> int:
            if old < 0:
                return -1
            new = value_map.get(old)
            if new is None:
                new = value_map[old] = len(values)
                values.append(self._values[old])
            return new

        kinds = array(COLUMN_TYPECODES["kinds"])
        procs = array(COLUMN_TYPECODES["procs"])
        indices = array(COLUMN_TYPECODES["indices"])
        addr_ids = array(COLUMN_TYPECODES["addr_ids"])
        read_vids = array(COLUMN_TYPECODES["read_vids"])
        write_vids = array(COLUMN_TYPECODES["write_vids"])
        proc_offsets = array("Q", [0])
        for p in range(n_procs):
            for pos in by_proc[p]:
                kinds.append(self._kinds[pos])
                procs.append(p)
                indices.append(self._indices[pos])
                addr_ids.append(remap_addr(self._addr_ids[pos]))
                read_vids.append(remap_vid(self._read_vids[pos]))
                write_vids.append(remap_vid(self._write_vids[pos]))
            proc_offsets.append(len(kinds))
        n_touched = len(addrs)
        for old in self._final:
            remap_addr(old)
        n_constrained = len(addrs)
        for old in self._initial:
            remap_addr(old)

        initial_ids = array("i")
        implicit_initial = array("B")
        final_ids = array("i")
        inv_addr = {new: old for old, new in addr_map.items()}
        default_vid: int | None = None
        for new in range(len(addrs)):
            old = inv_addr[new]
            vi = self._initial.get(old)
            if vi is not None:
                initial_ids.append(remap_vid(vi))
                implicit_initial.append(0)
            else:
                if default_vid is None:
                    default_vid = remap_vid(self.intern_value(INITIAL))
                initial_ids.append(default_vid)
                implicit_initial.append(1)
            fi = self._final.get(old)
            final_ids.append(remap_vid(fi) if fi is not None else -1)

        return ColumnarTrace(
            kinds=kinds,
            procs=procs,
            indices=indices,
            addr_ids=addr_ids,
            read_vids=read_vids,
            write_vids=write_vids,
            proc_offsets=proc_offsets,
            addrs=tuple(addrs),
            values=tuple(values),
            n_touched=n_touched,
            n_constrained=n_constrained,
            initial_ids=initial_ids,
            implicit_initial=implicit_initial,
            final_ids=final_ids,
        )

    def to_execution(self, n_procs: int | None = None) -> Execution:
        """Materialize the accumulated trace as an :class:`Execution`
        carrying its columns as the cached view."""
        view = self.build(n_procs)
        ex = view.to_execution()
        view._source_ops = tuple(op for h in ex.histories for op in h)
        ex._columnar = view
        return ex


def columnar(execution: Execution) -> ColumnarTrace:
    """The cached columnar view of ``execution`` (module-level alias of
    :meth:`Execution.columnar` for call sites that prefer a function)."""
    return execution.columnar()
