"""VMC with one operation per process (Figure 5.3, row 1).

With a single operation per process there is no program order to
respect, so scheduling is pure value bookkeeping:

* **Simple reads/writes** — a coherent schedule exists iff every read's
  value is the initial value or is written by someone, and the required
  final value (when given) is writable last.  The witness groups all
  reads of ``d_I`` first, then emits each written value's write-group
  followed by its readers, placing the final value's group last.  The
  paper quotes O(n lg n) (sorting); with hashing this is O(n).

* **Read-modify-writes only** — each RMW ``RW(d_r, d_w)`` is an edge
  ``d_r -> d_w`` in a multigraph over values, and a coherent schedule is
  exactly an Eulerian path over all edges starting at ``d_I`` (and
  ending at ``d_F`` when specified).  Hierholzer's algorithm gives the
  witness in O(n); the paper quotes O(n^2).

Mixed instances (single-op processes where some are RMW and some are
simple) are handled by folding simple writes/reads into the Eulerian
construction: a simple write is an edge from a fresh "wildcard" source —
we instead fall back to the exact solver for those rare mixed cases via
the dispatcher, keeping this module's guarantees crisp.
"""

from __future__ import annotations

from collections import defaultdict, deque

from repro.core.types import (
    INITIAL,
    Address,
    Execution,
    OpKind,
    Operation,
    Value,
)
from repro.core.result import VerificationResult


def applicable(execution: Execution) -> bool:
    """True when every process history has at most one operation and all
    operations are simple reads/writes or all are RMWs."""
    if execution.max_ops_per_process() > 1:
        return False
    kinds = execution.kinds_used()
    if OpKind.RMW in kinds:
        return kinds <= {OpKind.RMW}
    return kinds <= {OpKind.READ, OpKind.WRITE}


def single_op_vmc(execution: Execution) -> VerificationResult:
    """Decide VMC for a single-address, ≤1-op-per-process execution."""
    addrs = execution.constrained_addresses()
    if len(addrs) > 1:
        raise ValueError(f"single-op VMC is per-address, got {addrs}")
    if not applicable(execution):
        raise ValueError("not a single-op-per-process execution")
    if execution.is_rmw_only():
        result = _rmw_eulerian(execution)
    else:
        result = _simple(execution)
    result.address = addrs[0] if addrs else None
    return result


def _simple(execution: Execution) -> VerificationResult:
    addrs = execution.constrained_addresses()
    addr = addrs[0] if addrs else None
    d_i = execution.initial_value(addr) if addr is not None else INITIAL
    d_f = execution.final_value(addr) if addr is not None else None

    writes_by_value: dict[Value, list[Operation]] = defaultdict(list)
    reads_by_value: dict[Value, list[Operation]] = defaultdict(list)
    for h in execution.histories:
        for op in h:
            if op.kind is OpKind.WRITE:
                writes_by_value[op.value_written].append(op)
            else:
                reads_by_value[op.value_read].append(op)

    # Feasibility: every read's value must be initial or written.
    for v, readers in reads_by_value.items():
        if v != d_i and v not in writes_by_value:
            return VerificationResult(
                holds=False,
                method="single-op",
                reason=f"{readers[0]} reads {v!r}, which is never written "
                f"and is not the initial value {d_i!r}",
            )
    # Final value: must be writable last (or equal d_I with no writes).
    if d_f is not None:
        if writes_by_value:
            if d_f not in writes_by_value:
                return VerificationResult(
                    holds=False,
                    method="single-op",
                    reason=f"required final value {d_f!r} is never written",
                )
        elif d_f != d_i:
            return VerificationResult(
                holds=False,
                method="single-op",
                reason=f"no writes but final value {d_f!r} != initial {d_i!r}",
            )

    # Build the witness: initial readers, then value groups, final last.
    schedule: list[Operation] = list(reads_by_value.get(d_i, []))
    values = list(writes_by_value)
    if d_f is not None and d_f in writes_by_value:
        values.remove(d_f)
        values.append(d_f)
    for v in values:
        schedule.extend(writes_by_value[v])
        if v != d_i:  # initial readers already scheduled up front
            schedule.extend(reads_by_value.get(v, []))
    return VerificationResult(holds=True, method="single-op", schedule=schedule)


def _rmw_eulerian(execution: Execution) -> VerificationResult:
    """Eulerian-path formulation for single-RMW-per-process instances."""
    addrs = execution.constrained_addresses()
    addr = addrs[0] if addrs else None
    d_i = execution.initial_value(addr) if addr is not None else INITIAL
    d_f = execution.final_value(addr) if addr is not None else None

    edges: list[Operation] = [op for h in execution.histories for op in h]
    if not edges:
        ok = d_f is None or d_f == d_i
        return VerificationResult(
            holds=ok,
            method="single-op-rmw",
            schedule=[] if ok else None,
            reason="" if ok else f"no operations but final value {d_f!r} "
            f"differs from initial {d_i!r}",
        )

    out_edges: dict[Value, deque[Operation]] = defaultdict(deque)
    degree: dict[Value, int] = defaultdict(int)  # out - in
    nodes: set[Value] = {d_i}
    for op in edges:
        out_edges[op.value_read].append(op)
        degree[op.value_read] += 1
        degree[op.value_written] -= 1
        nodes.add(op.value_read)
        nodes.add(op.value_written)

    # Eulerian path from d_i: deg(d_i) == +1 and one node at -1 (the
    # end), or all zero and the path is a circuit through d_i.
    pos = [v for v in nodes if degree[v] > 0]
    neg = [v for v in nodes if degree[v] < 0]
    end: Value
    if not pos and not neg:
        end = d_i
    elif (
        len(pos) == 1
        and len(neg) == 1
        and degree[pos[0]] == 1
        and degree[neg[0]] == -1
        and pos[0] == d_i
    ):
        end = neg[0]
    else:
        return VerificationResult(
            holds=False,
            method="single-op-rmw",
            reason=(
                "RMW value graph admits no Eulerian path from the initial "
                f"value {d_i!r} (degree imbalance at "
                f"{[v for v in pos + neg if v != d_i] or pos})"
            ),
        )
    if d_f is not None and end != d_f:
        return VerificationResult(
            holds=False,
            method="single-op-rmw",
            reason=f"every chaining of the RMWs ends at value {end!r}, "
            f"but final value {d_f!r} is required",
        )

    # Hierholzer's algorithm; each stack frame remembers the edge that
    # led to it so the Eulerian path can be emitted on backtrack.
    path: list[Operation] = []
    stack: list[tuple[Value, Operation | None]] = [(d_i, None)]
    while stack:
        v, e = stack[-1]
        if out_edges[v]:
            op = out_edges[v].popleft()
            stack.append((op.value_written, op))
        else:
            stack.pop()
            if e is not None:
                path.append(e)
    path.reverse()
    if len(path) != len(edges):
        # Disconnected edge set: some RMWs can never be reached from d_i.
        return VerificationResult(
            holds=False,
            method="single-op-rmw",
            reason="RMW value graph is disconnected from the initial value",
        )
    return VerificationResult(
        holds=True, method="single-op-rmw", schedule=path
    )
