"""Verification results returned by the public verifiers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.core.types import Address, Operation, schedule_str


#: The reasons an engine run may abandon a task without a verdict.
#: ``timeout`` — the per-task soft deadline expired mid-decision;
#: ``budget`` — the per-run wall-clock budget ran out before the task
#: started (or finished); ``crashed`` — the task's worker died (or kept
#: raising) through every retry and the task was quarantined;
#: ``uncertified`` — certification ran in strict mode and the verdict
#: either carried no certificate or carried one the trusted checker
#: rejected, so the verdict is withheld rather than trusted;
#: ``shutdown`` — a draining service abandoned the request (queued or
#: in flight past the drain grace) rather than answer after its
#: workers were told to stop — a sound refusal, never a guess.
UNKNOWN_REASONS = ("timeout", "budget", "crashed", "uncertified", "shutdown")


#: The certificate kinds a result may carry (see :class:`Certificate`).
CERTIFICATE_KINDS = ("witness", "cycle", "infeasible", "rup", "order")


@dataclass(frozen=True)
class Certificate:
    """A machine-checkable justification attached to a verdict.

    Defined here (not in :mod:`repro.engine.certify`, which validates
    certificates) so ``core`` producers can attach them without
    importing the engine.  ``kind`` is one of
    :data:`CERTIFICATE_KINDS`:

    ``witness``
        A HOLDS verdict; the certificate *is* the result's witness
        schedule (the paper's §4 NP yes-certificate) and the payload is
        unused — the checker replays the schedule op-by-op.
    ``cycle``
        A VIOLATED verdict refuted by a happens-before cycle.  Payload:
        ``(steps, cycle)`` where ``steps`` is an ordered tuple of
        ``(u_uid, v_uid, rule, aux)`` proof steps (rules ``po``/``rf``/
        ``init``/``fin``/``finr`` are axioms checkable directly against
        the trace; ``wr``/``fr`` are closure steps whose ``aux`` names
        the reads-from pair that forces them) and ``cycle`` is the uid
        tuple of the cycle the steps close.
    ``infeasible``
        A VIOLATED verdict from a value-level impossibility.  Payload is
        one claim tuple: ``("read-impossible", uid)`` — the operation
        reads a value never written to its address and distinct from the
        initial value; ``("final-vs-initial", addr)`` — no writes but
        final differs from initial; ``("final-unwritten", addr)`` — the
        required final value is never written.
    ``rup``
        A VIOLATED verdict refuted by SAT.  Payload is a DRAT-style
        proof (tuple of ``("a"|"d", lits)`` lines) that
        :func:`repro.sat.drat.check_rup` validates against a CNF
        re-derived from the raw trace.
    ``order``
        A VIOLATED verdict of the Section 5.2 *order-augmented*
        problem: the trace is unschedulable **under the supplied
        write-order** (the raw trace alone may well be coherent, so no
        trace-only refutation exists).  Payload is the uid tuple of the
        refuted order; the checker requires it to match the order the
        instance actually supplies, then re-decides the augmented
        instance with an independent gap-placement pass.

    Payloads are tuples of primitives so certificates pickle across the
    process pool and survive the result cache.
    """

    kind: str
    payload: Any = None

    def __post_init__(self) -> None:
        if self.kind not in CERTIFICATE_KINDS:
            raise ValueError(
                f"certificate kind {self.kind!r}; "
                f"expected one of {CERTIFICATE_KINDS}"
            )


@dataclass
class VerificationResult:
    """Outcome of a VMC/VSC/VSCC query.

    Truthy iff the property *provably* holds.  When it holds,
    ``schedule`` carries the witness (the NP certificate); when it does
    not, ``reason`` says why (which read cannot be served, which
    constraint graph cycled, or simply that the exhaustive search was
    completed without success).

    A result may also be **UNKNOWN** (``unknown=True``): the engine
    abandoned the decision — deadline expiry, run-budget exhaustion, or
    an unrecoverable worker crash — without learning the verdict either
    way.  Soundness under resource exhaustion demands this third
    outcome: an aborted search must never be reported as "violated"
    (nothing was refuted) nor as "holds" (nothing was proved).  Unknown
    results are falsy (they do not assert the property) but carry
    ``unknown_reason`` in :data:`UNKNOWN_REASONS`; callers that branch
    on violation must test ``result.violated``, not ``not result``.

    ``method`` names the algorithm that decided the instance —
    the dispatcher records its routing decision here so benchmarks and
    tests can assert the expected special case actually ran.
    """

    holds: bool
    method: str
    schedule: list[Operation] | None = None
    reason: str = ""
    address: Address | None = None
    stats: dict[str, Any] = field(default_factory=dict)
    per_address: dict[Address, "VerificationResult"] = field(default_factory=dict)
    #: Engine execution statistics (an :class:`repro.engine.EngineReport`)
    #: when the query went through the unified engine; None otherwise.
    report: Any = None
    #: True when the engine gave up without a verdict (see class docs).
    unknown: bool = False
    #: The verdict's :class:`Certificate` when a certified run produced
    #: one; None for uncertified runs and UNKNOWN results.
    certificate: Certificate | None = None

    @classmethod
    def make_unknown(
        cls, method: str, reason: str, detail: str = "",
        address: Address | None = None,
    ) -> "VerificationResult":
        """An UNKNOWN outcome: no verdict, with a recorded ``reason``
        from :data:`UNKNOWN_REASONS` (and optional free-form detail)."""
        if reason not in UNKNOWN_REASONS:
            raise ValueError(
                f"unknown reason {reason!r}; expected one of {UNKNOWN_REASONS}"
            )
        text = f"{reason}: {detail}" if detail else reason
        return cls(
            holds=False, method=method, reason=text, address=address,
            unknown=True,
        )

    @property
    def unknown_reason(self) -> str:
        """The :data:`UNKNOWN_REASONS` tag of an unknown result, else ''."""
        if not self.unknown:
            return ""
        return self.reason.split(":", 1)[0]

    @property
    def violated(self) -> bool:
        """Provably violated — decided false, not merely undecided."""
        return not self.holds and not self.unknown

    def __bool__(self) -> bool:
        return self.holds

    def witness_str(self) -> str:
        return schedule_str(self.schedule) if self.schedule else "<none>"

    def __repr__(self) -> str:
        verdict = (
            "UNKNOWN" if self.unknown else "holds" if self.holds else "violated"
        )
        loc = f", addr={self.address!r}" if self.address is not None else ""
        return f"VerificationResult({verdict}, method={self.method!r}{loc})"
