"""Verification results returned by the public verifiers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.core.types import Address, Operation, schedule_str


@dataclass
class VerificationResult:
    """Outcome of a VMC/VSC/VSCC query.

    Truthy iff the property holds.  When it holds, ``schedule`` carries
    the witness (the NP certificate); when it does not, ``reason`` says
    why (which read cannot be served, which constraint graph cycled, or
    simply that the exhaustive search was completed without success).

    ``method`` names the algorithm that decided the instance —
    the dispatcher records its routing decision here so benchmarks and
    tests can assert the expected special case actually ran.
    """

    holds: bool
    method: str
    schedule: list[Operation] | None = None
    reason: str = ""
    address: Address | None = None
    stats: dict[str, Any] = field(default_factory=dict)
    per_address: dict[Address, "VerificationResult"] = field(default_factory=dict)
    #: Engine execution statistics (an :class:`repro.engine.EngineReport`)
    #: when the query went through the unified engine; None otherwise.
    report: Any = None

    def __bool__(self) -> bool:
        return self.holds

    def witness_str(self) -> str:
        return schedule_str(self.schedule) if self.schedule else "<none>"

    def __repr__(self) -> str:
        verdict = "holds" if self.holds else "violated"
        loc = f", addr={self.address!r}" if self.address is not None else ""
        return f"VerificationResult({verdict}, method={self.method!r}{loc})"
