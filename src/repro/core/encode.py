"""CNF encodings of VMC and VSC.

The practical counterpart of the paper's NP-membership proof: a legal
schedule is a total order of the operations, so we encode

* an ordering variable ``before[i][j]`` per operation pair (with
  ``before[j][i] = ¬before[i][j]``), totality implicit;
* transitivity clauses over all ordered triples (O(n³));
* unit clauses fixing program order;
* per read, a *reads-from* selector over the candidate writes of the
  same address and value: the chosen write precedes the read and every
  other same-address write lies outside the (write, read) interval;
  reading the initial value means every same-address write follows;
* per address with a required final value, a *last-write* selector.

An RMW participates as both: its write component is a candidate for
other reads; its read component constrains its own position.  Atomicity
is automatic — an RMW is a single node of the order.

This encoding is what "verifying coherence with a SAT solver" looks like
in practice, and the benchmark harness uses it to contrast CDCL against
exhaustive interleaving search on the NP-complete cells of Figure 5.3.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.core.columnar import KINDS_BY_CODE
from repro.core.types import (
    Address,
    Execution,
    Operation,
)
from repro.core.result import Certificate, VerificationResult
from repro.sat import solve
from repro.sat.cnf import CNF
from repro.util.control import Cancelled, StopCheck

#: Above this clause count the pre-solve :func:`repro.sat.simplify`
#: pass is skipped — scanning every clause per propagated unit would
#: cost more than it saves on the O(n^3)-clause encodings; the hints
#: then reach CDCL as root assumptions instead.
SIMPLIFY_CLAUSE_LIMIT = 20_000


@dataclass
class ScheduleEncoding:
    """A CNF plus the mapping back from models to schedules."""

    cnf: CNF
    ops: list[Operation]
    before: dict[tuple[int, int], int]  # (i, j) i<j -> var: op_i before op_j
    feasible: bool = True  # False when a read has no possible source
    infeasible_reason: str = ""
    #: Structured counterpart of ``infeasible_reason``: a claim tuple a
    #: trusted checker can re-verify by scanning the raw trace (see
    #: :class:`repro.core.result.Certificate`, kind ``infeasible``).
    infeasible_claim: tuple | None = None
    #: Pre-pass order hints as ``before`` literals (filled instead of
    #: unit clauses when ``hints_as_units=False``); the CDCL path feeds
    #: them to the preprocessor / solver as assumptions.
    hint_lits: list[int] = field(default_factory=list)

    def lit_before(self, i: int, j: int) -> int:
        """Literal asserting ops[i] precedes ops[j]."""
        if i == j:
            raise ValueError("an operation does not precede itself")
        if i < j:
            return self.before[(i, j)]
        return -self.before[(j, i)]

    def decode(self, model: dict[int, bool]) -> list[Operation]:
        """Turn a satisfying assignment into the witness schedule."""
        n = len(self.ops)
        rank = [0] * n
        for i in range(n):
            for j in range(n):
                if i != j:
                    lit = self.lit_before(j, i)
                    val = model.get(abs(lit), False)
                    if (lit > 0) == val:
                        rank[i] += 1
        order = sorted(range(n), key=lambda i: rank[i])
        return [self.ops[i] for i in order]


def encode_legal_schedule(
    execution: Execution,
    order_hints: Sequence[tuple[tuple[int, int], tuple[int, int]]] | None = None,
    hints_as_units: bool = True,
    should_stop: StopCheck = None,
) -> ScheduleEncoding:
    """Encode "a legal (per-address value-correct) schedule exists".

    For a single-address execution this is exactly VMC; for a
    multi-address execution it is VSC.  ``order_hints`` are (uid, uid)
    pairs known to hold in every legal schedule (the engine pre-pass's
    inferred edges); with ``hints_as_units`` they become unit clauses,
    which cannot change satisfiability but let unit propagation fix
    ordering variables before the solver searches; otherwise they are
    collected into ``enc.hint_lits`` for the caller to assert as solver
    assumptions.  ``should_stop`` aborts the O(n^3) clause generation
    (the encoding itself is the SAT leg's startup cost, so the
    portfolio must be able to cancel it too).
    """
    ops = [op for h in execution.histories for op in h if not op.kind.is_sync]
    n = len(ops)
    cnf = CNF()
    before: dict[tuple[int, int], int] = {}
    for i in range(n):
        for j in range(i + 1, n):
            before[(i, j)] = cnf.new_var()

    enc = ScheduleEncoding(cnf=cnf, ops=ops, before=before)

    # Transitivity: before(i,j) & before(j,k) -> before(i,k).
    for i in range(n):
        if should_stop is not None and should_stop():
            raise Cancelled("sat encoding", i * n * n)
        for j in range(n):
            if j == i:
                continue
            for k in range(n):
                if k == i or k == j:
                    continue
                cnf.add_clause(
                    [
                        -enc.lit_before(i, j),
                        -enc.lit_before(j, k),
                        enc.lit_before(i, k),
                    ]
                )

    # Program order.
    index_of = {op.uid: i for i, op in enumerate(ops)}
    for h in execution.histories:
        hist_ops = [op for op in h if not op.kind.is_sync]
        for o1, o2 in zip(hist_ops, hist_ops[1:]):
            cnf.add_clause([enc.lit_before(index_of[o1.uid], index_of[o2.uid])])

    # Pre-pass ordering hints (implied by the constraints below; units
    # only help propagation).
    if order_hints:
        for u, v in order_hints:
            iu, iv = index_of.get(u), index_of.get(v)
            if iu is not None and iv is not None and iu != iv:
                if hints_as_units:
                    cnf.add_clause([enc.lit_before(iu, iv)])
                else:
                    enc.hint_lits.append(enc.lit_before(iu, iv))

    # Reads-from, over the columnar view's per-address slices.  Value
    # comparisons become vid comparisons (interning uses the same
    # hash/== the old object walk applied); diagnostics still quote the
    # caller's own objects, not the interned representatives.
    view = execution.columnar()
    col_rv = view.read_vids
    col_wv = view.write_vids
    # Flat column position -> encoding index (sync ops are stripped
    # from the encoding, so positions shift).
    pos2enc = []
    nxt = 0
    for pos in range(view.n_ops):
        if KINDS_BY_CODE[view.kinds[pos]].is_sync:
            pos2enc.append(-1)
        else:
            pos2enc.append(nxt)
            nxt += 1
    for ai in range(view.n_constrained):
        a = view.addrs[ai]
        positions = [p for p in view.ops_at_id(ai) if pos2enc[p] >= 0]
        writes = [pos2enc[p] for p in positions if col_wv[p] >= 0]
        wvid = {pos2enc[p]: col_wv[p] for p in positions if col_wv[p] >= 0}
        d_i = execution.initial_value(a)
        d_i_vid = view.initial_ids[ai]
        for p in positions:
            if col_rv[p] < 0:
                continue
            r = pos2enc[p]
            want_vid = col_rv[p]
            want = ops[r].value_read
            candidates = [
                w for w in writes if w != r and wvid[w] == want_vid
            ]
            selectors: list[int] = []
            if want_vid == d_i_vid:
                s_init = cnf.new_var()
                selectors.append(s_init)
                # Reading the initial value: every write follows r.
                for w in writes:
                    if w != r:
                        cnf.add_clause([-s_init, enc.lit_before(r, w)])
                    else:
                        # An RMW reading the initial value is fine; its own
                        # write is at the same position (not "before").
                        pass
            for w in candidates:
                s = cnf.new_var()
                selectors.append(s)
                cnf.add_clause([-s, enc.lit_before(w, r)])
                for w2 in writes:
                    if w2 == w or w2 == r:
                        continue
                    # No write strictly between w and r.
                    cnf.add_clause(
                        [-s, enc.lit_before(w2, w), enc.lit_before(r, w2)]
                    )
            if not selectors:
                enc.feasible = False
                enc.infeasible_reason = (
                    f"{ops[r]} reads {want!r}, which is never written to "
                    f"{a!r} and is not its initial value {d_i!r}"
                )
                enc.infeasible_claim = ("read-impossible", ops[r].uid)
                cnf.add_clause([])  # formula is UNSAT
                continue
            cnf.add_clause(selectors)  # at least one source
        # Final value.
        d_f = execution.final_value(a)
        if d_f is not None:
            d_f_vid = view.final_ids[ai]
            finals = [w for w in writes if wvid[w] == d_f_vid]
            if not writes:
                if d_f != d_i:
                    enc.feasible = False
                    enc.infeasible_reason = (
                        f"no writes to {a!r} but final {d_f!r} != initial"
                    )
                    enc.infeasible_claim = ("final-vs-initial", a)
                    cnf.add_clause([])
            elif not finals:
                enc.feasible = False
                enc.infeasible_reason = (
                    f"required final value {d_f!r} of {a!r} is never written"
                )
                enc.infeasible_claim = ("final-unwritten", a)
                cnf.add_clause([])
            else:
                selectors = []
                for f in finals:
                    s = cnf.new_var()
                    selectors.append(s)
                    for w in writes:
                        if w != f:
                            cnf.add_clause([-s, enc.lit_before(w, f)])
                cnf.add_clause(selectors)
    return enc


def sat_vmc(
    execution: Execution,
    addr: Address | None = None,
    solver: str = "cdcl",
    max_conflicts: int | None = None,
    order_hints: Sequence[tuple[tuple[int, int], tuple[int, int]]] | None = None,
    should_stop: StopCheck = None,
    certify: bool = False,
) -> VerificationResult:
    """Decide VMC by CNF encoding + SAT solving."""
    if addr is not None:
        execution = execution.restrict_to_address(addr)
    addrs = execution.addresses()
    if len(addrs) > 1:
        raise ValueError(f"VMC is per-address; execution touches {addrs}")
    result = _solve_encoding(
        execution, solver, max_conflicts, order_hints, should_stop, certify
    )
    result.address = addrs[0] if addrs else addr
    return result


def sat_vsc(
    execution: Execution,
    solver: str = "cdcl",
    max_conflicts: int | None = None,
    order_hints: Sequence[tuple[tuple[int, int], tuple[int, int]]] | None = None,
    should_stop: StopCheck = None,
    certify: bool = False,
) -> VerificationResult:
    """Decide VSC by CNF encoding + SAT solving."""
    return _solve_encoding(
        execution, solver, max_conflicts, order_hints, should_stop, certify
    )


def _solve_encoding(
    execution: Execution,
    solver: str,
    max_conflicts: int | None,
    order_hints: Sequence[tuple[tuple[int, int], tuple[int, int]]] | None = None,
    should_stop: StopCheck = None,
    certify: bool = False,
) -> VerificationResult:
    """Encode, preprocess, solve, decode.

    The CDCL route gets the constant-factor treatment the portfolio's
    SAT leg needs: small formulas run the :mod:`repro.sat.simplify`
    unit/pure-literal pass seeded with the pre-pass order hints
    (everything the preprocessor forces never reaches the solver);
    formulas past :data:`SIMPLIFY_CLAUSE_LIMIT` skip preprocessing and
    assert the hints as root-level solver assumptions instead.  Other
    solvers keep the plain encoding with hints as unit clauses.

    With ``certify`` the CDCL route instead solves the *plain* encoding
    (no hints, no preprocessing: a refutation must be checkable against
    a CNF an auditor re-derives from the trace alone, and pre-pass
    hints are untrusted solver-side input) with DRAT proof logging, and
    an UNSAT verdict carries the proof as a ``rup`` certificate.
    Infeasible encodings carry the structured claim instead; a SAT
    verdict's witness schedule is its own certificate.
    """
    use_cdcl = solver == "cdcl"
    if certify:
        order_hints = None
    enc = encode_legal_schedule(
        execution,
        order_hints=order_hints,
        hints_as_units=not use_cdcl,
        should_stop=should_stop,
    )
    stats: dict = {"vars": enc.cnf.num_vars, "clauses": enc.cnf.num_clauses}
    if not enc.feasible:
        return VerificationResult(
            holds=False,
            method=f"sat-{solver}",
            reason=enc.infeasible_reason,
            stats=stats,
            certificate=(
                Certificate("infeasible", enc.infeasible_claim)
                if certify else None
            ),
        )
    proof = None
    if use_cdcl:
        from repro.sat.cdcl import solve_cdcl

        if certify:
            from repro.sat.drat import ProofLog

            proof = ProofLog()
            model = solve_cdcl(
                enc.cnf,
                max_conflicts=max_conflicts,
                should_stop=should_stop,
                proof=proof,
            )
        elif enc.cnf.num_clauses <= SIMPLIFY_CLAUSE_LIMIT:
            from repro.sat.simplify import simplify

            pre = simplify(enc.cnf, assume=enc.hint_lits)
            stats["pp_forced"] = len(pre.forced)
            stats["pp_clauses"] = pre.cnf.num_clauses
            if pre.unsat:
                return VerificationResult(
                    holds=False,
                    method=f"sat-{solver}",
                    reason=(
                        "the CNF encoding of a legal schedule is "
                        "unsatisfiable (refuted by unit propagation)"
                    ),
                    stats=stats,
                )
            model = pre.extend_model(
                solve_cdcl(
                    pre.cnf,
                    max_conflicts=max_conflicts,
                    should_stop=should_stop,
                )
            )
        else:
            model = solve_cdcl(
                enc.cnf,
                max_conflicts=max_conflicts,
                should_stop=should_stop,
                assumptions=enc.hint_lits,
            )
    else:
        model = solve(enc.cnf, solver=solver)
    if model is None:
        certificate = None
        if proof is not None:
            stats["proof_lines"] = len(proof)
            certificate = Certificate("rup", tuple(proof.lines))
        return VerificationResult(
            holds=False,
            method=f"sat-{solver}",
            reason="the CNF encoding of a legal schedule is unsatisfiable",
            stats=stats,
            certificate=certificate,
        )
    schedule = enc.decode(model)
    # Sync ops were stripped for the encoding; reinsert them respecting
    # program order (they carry no value constraints).
    schedule = _reinsert_sync(execution, schedule)
    return VerificationResult(
        holds=True,
        method=f"sat-{solver}",
        schedule=schedule,
        stats=stats,
        certificate=Certificate("witness") if certify else None,
    )


def _reinsert_sync(
    execution: Execution, schedule: list[Operation]
) -> list[Operation]:
    """Weave ACQUIRE/RELEASE ops back into a schedule of data ops."""
    if not any(op.kind.is_sync for op in execution.all_ops()):
        return schedule
    out: list[Operation] = []
    cursors = {h.proc: 0 for h in execution.histories}

    def flush_until(proc: int, stop_index: int | None) -> None:
        h = execution.histories[proc]
        i = cursors[proc]
        while i < len(h) and (stop_index is None or h[i].index < stop_index):
            if h[i].kind.is_sync:
                out.append(h[i])
                i += 1
            elif stop_index is not None and h[i].index < stop_index:
                # A data op that should already have been emitted; skip
                # cursor past it (it is in `schedule`).
                i += 1
            else:
                break
        cursors[proc] = i

    for op in schedule:
        flush_until(op.proc, op.index)
        out.append(op)
        cursors[op.proc] = max(cursors[op.proc], op.index + 1)
    for h in execution.histories:
        flush_until(h.proc, None)
    return out
