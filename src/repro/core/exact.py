"""Exact decision procedures: memoized frontier search.

One search engine decides both VMC (single address) and VSC (all
addresses).  A *state* is the vector of per-process positions plus the
current value of each address; from a state, any process may execute its
next operation if the operation's read component matches the current
value.  Depth-first search with memoization of failed states visits each
state at most once.

This is simultaneously:

* the general exact solver (worst-case exponential — VMC/VSC are
  NP-complete, Sections 4 and 6), and
* the paper's polynomial algorithm for constantly many processes
  (Figure 5.3 rows "Constant Processes"): with ``k`` processes,
  ``n`` operations and ``c`` addresses there are at most
  ``O(n^k)`` position vectors, and the current values are a function of
  the positions' history only through the last writers, giving the
  ``O(k n^k)``/``O(n^k)`` bounds of Gibbons & Korach specialised in
  Section 5.1.

``max_states`` caps the search so benchmark harnesses can demonstrate
exponential blow-up without hanging; exceeding it raises
:class:`SearchBudgetExceeded`.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.types import (
    INITIAL,
    Address,
    Execution,
    Operation,
    Value,
)
from repro.core.result import VerificationResult


class SearchBudgetExceeded(RuntimeError):
    """The exact search exceeded its state budget before deciding."""

    def __init__(self, states: int):
        super().__init__(f"exact search exceeded budget after {states} states")
        self.states = states


def exact_vmc(
    execution: Execution,
    addr: Address | None = None,
    max_states: int | None = None,
    order_hints: Sequence[tuple[tuple[int, int], tuple[int, int]]] | None = None,
) -> VerificationResult:
    """Decide VMC for a single-address execution by exhaustive search.

    ``order_hints`` are (uid, uid) pairs known to hold in every coherent
    schedule (the engine pre-pass's inferred edges); the search prunes
    states that violate them, which never changes the verdict.
    """
    if addr is not None:
        execution = execution.restrict_to_address(addr)
    addrs = execution.constrained_addresses()
    if len(addrs) > 1:
        raise ValueError(
            f"VMC is per-address; execution touches {addrs}, pass addr="
        )
    result = _frontier_search(
        execution, max_states=max_states, order_hints=order_hints
    )
    result.address = addrs[0] if addrs else addr
    return result


def exact_vsc(
    execution: Execution,
    max_states: int | None = None,
    order_hints: Sequence[tuple[tuple[int, int], tuple[int, int]]] | None = None,
) -> VerificationResult:
    """Decide VSC (all addresses simultaneously) by exhaustive search."""
    return _frontier_search(
        execution, max_states=max_states, order_hints=order_hints
    )


def _frontier_search(
    execution: Execution,
    max_states: int | None,
    order_hints: Sequence[tuple[tuple[int, int], tuple[int, int]]] | None = None,
) -> VerificationResult:
    histories: Sequence[Sequence[Operation]] = [
        h.operations for h in execution.histories
    ]
    k = len(histories)
    lengths = [len(h) for h in histories]
    total = sum(lengths)

    # Address/value bookkeeping uses dense address indices for speed.
    # Final-only addresses are included so an unreachable d_F is caught.
    addr_list = execution.constrained_addresses()
    addr_idx = {a: i for i, a in enumerate(addr_list)}
    initial_vec = tuple(execution.initial_value(a) for a in addr_list)
    final_req: list[Value | None] = [execution.final_value(a) for a in addr_list]

    # Necessary-order hints: op at (p, i) may only execute once every
    # listed (q, j) predecessor has (positions[q] > j).  Sound pruning:
    # the hinted edges hold in every legal schedule, so no witness is
    # lost by refusing to violate them.
    required: dict[tuple[int, int], list[tuple[int, int]]] = {}
    if order_hints:
        pos_of: dict[tuple[int, int], tuple[int, int]] = {}
        for p, h in enumerate(histories):
            for i, op in enumerate(h):
                pos_of[op.uid] = (p, i)
        for u, v in order_hints:
            pu, pv = pos_of.get(u), pos_of.get(v)
            if pu is not None and pv is not None and pu != pv:
                required.setdefault(pv, []).append(pu)

    # Iterative DFS.  Stack entries: (positions, values, chosen-op trail
    # index).  We memoize *visited* states; since the search is a pure
    # reachability question on a DAG of states (positions only grow),
    # visited == failed once we pop past them.
    start = (tuple([0] * k), initial_vec)
    visited: set[tuple[tuple[int, ...], tuple[Value, ...]]] = set()
    # Each stack frame: (state, next process to try).  `choice_trail`
    # records the op chosen when a frame was entered (for the witness).
    stack: list[tuple[tuple[tuple[int, ...], tuple[Value, ...]], int]] = [(start, 0)]
    trail: list[Operation] = []
    states_expanded = 0

    def final_ok(values: tuple[Value, ...]) -> bool:
        return all(
            req is None or values[i] == req for i, req in enumerate(final_req)
        )

    if total == 0:
        ok = final_ok(initial_vec)
        return VerificationResult(
            holds=ok,
            method="exact",
            schedule=[] if ok else None,
            reason="" if ok else "empty execution cannot reach required final values",
            stats={"states": 0},
        )

    visited.add(start)
    while stack:
        (positions, values), proc = stack[-1]
        if len(trail) == total:
            if final_ok(values):
                return VerificationResult(
                    holds=True,
                    method="exact",
                    schedule=list(trail),
                    stats={"states": states_expanded},
                )
            # Final values wrong: dead end, backtrack.
            stack.pop()
            if trail:
                trail.pop()
            continue
        advanced = False
        while proc < k:
            stack[-1] = ((positions, values), proc + 1)
            p = proc
            proc += 1
            if positions[p] >= lengths[p]:
                continue
            if required:
                reqs = required.get((p, positions[p]))
                if reqs is not None and any(
                    positions[q] <= j for q, j in reqs
                ):
                    continue
            op = histories[p][positions[p]]
            if op.kind.is_sync:
                new_values = values
            else:
                ai = addr_idx[op.addr]
                if op.kind.reads and op.value_read != values[ai]:
                    continue
                if op.kind.writes:
                    new_values = (
                        values[:ai] + (op.value_written,) + values[ai + 1 :]
                    )
                else:
                    new_values = values
            new_positions = (
                positions[:p] + (positions[p] + 1,) + positions[p + 1 :]
            )
            new_state = (new_positions, new_values)
            if new_state in visited:
                continue
            visited.add(new_state)
            states_expanded += 1
            if max_states is not None and states_expanded > max_states:
                raise SearchBudgetExceeded(states_expanded)
            stack.append((new_state, 0))
            trail.append(op)
            advanced = True
            break
        if not advanced and stack and stack[-1][1] >= k:
            stack.pop()
            if trail:
                trail.pop()

    # Search space exhausted without completing a schedule.
    return VerificationResult(
        holds=False,
        method="exact",
        reason=(
            "exhaustive search of all interleavings found no "
            "coherent/consistent schedule"
        ),
        stats={"states": states_expanded},
    )
