"""Exact decision procedures: memoized frontier search.

One search engine decides both VMC (single address) and VSC (all
addresses).  A *state* is the vector of per-process positions plus the
current value of each address; from a state, any process may execute its
next operation if the operation's read component matches the current
value.  Depth-first search with memoization of failed states visits each
state at most once.

This is simultaneously:

* the general exact solver (worst-case exponential — VMC/VSC are
  NP-complete, Sections 4 and 6), and
* the paper's polynomial algorithm for constantly many processes
  (Figure 5.3 rows "Constant Processes"): with ``k`` processes,
  ``n`` operations and ``c`` addresses there are at most
  ``O(n^k)`` position vectors, and the current values are a function of
  the positions' history only through the last writers, giving the
  ``O(k n^k)``/``O(n^k)`` bounds of Gibbons & Korach specialised in
  Section 5.1.

Hot-path engineering (the search is one leg of the engine's portfolio
race, so its constant factors matter):

* **packed states** — positions and values are mixed-radix-encoded
  into a single integer, so the memo set holds small ints instead of
  nested tuples (cheaper hashing, ~3x less memory);
* **read commitment** — an enabled operation that cannot change the
  store (a value-matching read, or a sync op) is executed immediately
  and never backtracked over.  Sound by an exchange argument: such an
  operation can be moved to the front of any legal completion without
  affecting any other operation's enabledness, so exploring the other
  branches cannot find a witness this branch misses.  On
  reads-from-chained instances this collapses the branching factor to
  the write interleavings only;
* **cooperative cancellation** — ``should_stop`` (see
  :mod:`repro.util.control`) is polled every
  :data:`~repro.util.control.CHECK_INTERVAL` loop steps; the portfolio
  executor uses it to abort the losing leg.

``max_states`` caps the search so benchmark harnesses can demonstrate
exponential blow-up without hanging; exceeding it raises
:class:`SearchBudgetExceeded` (which the engine's exact backend treats
as "escalate to SAT", never as a task error).
"""

from __future__ import annotations

from typing import Sequence

from repro.core.types import (
    Address,
    Execution,
    OpKind,
    Operation,
)
from repro.core.result import VerificationResult
from repro.util.control import StopCheck, poll


class SearchBudgetExceeded(RuntimeError):
    """The exact search exceeded its state budget before deciding."""

    def __init__(self, states: int):
        super().__init__(f"exact search exceeded budget after {states} states")
        self.states = states


def exact_vmc(
    execution: Execution,
    addr: Address | None = None,
    max_states: int | None = None,
    order_hints: Sequence[tuple[tuple[int, int], tuple[int, int]]] | None = None,
    should_stop: StopCheck = None,
) -> VerificationResult:
    """Decide VMC for a single-address execution by exhaustive search.

    ``order_hints`` are (uid, uid) pairs known to hold in every coherent
    schedule (the engine pre-pass's inferred edges); the search prunes
    states that violate them, which never changes the verdict.
    ``should_stop`` is polled periodically; when it fires the search
    raises :class:`repro.util.control.Cancelled`.
    """
    if addr is not None:
        execution = execution.restrict_to_address(addr)
    addrs = execution.constrained_addresses()
    if len(addrs) > 1:
        raise ValueError(
            f"VMC is per-address; execution touches {addrs}, pass addr="
        )
    result = _frontier_search(
        execution,
        max_states=max_states,
        order_hints=order_hints,
        should_stop=should_stop,
    )
    result.address = addrs[0] if addrs else addr
    return result


def exact_vsc(
    execution: Execution,
    max_states: int | None = None,
    order_hints: Sequence[tuple[tuple[int, int], tuple[int, int]]] | None = None,
    should_stop: StopCheck = None,
) -> VerificationResult:
    """Decide VSC (all addresses simultaneously) by exhaustive search."""
    return _frontier_search(
        execution,
        max_states=max_states,
        order_hints=order_hints,
        should_stop=should_stop,
    )


#: Sentinel value index for a read whose value is never written and is
#: not the initial value — such a read can never execute.
_IMPOSSIBLE = -1


def _frontier_search(
    execution: Execution,
    max_states: int | None,
    order_hints: Sequence[tuple[tuple[int, int], tuple[int, int]]] | None = None,
    should_stop: StopCheck = None,
) -> VerificationResult:
    histories: Sequence[Sequence[Operation]] = [
        h.operations for h in execution.histories
    ]
    k = len(histories)
    lengths = [len(h) for h in histories]
    total = sum(lengths)

    # Address/value bookkeeping uses the columnar view's interned ids.
    # Final-only addresses are included so an unreachable d_F is caught
    # (the view's first ``n_constrained`` address ids are exactly
    # ``constrained_addresses()``, in the same order).
    view = execution.columnar()
    n_addrs = view.n_constrained
    col_kinds = view.kinds
    col_addr = view.addr_ids
    col_rv = view.read_vids
    col_wv = view.write_vids
    # Per address: the values it can ever hold (initial + every written
    # value), densely numbered for the packed-state encoding.  Keyed by
    # interned value id — interning uses the same hash/== semantics the
    # old value-keyed dicts did.
    val_ids: list[dict[int, int]] = [
        {view.initial_ids[ai]: 0} for ai in range(n_addrs)
    ]
    for pos in range(view.n_ops):
        wv = col_wv[pos]
        if wv >= 0:
            ids = val_ids[col_addr[pos]]
            ids.setdefault(wv, len(ids))

    # Mixed-radix strides: a state packs into the single integer
    #   (sum_p positions[p] * pos_stride[p]) * val_space
    #   + sum_a value_idx[a] * val_stride[a]
    pos_stride: list[int] = []
    acc = 1
    for ln in lengths:
        pos_stride.append(acc)
        acc *= ln + 1
    val_stride: list[int] = []
    val_space = 1
    for ids in val_ids:
        val_stride.append(val_space)
        val_space *= len(ids)

    initial_vals = tuple(0 for _ in range(n_addrs))  # initial has idx 0
    final_req: list[int | None] = []
    for ai in range(n_addrs):
        fi = view.final_ids[ai]
        if fi < 0:
            final_req.append(None)
        else:
            final_req.append(val_ids[ai].get(fi, _IMPOSSIBLE))
    check_final = [
        (i, req) for i, req in enumerate(final_req) if req is not None
    ]

    # Per-op dense info: (op, addr_idx, is_sync, reads, writes,
    # read_val_idx, write_val_idx, committable), packed straight from
    # the column slices.  A committable op cannot change the store, so
    # once enabled it is executed eagerly.
    from repro.core.columnar import KIND_CODES

    _READ = KIND_CODES[OpKind.READ]
    _WRITE = KIND_CODES[OpKind.WRITE]
    _RMW = KIND_CODES[OpKind.RMW]
    op_info: list[list[tuple]] = []
    for p in range(k):
        row = []
        s = view.proc_slice(p)
        for pos in range(s.start, s.stop):
            op = view.op_at(pos)
            code = col_kinds[pos]
            if code != _READ and code != _WRITE and code != _RMW:
                row.append((op, -1, True, False, False, _IMPOSSIBLE, 0, True))
                continue
            ai = col_addr[pos]
            reads = code != _WRITE
            writes = code != _READ
            rv = (
                val_ids[ai].get(col_rv[pos], _IMPOSSIBLE)
                if reads
                else _IMPOSSIBLE
            )
            wv = val_ids[ai][col_wv[pos]] if writes else 0
            row.append((op, ai, False, reads, writes, rv, wv, reads and not writes))
        op_info.append(row)

    # Necessary-order hints: op at (p, i) may only execute once every
    # listed (q, j) predecessor has (positions[q] > j).  Sound pruning:
    # the hinted edges hold in every legal schedule, so no witness is
    # lost by refusing to violate them.
    required: dict[tuple[int, int], list[tuple[int, int]]] = {}
    if order_hints:
        pos_of: dict[tuple[int, int], tuple[int, int]] = {}
        for p, h in enumerate(histories):
            for i, op in enumerate(h):
                pos_of[op.uid] = (p, i)
        for u, v in order_hints:
            pu, pv = pos_of.get(u), pos_of.get(v)
            if pu is not None and pv is not None and pu != pv:
                required.setdefault(pv, []).append(pu)

    def final_ok(values: tuple[int, ...]) -> bool:
        return all(values[i] == req for i, req in check_final)

    if total == 0:
        ok = final_ok(initial_vals)
        return VerificationResult(
            holds=ok,
            method="exact",
            schedule=[] if ok else None,
            reason="" if ok else "empty execution cannot reach required final values",
            stats={"states": 0},
        )

    # Iterative DFS over packed states.  Each frame:
    # [positions, values, pos_code, val_code, candidates, next_cand].
    # ``candidates`` (built lazily on first expansion) is the list of
    # processes whose next op is enabled in this state — or a single
    # committed op when a store-neutral op is enabled.  We memoize
    # *visited* states; the search is a pure reachability question on a
    # DAG of states (positions only grow), so visited == failed once we
    # pop past them.
    start_packed = 0  # all positions 0, all values initial (idx 0)
    visited: set[int] = {start_packed}
    stack: list[list] = [[(0,) * k, initial_vals, 0, 0, None, 0]]
    trail: list[Operation] = []
    states_expanded = 0
    steps = 0

    while stack:
        steps += 1
        poll(should_stop, steps, "exact search", states_expanded)
        frame = stack[-1]
        positions, values = frame[0], frame[1]
        if len(trail) == total:
            if final_ok(values):
                return VerificationResult(
                    holds=True,
                    method="exact",
                    schedule=list(trail),
                    stats={"states": states_expanded},
                )
            # Final values wrong: dead end, backtrack.
            stack.pop()
            if trail:
                trail.pop()
            continue
        cands = frame[4]
        if cands is None:
            cands = []
            for p in range(k):
                i = positions[p]
                if i >= lengths[p]:
                    continue
                if required:
                    reqs = required.get((p, i))
                    if reqs is not None and any(
                        positions[q] <= j for q, j in reqs
                    ):
                        continue
                info = op_info[p][i]
                # info: (op, ai, sync, reads, writes, rv, wv, committable)
                if info[3] and values[info[1]] != info[5]:
                    continue  # read of a value the address does not hold
                if info[7]:
                    # Store-neutral op enabled: commit to it, explore
                    # nothing else from this state (exchange argument).
                    cands = [p]
                    break
                cands.append(p)
            frame[4] = cands
        advanced = False
        while frame[5] < len(cands):
            p = cands[frame[5]]
            frame[5] += 1
            info = op_info[p][positions[p]]
            op, ai = info[0], info[1]
            new_pos_code = frame[2] + pos_stride[p]
            if info[4]:  # writes
                new_values = values[:ai] + (info[6],) + values[ai + 1 :]
                new_val_code = frame[3] + (info[6] - values[ai]) * val_stride[ai]
            else:
                new_values = values
                new_val_code = frame[3]
            packed = new_pos_code * val_space + new_val_code
            if packed in visited:
                continue
            visited.add(packed)
            states_expanded += 1
            if max_states is not None and states_expanded > max_states:
                raise SearchBudgetExceeded(states_expanded)
            new_positions = (
                positions[:p] + (positions[p] + 1,) + positions[p + 1 :]
            )
            stack.append(
                [new_positions, new_values, new_pos_code, new_val_code, None, 0]
            )
            trail.append(op)
            advanced = True
            break
        if not advanced and frame[5] >= len(cands):
            stack.pop()
            if trail:
                trail.pop()

    # Search space exhausted without completing a schedule.
    return VerificationResult(
        holds=False,
        method="exact",
        reason=(
            "exhaustive search of all interleavings found no "
            "coherent/consistent schedule"
        ),
        stats={"states": states_expanded},
    )
