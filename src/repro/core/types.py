"""Data model for shared-memory executions.

Terminology follows Section 3 of the paper:

* an :class:`Operation` is a read ``R(a, d)``, a write ``W(a, d)``, an
  atomic read-modify-write ``RW(a, d_r, d_w)``, or a synchronization
  operation (acquire/release, used by the Figure 6.1 construction);
* a :class:`ProcessHistory` is the sequence of operations one process
  executed, in program order, with the values each observed;
* an :class:`Execution` is the set of process histories plus the initial
  value ``d_I[a]`` and (optionally) the final value ``d_F[a]`` of every
  location;
* a *schedule* is a plain sequence of operations — an interleaving —
  checked for coherence / sequential consistency by
  :mod:`repro.core.checker`.

Values are arbitrary hashable objects.  The distinguished
:data:`INITIAL` sentinel is the default initial value of every location;
a read returning it can only be scheduled before the first write.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Hashable, Iterable, Iterator, Mapping, Sequence

Value = Hashable
Address = Hashable


class _InitialValue:
    """Singleton sentinel: the pre-execution state of a location."""

    _instance: "_InitialValue | None" = None

    def __new__(cls) -> "_InitialValue":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "INITIAL"

    def __reduce__(self):  # keep singleton identity across pickling
        return (_InitialValue, ())


INITIAL: Value = _InitialValue()


class OpKind(enum.Enum):
    """Operation kinds.  ``RMW`` is atomic (its read and write occupy a
    single schedule slot); ``ACQUIRE``/``RELEASE`` are the
    synchronization primitives of Section 6.2's weak-model argument."""

    READ = "R"
    WRITE = "W"
    RMW = "RW"
    ACQUIRE = "ACQ"
    RELEASE = "REL"

    @property
    def reads(self) -> bool:
        return self in (OpKind.READ, OpKind.RMW)

    @property
    def writes(self) -> bool:
        return self in (OpKind.WRITE, OpKind.RMW)

    @property
    def is_sync(self) -> bool:
        return self in (OpKind.ACQUIRE, OpKind.RELEASE)


@dataclass(frozen=True)
class Operation:
    """One memory operation, identified by ``(proc, index)``.

    ``index`` is the operation's position in its process history
    (program order).  ``value_read`` is meaningful for READ/RMW,
    ``value_written`` for WRITE/RMW; both are ``None`` for sync ops.
    """

    kind: OpKind
    addr: Address
    proc: int
    index: int
    value_read: Value = None
    value_written: Value = None

    def __post_init__(self) -> None:
        if self.kind is OpKind.READ and self.value_written is not None:
            raise ValueError("a READ has no written value")
        if self.kind is OpKind.WRITE and self.value_read is not None:
            raise ValueError("a WRITE has no read value")
        if self.kind is OpKind.RMW and (
            self.value_read is None and self.value_written is None
        ):
            raise ValueError("an RMW must carry read and written values")

    @property
    def uid(self) -> tuple[int, int]:
        """Globally unique id within an execution: (process, po index)."""
        return (self.proc, self.index)

    def __str__(self) -> str:
        if self.kind is OpKind.READ:
            return f"P{self.proc}.R({self.addr},{self.value_read})"
        if self.kind is OpKind.WRITE:
            return f"P{self.proc}.W({self.addr},{self.value_written})"
        if self.kind is OpKind.RMW:
            return (
                f"P{self.proc}.RW({self.addr},{self.value_read},"
                f"{self.value_written})"
            )
        return f"P{self.proc}.{self.kind.value}({self.addr})"


def read(addr: Address, value: Value, proc: int = 0, index: int = 0) -> Operation:
    """Convenience constructor for ``R(addr, value)``."""
    return Operation(OpKind.READ, addr, proc, index, value_read=value)


def write(addr: Address, value: Value, proc: int = 0, index: int = 0) -> Operation:
    """Convenience constructor for ``W(addr, value)``."""
    return Operation(OpKind.WRITE, addr, proc, index, value_written=value)


def rmw(
    addr: Address,
    value_read: Value,
    value_written: Value,
    proc: int = 0,
    index: int = 0,
) -> Operation:
    """Convenience constructor for ``RW(addr, d_r, d_w)``."""
    return Operation(
        OpKind.RMW, addr, proc, index, value_read=value_read, value_written=value_written
    )


@dataclass(frozen=True)
class ProcessHistory:
    """A process's memory operations in program order."""

    proc: int
    operations: tuple[Operation, ...]

    def __post_init__(self) -> None:
        for i, op in enumerate(self.operations):
            if op.proc != self.proc or op.index != i:
                raise ValueError(
                    f"operation {op} at position {i} is mislabelled for "
                    f"process {self.proc}; use Execution.from_ops or the "
                    f"builder to get ids assigned automatically"
                )

    def __len__(self) -> int:
        return len(self.operations)

    def __iter__(self) -> Iterator[Operation]:
        return iter(self.operations)

    def __getitem__(self, i: int) -> Operation:
        return self.operations[i]

    def ops_at(self, addr: Address) -> list[Operation]:
        return [op for op in self.operations if op.addr == addr]


class Execution:
    """A multiprocessor execution: histories + initial/final values.

    ``initial`` maps addresses to their pre-execution values; addresses
    absent from the mapping default to :data:`INITIAL`.  ``final`` (the
    ``d_F`` of Section 3) is optional: when provided for an address, a
    coherent schedule's last write to that address must write it.
    """

    def __init__(
        self,
        histories: Sequence[ProcessHistory],
        initial: Mapping[Address, Value] | None = None,
        final: Mapping[Address, Value] | None = None,
    ):
        procs = [h.proc for h in histories]
        if procs != list(range(len(histories))):
            raise ValueError(
                f"histories must be numbered 0..k-1 in order, got {procs}"
            )
        self.histories: tuple[ProcessHistory, ...] = tuple(histories)
        self.initial: dict[Address, Value] = dict(initial or {})
        self.final: dict[Address, Value] = dict(final or {})

    # -- construction ---------------------------------------------------
    @staticmethod
    def from_ops(
        per_process_ops: Sequence[Sequence[Operation]],
        initial: Mapping[Address, Value] | None = None,
        final: Mapping[Address, Value] | None = None,
    ) -> "Execution":
        """Build an execution relabelling (proc, index) automatically.

        Accepts operations created with any proc/index (e.g. the module
        level :func:`read`/:func:`write` helpers) and renumbers them.
        """
        histories = []
        for p, ops in enumerate(per_process_ops):
            relabelled = tuple(
                Operation(
                    op.kind,
                    op.addr,
                    p,
                    i,
                    value_read=op.value_read,
                    value_written=op.value_written,
                )
                for i, op in enumerate(ops)
            )
            histories.append(ProcessHistory(p, relabelled))
        return Execution(histories, initial=initial, final=final)

    # -- columnar view ----------------------------------------------------
    def columnar(self):
        """The cached :class:`~repro.core.columnar.ColumnarTrace` view.

        Built on first use and memoized — executions are immutable
        after construction, so the view never goes stale.  The cache is
        dropped from pickles (see ``__getstate__``): process-pool
        workers rebuild it on demand rather than paying to ship it.
        """
        view = getattr(self, "_columnar", None)
        if view is None:
            from repro.core.columnar import ColumnarTrace

            view = ColumnarTrace.from_execution(self)
            self._columnar = view
        return view

    def __getstate__(self):
        state = self.__dict__.copy()
        state.pop("_columnar", None)
        return state

    # -- queries ----------------------------------------------------------
    @property
    def num_processes(self) -> int:
        return len(self.histories)

    @property
    def num_ops(self) -> int:
        return sum(len(h) for h in self.histories)

    def all_ops(self) -> Iterator[Operation]:
        for h in self.histories:
            yield from h

    def addresses(self) -> list[Address]:
        """Distinct addresses touched, in first-appearance order."""
        view = self.columnar()
        return list(view.addrs[: view.n_touched])

    def constrained_addresses(self) -> list[Address]:
        """Touched addresses plus any address with a final-value
        constraint (an untouched address with ``d_F != d_I`` makes the
        execution trivially incoherent — solvers must see it)."""
        view = self.columnar()
        return list(view.addrs[: view.n_constrained])

    def initial_value(self, addr: Address) -> Value:
        return self.initial.get(addr, INITIAL)

    def final_value(self, addr: Address) -> Value | None:
        """The required final value, or None when unconstrained."""
        return self.final.get(addr)

    def ops_at(self, addr: Address) -> list[Operation]:
        return [op for op in self.all_ops() if op.addr == addr]

    def restrict_to_address(self, addr: Address) -> "Execution":
        """Sub-execution containing only operations at ``addr``.

        Process histories are filtered but keep their process numbering;
        the per-op ``index`` keeps its original value so operations can
        be matched back to the parent execution, hence the histories are
        rebuilt through ``object.__new__`` rather than the validating
        constructor.  The filtering itself runs over the columnar
        view's per-address slices — one shared index instead of a full
        re-scan per address.
        """
        view = self.columnar()
        try:
            ai = view.addr_index(addr)
        except KeyError:
            # An address nowhere in the trace or its constraints: the
            # sub-execution is empty and wholly unconstrained.
            histories = []
            for h in self.histories:
                ph = object.__new__(ProcessHistory)
                object.__setattr__(ph, "proc", h.proc)
                object.__setattr__(ph, "operations", ())
                histories.append(ph)
            ex = object.__new__(Execution)
            ex.histories = tuple(histories)
            ex.initial = {addr: self.initial_value(addr)}
            ex.final = {}
            return ex
        return view.restrict_to_address_id(ai)

    def drop_sync_ops(self) -> "Execution":
        """Copy without ACQUIRE/RELEASE operations (renumbered)."""
        return Execution.from_ops(
            [[op for op in h if not op.kind.is_sync] for h in self.histories],
            initial=self.initial,
            final=self.final,
        )

    def max_ops_per_process(self) -> int:
        return max((len(h) for h in self.histories), default=0)

    def max_writes_per_value(self, addr: Address | None = None) -> int:
        """Largest number of writes of any single (addr, value) pair."""
        counts: dict[tuple[Address, Value], int] = {}
        for op in self.all_ops():
            if op.kind.writes and (addr is None or op.addr == addr):
                key = (op.addr, op.value_written)
                counts[key] = counts.get(key, 0) + 1
        return max(counts.values(), default=0)

    def kinds_used(self) -> set[OpKind]:
        return {op.kind for op in self.all_ops()}

    def is_rmw_only(self) -> bool:
        kinds = self.kinds_used()
        return bool(kinds) and kinds <= {OpKind.RMW}

    def is_single_address(self) -> bool:
        return len(self.addresses()) <= 1

    def __repr__(self) -> str:
        return (
            f"Execution(processes={self.num_processes}, ops={self.num_ops}, "
            f"addresses={len(self.addresses())})"
        )

    def pretty(self) -> str:
        """Multi-line rendering, histories as columns (paper style)."""
        cols = [
            [f"h{h.proc}"] + [str(op).split(".", 1)[1] for op in h]
            for h in self.histories
        ]
        height = max(len(c) for c in cols) if cols else 0
        widths = [max(len(s) for s in c) for c in cols]
        lines = []
        for r in range(height):
            cells = [
                (c[r] if r < len(c) else "").ljust(w)
                for c, w in zip(cols, widths)
            ]
            lines.append("  ".join(cells).rstrip())
        return "\n".join(lines)


Schedule = Sequence[Operation]


def schedule_str(schedule: Iterable[Operation]) -> str:
    """One-line rendering of a schedule (for witnesses in messages)."""
    return " ; ".join(str(op) for op in schedule)
