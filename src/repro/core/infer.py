"""Polynomial happens-before inference and read elimination.

The core of the engine's pre-pass pipeline (``repro.engine.prepass``).
The paper proves the general problems NP-complete (Theorems 4.2, 6.1),
but — as Roy et al.'s industrial checkers exploit — most constraints of
a realistic instance are *forced*: program order, uniquely-written read
values, and the required final value pin down most of the schedule
before any search starts.  This module computes those forced facts in
polynomial time:

* :func:`eliminate_reads` removes reads whose placement is decided by a
  neighbouring operation (a generalization of Figure 5.3's read-map
  row) and returns a :class:`ReinsertionPlan` that splices them back
  into any witness schedule of the residual execution;
* :func:`infer_order` saturates the *necessary* happens-before edges of
  a single-address instance (reads-from where the source is unique,
  coherence/from-read closure, final-write-last) — a cycle decides the
  instance incoherent with an explainable witness, and a forced total
  write order downgrades it to the O(n log n) Section 5.2 algorithm.

Soundness contract: every edge emitted by :func:`infer_order` holds in
*every* coherent schedule of the instance, and every read eliminated by
:func:`eliminate_reads` can be re-inserted into *any* coherent schedule
of the residual (so residual-coherent ⇔ original-coherent).

The inner loops — the covered-read scan, the reachability closure and
the wr/fr rule application — live in :mod:`repro.core.kernels` behind
the ``REPRO_KERNEL`` switch; this module is the driver: it reads the
columnar view, seeds the base edges, interprets the saturation outcome
and materializes human-readable reasons, step logs and hint edges
*lazily* (an inferred chain with half a million implied edges costs
nothing unless somebody actually asks for the proof).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.core import kernels
from repro.core.kernels import (
    RULE_FIN,
    RULE_FINR,
    RULE_FR,
    RULE_INIT,
    RULE_NAMES,
    RULE_PO,
    RULE_RF,
    RULE_WR,
)
from repro.core.result import Certificate, VerificationResult
from repro.core.types import Execution, OpKind, Operation, ProcessHistory

Uid = tuple[int, int]

#: One certificate proof step: ``(u_uid, v_uid, rule, aux)`` asserting
#: the necessary edge u -> v.  Rules ``po``/``rf``/``init``/``fin``/
#: ``finr`` are axioms a checker verifies directly against the trace;
#: ``wr``/``fr`` are closure steps whose ``aux`` is the forced
#: reads-from pair ``(w_uid, r_uid)`` that, combined with reachability
#: over *earlier* steps, forces the edge.
Step = tuple[Uid, Uid, str, tuple | None]


# ---------------------------------------------------------------------
# Read elimination
# ---------------------------------------------------------------------
@dataclass
class ReinsertionPlan:
    """How to splice eliminated reads back into a residual witness.

    Three placement classes, each trivially sound:

    * ``front`` — reads of the initial value that lead their process's
      history; at the very start of any schedule every address still
      holds its initial value, and nothing of the same process precedes
      them.
    * ``attached[uid]`` — reads whose value is determined by the
      surviving operation ``uid`` immediately preceding them in program
      order (at the same address): inserted directly after it, the
      address value cannot have changed in between.
    * ``tail`` — reads of the required final value that end their
      process's history; at the very end of any schedule satisfying the
      final-value constraint the address holds exactly that value.

    Everything here is plain data (operations and uid keys), so plans
    pickle cleanly into process-pool workers.
    """

    front: list[Operation] = field(default_factory=list)
    attached: dict[Uid, list[Operation]] = field(default_factory=dict)
    tail: list[Operation] = field(default_factory=list)

    @property
    def eliminated(self) -> int:
        return (
            len(self.front)
            + len(self.tail)
            + sum(len(v) for v in self.attached.values())
        )

    def rematerialize(self, schedule: Sequence[Operation]) -> list[Operation]:
        """Splice the eliminated reads into a residual witness.

        ``schedule`` may contain value-equal copies of the residual's
        operations (e.g. unpickled from a worker); attachment is by uid.
        """
        out: list[Operation] = list(self.front)
        for op in schedule:
            out.append(op)
            out.extend(self.attached.get(op.uid, ()))
        out.extend(self.tail)
        return out


def _determined_value(op: Operation):
    """The value an operation guarantees the address holds just after
    it executes (None when it guarantees nothing — sync ops)."""
    if op.kind.writes:
        return op.value_written
    if op.kind is OpKind.READ:
        return op.value_read
    return None


def _gappy_execution(
    histories: list[tuple[int, tuple[Operation, ...]]],
    initial,
    final,
) -> Execution:
    """Build an execution whose histories keep original (gappy) program
    order indices, like :meth:`Execution.restrict_to_address`."""
    phs = []
    for proc, ops in histories:
        ph = object.__new__(ProcessHistory)
        object.__setattr__(ph, "proc", proc)
        object.__setattr__(ph, "operations", ops)
        phs.append(ph)
    ex = object.__new__(Execution)
    ex.histories = tuple(phs)
    ex.initial = dict(initial)
    ex.final = dict(final)
    return ex


def eliminate_reads(execution: Execution) -> tuple[Execution, ReinsertionPlan]:
    """Drop reads whose placement is forced; return (residual, plan).

    Works on a single-address sub-execution (VMC tasks) or a whole
    execution (VSC): the rules only ever consult an operation's
    *immediate* program-order neighbour at the same address, which in
    the restricted case is the same thing.

    Executions containing sync operations are returned unchanged (the
    sync semantics live outside this module's model).

    The covered/front/tail decisions come from the active kernel's
    :meth:`~repro.core.kernels.PythonKernel.eliminate_scan` over the
    columnar view; both kernels report them in the same order, so the
    plan is identical either way.
    """
    plan = ReinsertionPlan()
    if any(op.kind.is_sync for op in execution.all_ops()):
        return execution, plan

    view = execution.columnar()
    scan = kernels.backend().eliminate_scan(view)
    if scan is None or scan.total == 0:
        return execution, plan

    eliminated = set(scan.eliminated)
    tail_set = set(scan.tails)
    anchor_of = dict(zip(scan.eliminated, scan.anchors))
    residual_histories: list[tuple[int, tuple[Operation, ...]]] = []
    for p in range(view.n_procs):
        start, stop = view.proc_offsets[p], view.proc_offsets[p + 1]
        kept: list[Operation] = []
        for i in range(start, stop):
            op = view.op_at(i)
            if i in eliminated:
                a = anchor_of[i]
                if a < 0:
                    plan.front.append(op)
                else:
                    plan.attached.setdefault(
                        view.op_at(a).uid, []
                    ).append(op)
            elif i in tail_set:
                plan.tail.append(op)
            else:
                kept.append(op)
        residual_histories.append((p, tuple(kept)))

    if plan.eliminated == 0:
        return execution, plan
    residual = _gappy_execution(
        residual_histories, execution.initial, execution.final
    )
    return residual, plan


# ---------------------------------------------------------------------
# Necessary happens-before inference (single address)
# ---------------------------------------------------------------------
class Inference:
    """Outcome of the happens-before saturation at one address.

    ``edges`` and ``steps`` are *lazy*: the saturation records compact
    step rows (node ids + rule codes), and the uid/reason form is only
    materialized when accessed — the downgrade path (forced write
    order) never pays for a proof log nobody reads.
    """

    def __init__(self):
        #: Early verdict: a cycle in the necessary edges (incoherent)
        #: or a read of a never-written value.  None when undecided.
        self.decided: VerificationResult | None = None
        #: All writes in a forced total order, when the necessary edges
        #: order them completely (downgrades the task to Section 5.2).
        self.write_order: list[Operation] | None = None
        #: Saturation rounds until fixpoint.
        self.rounds: int = 0
        self._edges: list[tuple[Uid, Uid, str]] | None = []
        self._steps: list[Step] | None = []
        self._sat = None
        self._ops: list[Operation] | None = None
        self._d_f = None

    def _attach(self, sat, ops: list[Operation], d_f) -> None:
        """Defer edge/step materialization to the saturation state."""
        self._sat = sat
        self._ops = ops
        self._d_f = d_f
        self._edges = None
        self._steps = None

    @property
    def edge_count(self) -> int:
        """Number of inferred (non-program-order) edges, without
        materializing them."""
        if self._sat is not None:
            return self._sat.non_po_edges
        return len(self._edges or ())

    @property
    def edges(self) -> list[tuple[Uid, Uid, str]]:
        """Inferred non-program-order edges as (uid, uid, reason)
        triples — necessary in every coherent schedule, usable as
        search hints."""
        if self._edges is None:
            ops = self._ops
            self._edges = [
                (
                    ops[u].uid,
                    ops[v].uid,
                    _why(rule, u, v, aw, ar, ops, self._d_f),
                )
                for u, v, rule, aw, ar in self._sat.steps()
                if rule != RULE_PO
            ]
        return self._edges

    @edges.setter
    def edges(self, value) -> None:
        self._edges = value

    @property
    def steps(self) -> list[Step]:
        """Every edge in derivation order as structured proof steps
        (see :data:`Step`) — the raw material of ``cycle``
        certificates."""
        if self._steps is None:
            self._steps = _materialize_steps(self._sat, self._ops)
        return self._steps

    @steps.setter
    def steps(self, value) -> None:
        self._steps = value


def _materialize_steps(sat, ops: list[Operation]) -> list[Step]:
    return [
        (
            ops[u].uid,
            ops[v].uid,
            RULE_NAMES[rule],
            (ops[aw].uid, ops[ar].uid) if aw >= 0 else None,
        )
        for u, v, rule, aw, ar in sat.steps()
    ]


def _why(
    rule: int, u: int, v: int, aux_w: int, aux_r: int,
    ops: list[Operation], d_f,
) -> str:
    """The human-readable reason for one recorded edge, reproduced
    exactly as the eager implementation used to phrase it."""
    if rule == RULE_PO:
        return "program order"
    if rule == RULE_RF:
        return f"{ops[v]} must read from {ops[u]} (unique writer)"
    if rule == RULE_INIT:
        return f"{ops[u]} reads the initial value, never re-written"
    if rule == RULE_FIN:
        return f"{ops[v]} uniquely writes the final value {d_f!r}"
    if rule == RULE_FINR:
        return (
            f"{ops[u]} reads {ops[u].value_read!r}, stale after the "
            f"final write {ops[v]}"
        )
    if rule == RULE_WR:
        return (
            f"{ops[u]} precedes {ops[aux_r]}, which reads from "
            f"{ops[aux_w]}"
        )
    return f"{ops[v]} follows {ops[aux_w]}, the source of {ops[u]}"


def infer_order(execution: Execution) -> Inference:
    """Saturate the necessary happens-before edges of a single-address
    execution (no sync ops).

    Rules — each provably holds in every coherent schedule:

    * program order;
    * *forced reads-from*: a read of a value written by exactly one
      other operation follows that write (RF); a read of the initial
      value when no write re-creates it precedes every write (INIT);
    * *coherence closure* for a forced pair ``w → r``: any other write
      ordered before ``r`` must precede ``w`` (WR), and any write
      ordered after ``w`` must follow ``r`` (FR) — otherwise it would
      sit between the source and the read;
    * *final write last*: when ``d_F`` is written by exactly one
      operation, every other write precedes it (FIN), and every read of
      a different value precedes it too (FINR).

    A cycle among these edges is a polynomial *incoherence proof*; the
    returned reason walks the cycle edge by edge with the rule that
    produced each edge.
    """
    ops = [op for h in execution.histories for op in h]
    n = len(ops)
    inf = Inference()
    if n == 0:
        return inf
    addrs = execution.addresses()
    if len(addrs) > 1:
        raise ValueError(f"infer_order is per-address; got {addrs}")
    addr = addrs[0]
    d_i = execution.initial_value(addr)
    d_f = execution.final_value(addr)

    view = execution.columnar()
    kinds = view.kinds
    rvs = view.read_vids
    wvs = view.write_vids
    d_i_vid = view.initial_ids[0]
    d_f_vid = view.final_ids[0]

    writes = [i for i in range(n) if wvs[i] >= 0]
    reads = [i for i in range(n) if rvs[i] >= 0]
    writers_of: dict[int, list[int]] = {}
    for w in writes:
        writers_of.setdefault(wvs[w], []).append(w)

    # Infeasible reads / final values decide outright (mirrors encode).
    for r in reads:
        v_id = rvs[r]
        if v_id != d_i_vid and not any(
            w != r for w in writers_of.get(v_id, ())
        ):
            inf.decided = VerificationResult(
                holds=False,
                method="prepass",
                reason=(
                    f"{ops[r]} reads {ops[r].value_read!r}, which is "
                    f"never written to {addr!r} and is not its initial "
                    f"value {d_i!r}"
                ),
                address=addr,
                certificate=Certificate(
                    "infeasible", ("read-impossible", ops[r].uid)
                ),
            )
            return inf
    if d_f is not None:
        if not writes:
            if d_f_vid != d_i_vid:
                inf.decided = VerificationResult(
                    holds=False,
                    method="prepass",
                    reason=f"no writes to {addr!r} but final {d_f!r} != initial",
                    address=addr,
                    certificate=Certificate(
                        "infeasible", ("final-vs-initial", addr)
                    ),
                )
                return inf
        elif not writers_of.get(d_f_vid):
            inf.decided = VerificationResult(
                holds=False,
                method="prepass",
                reason=(
                    f"required final value {d_f!r} of {addr!r} is never written"
                ),
                address=addr,
                certificate=Certificate(
                    "infeasible", ("final-unwritten", addr)
                ),
            )
            return inf

    # Forced reads-from sources.
    forced_rf: list[tuple[int, int]] = []  # (write, read)
    init_readers: list[int] = []
    for r in reads:
        v_id = rvs[r]
        cands = [w for w in writers_of.get(v_id, ()) if w != r]
        if v_id == d_i_vid:
            if not cands:
                init_readers.append(r)
        elif len(cands) == 1:
            forced_rf.append((cands[0], r))

    g = kernels.backend().saturation(n)
    for p in range(view.n_procs):
        start, stop = view.proc_offsets[p], view.proc_offsets[p + 1]
        for i in range(start, stop - 1):
            g.add(i, i + 1, RULE_PO)

    for w, r in forced_rf:
        # force_step: even when program order already supplies the
        # edge, the rf step must enter the log — wr/fr closure steps
        # cite the pair, and the certificate checker only accepts
        # pairs validated by their own rf step.
        g.add(w, r, RULE_RF, force_step=True)
    for r in init_readers:
        for w in writes:
            g.add(r, w, RULE_INIT)
    if d_f is not None and len(writers_of.get(d_f_vid, ())) == 1:
        wf = writers_of[d_f_vid][0]
        for w in writes:
            g.add(w, wf, RULE_FIN)
        for r in reads:
            if r != wf and rvs[r] != d_f_vid:
                g.add(r, wf, RULE_FINR)

    cycle = g.saturate(forced_rf, writes)
    inf.rounds = g.rounds
    if cycle is not None:
        wanted = set(zip(cycle, cycle[1:] + cycle[:1]))
        rule_of: dict[tuple[int, int], tuple[int, int, int]] = {}
        for u, v, rule, aw, ar in g.steps():
            if (u, v) in wanted and (u, v) not in rule_of:
                rule_of[(u, v)] = (rule, aw, ar)
        steps = []
        for u, v in zip(cycle, cycle[1:] + cycle[:1]):
            rule, aw, ar = rule_of.get((u, v), (RULE_PO, -1, -1))
            steps.append(
                f"{ops[u]} -> {ops[v]} [{_why(rule, u, v, aw, ar, ops, d_f)}]"
            )
        inf.decided = VerificationResult(
            holds=False,
            method="prepass",
            reason=(
                "necessary happens-before edges form a cycle: "
                + "; ".join(steps)
            ),
            address=addr,
            stats={"cycle_length": len(cycle)},
            certificate=Certificate(
                "cycle",
                (
                    tuple(_materialize_steps(g, ops)),
                    tuple(ops[u].uid for u in cycle),
                ),
            ),
        )
        return inf

    inf._attach(g, ops, d_f)

    # Forced total write order?
    order = g.write_order(writes)
    if order is not None:
        inf.write_order = [ops[w] for w in order]
    return inf
