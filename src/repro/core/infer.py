"""Polynomial happens-before inference and read elimination.

The core of the engine's pre-pass pipeline (``repro.engine.prepass``).
The paper proves the general problems NP-complete (Theorems 4.2, 6.1),
but — as Roy et al.'s industrial checkers exploit — most constraints of
a realistic instance are *forced*: program order, uniquely-written read
values, and the required final value pin down most of the schedule
before any search starts.  This module computes those forced facts in
polynomial time:

* :func:`eliminate_reads` removes reads whose placement is decided by a
  neighbouring operation (a generalization of Figure 5.3's read-map
  row) and returns a :class:`ReinsertionPlan` that splices them back
  into any witness schedule of the residual execution;
* :func:`infer_order` saturates the *necessary* happens-before edges of
  a single-address instance (reads-from where the source is unique,
  coherence/from-read closure, final-write-last) — a cycle decides the
  instance incoherent with an explainable witness, and a forced total
  write order downgrades it to the O(n log n) Section 5.2 algorithm.

Soundness contract: every edge emitted by :func:`infer_order` holds in
*every* coherent schedule of the instance, and every read eliminated by
:func:`eliminate_reads` can be re-inserted into *any* coherent schedule
of the residual (so residual-coherent ⇔ original-coherent).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.core.result import Certificate, VerificationResult
from repro.core.types import Execution, OpKind, Operation, ProcessHistory
from repro.util.digraph import CycleError, Digraph

Uid = tuple[int, int]

#: One certificate proof step: ``(u_uid, v_uid, rule, aux)`` asserting
#: the necessary edge u -> v.  Rules ``po``/``rf``/``init``/``fin``/
#: ``finr`` are axioms a checker verifies directly against the trace;
#: ``wr``/``fr`` are closure steps whose ``aux`` is the forced
#: reads-from pair ``(w_uid, r_uid)`` that, combined with reachability
#: over *earlier* steps, forces the edge.
Step = tuple[Uid, Uid, str, tuple | None]


# ---------------------------------------------------------------------
# Read elimination
# ---------------------------------------------------------------------
@dataclass
class ReinsertionPlan:
    """How to splice eliminated reads back into a residual witness.

    Three placement classes, each trivially sound:

    * ``front`` — reads of the initial value that lead their process's
      history; at the very start of any schedule every address still
      holds its initial value, and nothing of the same process precedes
      them.
    * ``attached[uid]`` — reads whose value is determined by the
      surviving operation ``uid`` immediately preceding them in program
      order (at the same address): inserted directly after it, the
      address value cannot have changed in between.
    * ``tail`` — reads of the required final value that end their
      process's history; at the very end of any schedule satisfying the
      final-value constraint the address holds exactly that value.

    Everything here is plain data (operations and uid keys), so plans
    pickle cleanly into process-pool workers.
    """

    front: list[Operation] = field(default_factory=list)
    attached: dict[Uid, list[Operation]] = field(default_factory=dict)
    tail: list[Operation] = field(default_factory=list)

    @property
    def eliminated(self) -> int:
        return (
            len(self.front)
            + len(self.tail)
            + sum(len(v) for v in self.attached.values())
        )

    def rematerialize(self, schedule: Sequence[Operation]) -> list[Operation]:
        """Splice the eliminated reads into a residual witness.

        ``schedule`` may contain value-equal copies of the residual's
        operations (e.g. unpickled from a worker); attachment is by uid.
        """
        out: list[Operation] = list(self.front)
        for op in schedule:
            out.append(op)
            out.extend(self.attached.get(op.uid, ()))
        out.extend(self.tail)
        return out


def _determined_value(op: Operation):
    """The value an operation guarantees the address holds just after
    it executes (None when it guarantees nothing — sync ops)."""
    if op.kind.writes:
        return op.value_written
    if op.kind is OpKind.READ:
        return op.value_read
    return None


def _gappy_execution(
    histories: list[tuple[int, tuple[Operation, ...]]],
    initial,
    final,
) -> Execution:
    """Build an execution whose histories keep original (gappy) program
    order indices, like :meth:`Execution.restrict_to_address`."""
    phs = []
    for proc, ops in histories:
        ph = object.__new__(ProcessHistory)
        object.__setattr__(ph, "proc", proc)
        object.__setattr__(ph, "operations", ops)
        phs.append(ph)
    ex = object.__new__(Execution)
    ex.histories = tuple(phs)
    ex.initial = dict(initial)
    ex.final = dict(final)
    return ex


def eliminate_reads(execution: Execution) -> tuple[Execution, ReinsertionPlan]:
    """Drop reads whose placement is forced; return (residual, plan).

    Works on a single-address sub-execution (VMC tasks) or a whole
    execution (VSC): the rules only ever consult an operation's
    *immediate* program-order neighbour at the same address, which in
    the restricted case is the same thing.

    Executions containing sync operations are returned unchanged (the
    sync semantics live outside this module's model).
    """
    plan = ReinsertionPlan()
    if any(op.kind.is_sync for op in execution.all_ops()):
        return execution, plan

    FRONT = (-1, -1)  # pseudo-anchor for front placements
    residual_histories: list[tuple[int, tuple[Operation, ...]]] = []
    for h in execution.histories:
        kept: list[Operation] = []
        # Anchor of the *previous* op in this history: its own uid if it
        # survived, else wherever it was re-attached.
        prev_op: Operation | None = None
        prev_anchor: Uid | None = None
        for op in h:
            anchor: Uid | None = None  # set when `op` is eliminated
            if op.kind is OpKind.READ:
                v = op.value_read
                if (
                    prev_op is not None
                    and prev_op.addr == op.addr
                    and _determined_value(prev_op) == v
                ):
                    # Covered read: the immediately preceding op at this
                    # address guarantees the value; re-insert right
                    # after wherever that op (or its anchor) lands.
                    anchor = prev_anchor
                elif prev_op is None and v == execution.initial_value(op.addr):
                    anchor = FRONT
            if anchor is None:
                kept.append(op)
                prev_op, prev_anchor = op, op.uid
            else:
                if anchor == FRONT:
                    plan.front.append(op)
                else:
                    plan.attached.setdefault(anchor, []).append(op)
                prev_op, prev_anchor = op, anchor
        # Trailing final-value read: the process's last operation reads
        # the constrained final value of its address — it can close any
        # schedule.  (If it was already eliminated above, fine.)
        if kept and kept[-1] is h[len(h) - 1]:
            last = kept[-1]
            if (
                last.kind is OpKind.READ
                and execution.final_value(last.addr) is not None
                and last.value_read == execution.final_value(last.addr)
            ):
                kept.pop()
                plan.tail.append(last)
        residual_histories.append((h.proc, tuple(kept)))

    if plan.eliminated == 0:
        return execution, plan
    residual = _gappy_execution(
        residual_histories, execution.initial, execution.final
    )
    return residual, plan


# ---------------------------------------------------------------------
# Necessary happens-before inference (single address)
# ---------------------------------------------------------------------
@dataclass
class Inference:
    """Outcome of the happens-before saturation at one address."""

    #: Early verdict: a cycle in the necessary edges (incoherent) or a
    #: read of a never-written value.  None when undecided.
    decided: VerificationResult | None = None
    #: All writes in a forced total order, when the necessary edges
    #: order them completely (downgrades the task to Section 5.2).
    write_order: list[Operation] | None = None
    #: Inferred non-program-order edges as (uid, uid, reason) triples —
    #: necessary in every coherent schedule, usable as search hints.
    edges: list[tuple[Uid, Uid, str]] = field(default_factory=list)
    #: Every edge in derivation order as structured proof steps (see
    #: :data:`Step`) — the raw material of ``cycle`` certificates.
    steps: list[Step] = field(default_factory=list)
    #: Saturation rounds until fixpoint.
    rounds: int = 0


def _closure(g: Digraph) -> list[int]:
    """Per-node reachability bitsets over an acyclic digraph."""
    order = g.topological_order()
    reach = [0] * g.n
    for u in reversed(order):
        acc = 0
        for v in g.successors(u):
            acc |= (1 << v) | reach[v]
        reach[u] = acc
    return reach


def infer_order(execution: Execution) -> Inference:
    """Saturate the necessary happens-before edges of a single-address
    execution (no sync ops).

    Rules — each provably holds in every coherent schedule:

    * program order;
    * *forced reads-from*: a read of a value written by exactly one
      other operation follows that write (RF); a read of the initial
      value when no write re-creates it precedes every write (INIT);
    * *coherence closure* for a forced pair ``w → r``: any other write
      ordered before ``r`` must precede ``w`` (WR), and any write
      ordered after ``w`` must follow ``r`` (FR) — otherwise it would
      sit between the source and the read;
    * *final write last*: when ``d_F`` is written by exactly one
      operation, every other write precedes it (FIN), and every read of
      a different value precedes it too (FINR).

    A cycle among these edges is a polynomial *incoherence proof*; the
    returned reason walks the cycle edge by edge with the rule that
    produced each edge.
    """
    ops = [op for h in execution.histories for op in h]
    n = len(ops)
    inf = Inference()
    if n == 0:
        return inf
    addrs = execution.addresses()
    if len(addrs) > 1:
        raise ValueError(f"infer_order is per-address; got {addrs}")
    addr = addrs[0]
    d_i = execution.initial_value(addr)
    d_f = execution.final_value(addr)

    node = {op.uid: i for i, op in enumerate(ops)}
    writes = [i for i, op in enumerate(ops) if op.kind.writes]
    reads = [i for i, op in enumerate(ops) if op.kind.reads]
    writers_of: dict = {}
    for w in writes:
        writers_of.setdefault(ops[w].value_written, []).append(w)

    g = Digraph(n)
    reasons: dict[tuple[int, int], str] = {}

    def add(
        u: int, v: int, why: str, rule: str = "po",
        aux: tuple | None = None,
    ) -> bool:
        if u == v:
            return False
        if g.add_edge(u, v):
            reasons[(u, v)] = why
            inf.steps.append((ops[u].uid, ops[v].uid, rule, aux))
            return True
        return False

    for h in execution.histories:
        for o1, o2 in zip(h.operations, h.operations[1:]):
            add(node[o1.uid], node[o2.uid], "program order")

    # Infeasible reads / final values decide outright (mirrors encode).
    for r in reads:
        v = ops[r].value_read
        if v != d_i and not any(w != r for w in writers_of.get(v, [])):
            inf.decided = VerificationResult(
                holds=False,
                method="prepass",
                reason=(
                    f"{ops[r]} reads {v!r}, which is never written to "
                    f"{addr!r} and is not its initial value {d_i!r}"
                ),
                address=addr,
                certificate=Certificate(
                    "infeasible", ("read-impossible", ops[r].uid)
                ),
            )
            return inf
    if d_f is not None:
        if not writes:
            if d_f != d_i:
                inf.decided = VerificationResult(
                    holds=False,
                    method="prepass",
                    reason=f"no writes to {addr!r} but final {d_f!r} != initial",
                    address=addr,
                    certificate=Certificate(
                        "infeasible", ("final-vs-initial", addr)
                    ),
                )
                return inf
        elif not writers_of.get(d_f):
            inf.decided = VerificationResult(
                holds=False,
                method="prepass",
                reason=(
                    f"required final value {d_f!r} of {addr!r} is never written"
                ),
                address=addr,
                certificate=Certificate(
                    "infeasible", ("final-unwritten", addr)
                ),
            )
            return inf

    # Forced reads-from sources.
    forced_rf: list[tuple[int, int]] = []  # (write, read)
    init_readers: list[int] = []
    for r in reads:
        v = ops[r].value_read
        cands = [w for w in writers_of.get(v, []) if w != r]
        if v == d_i:
            if not cands:
                init_readers.append(r)
        elif len(cands) == 1:
            forced_rf.append((cands[0], r))

    for w, r in forced_rf:
        add(w, r, f"{ops[r]} must read from {ops[w]} (unique writer)", "rf")
    for r in init_readers:
        for w in writes:
            add(
                r, w, f"{ops[r]} reads the initial value, never re-written",
                "init",
            )
    if d_f is not None and len(writers_of.get(d_f, ())) == 1:
        wf = writers_of[d_f][0]
        for w in writes:
            add(
                w, wf, f"{ops[wf]} uniquely writes the final value {d_f!r}",
                "fin",
            )
        for r in reads:
            if r != wf and ops[r].value_read != d_f:
                add(
                    r, wf,
                    f"{ops[r]} reads {ops[r].value_read!r}, stale after the "
                    f"final write {ops[wf]}",
                    "finr",
                )

    # Saturate: closure-driven coherence/from-read rules to fixpoint.
    while True:
        inf.rounds += 1
        try:
            reach = _closure(g)
        except CycleError as e:
            cycle = e.cycle
            steps = []
            for u, v in zip(cycle, cycle[1:] + cycle[:1]):
                steps.append(
                    f"{ops[u]} -> {ops[v]} "
                    f"[{reasons.get((u, v), 'program order')}]"
                )
            inf.decided = VerificationResult(
                holds=False,
                method="prepass",
                reason=(
                    "necessary happens-before edges form a cycle: "
                    + "; ".join(steps)
                ),
                address=addr,
                stats={"cycle_length": len(cycle)},
                certificate=Certificate(
                    "cycle",
                    (
                        tuple(inf.steps),
                        tuple(ops[u].uid for u in cycle),
                    ),
                ),
            )
            return inf
        changed = False
        for w, r in forced_rf:
            bit_r = 1 << r
            for w2 in writes:
                if w2 == w or w2 == r:
                    continue
                if reach[w2] & bit_r:
                    changed |= add(
                        w2, w,
                        f"{ops[w2]} precedes {ops[r]}, which reads from "
                        f"{ops[w]}",
                        "wr", (ops[w].uid, ops[r].uid),
                    )
                if reach[w] & (1 << w2):
                    changed |= add(
                        r, w2,
                        f"{ops[w2]} follows {ops[w]}, the source of {ops[r]}",
                        "fr", (ops[w].uid, ops[r].uid),
                    )
        if not changed:
            break

    # Count the inferred (non-program-order) edges and export them.
    po = set()
    for h in execution.histories:
        for o1, o2 in zip(h.operations, h.operations[1:]):
            po.add((node[o1.uid], node[o2.uid]))
    inf.edges = [
        (ops[u].uid, ops[v].uid, why)
        for (u, v), why in reasons.items()
        if (u, v) not in po
    ]

    # Forced total write order?
    if len(writes) <= 1:
        inf.write_order = [ops[w] for w in writes]
        return inf
    wmask_bits = {w: 1 << w for w in writes}
    wmask = 0
    for w in writes:
        wmask |= wmask_bits[w]

    def successors_among_writes(w: int) -> int:
        return bin(reach[w] & wmask).count("1")

    ranked = sorted(writes, key=lambda w: -successors_among_writes(w))
    total = all(
        reach[a] & wmask_bits[b] for a, b in zip(ranked, ranked[1:])
    )
    if total:
        inf.write_order = [ops[w] for w in ranked]
    return inf
