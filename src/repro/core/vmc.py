"""The public VMC verifier: dispatch to the cheapest applicable algorithm.

``verify_coherence`` implements the paper's Definition 4.1 decision
problem for one address, and the Section 3 notion of a *coherent
execution* (every address has a coherent schedule) when given a
multi-address execution.

Routing, mirroring Figure 5.3 top to bottom:

1. a supplied write-order → :mod:`repro.core.writeorder` (polynomial);
2. at most one operation per process → :mod:`repro.core.single_op`;
3. every value written at most once → :mod:`repro.core.readmap`;
4. few processes or a small state space → :mod:`repro.core.exact`
   (polynomial for constant process count);
5. otherwise → CNF + CDCL (:mod:`repro.core.encode`), the practical
   choice for the NP-complete general case.

The returned :class:`~repro.core.result.VerificationResult` records
which algorithm decided the instance in ``method``.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.core import exact, readmap, single_op, writeorder
from repro.core.encode import sat_vmc
from repro.core.result import VerificationResult
from repro.core.types import Address, Execution, Operation

# With k processes the frontier search visits O(n^k) states; keep exact
# search for instances whose worst-case state count is modest.
_EXACT_STATE_BUDGET = 2_000_000


def _estimated_states(execution: Execution) -> float:
    est = 1.0
    for h in execution.histories:
        est *= len(h) + 1
        if est > 1e18:
            break
    return est


def verify_coherence_at(
    execution: Execution,
    addr: Address,
    method: str = "auto",
    write_order: Sequence[Operation] | None = None,
) -> VerificationResult:
    """Decide VMC at one address of a (possibly multi-address) execution."""
    sub = execution.restrict_to_address(addr)
    return _verify_single_address(sub, method, write_order, addr)


def verify_coherence(
    execution: Execution,
    method: str = "auto",
    write_orders: Mapping[Address, Sequence[Operation]] | None = None,
) -> VerificationResult:
    """Decide whether the execution is coherent (per Section 3): a
    coherent schedule exists for *every* address.

    Returns an aggregate result; per-address results (with witnesses)
    are in ``result.per_address``.  For a single-address execution this
    is exactly the VMC decision problem.
    """
    addrs = execution.constrained_addresses()
    if not addrs:
        return VerificationResult(holds=True, method="trivial", schedule=[])
    per: dict[Address, VerificationResult] = {}
    for a in addrs:
        wo = write_orders.get(a) if write_orders else None
        per[a] = verify_coherence_at(execution, a, method=method, write_order=wo)
    bad = [a for a, r in per.items() if not r]
    if bad:
        first = per[bad[0]]
        agg = VerificationResult(
            holds=False,
            method=first.method,
            reason=f"address {bad[0]!r} has no coherent schedule: {first.reason}",
        )
    else:
        only = per[addrs[0]]
        agg = VerificationResult(
            holds=True,
            method=only.method if len(addrs) == 1 else "per-address",
            schedule=only.schedule if len(addrs) == 1 else None,
        )
    agg.per_address = per
    if len(addrs) == 1:
        agg.address = addrs[0]
    return agg


def _verify_single_address(
    sub: Execution,
    method: str,
    write_order: Sequence[Operation] | None,
    addr: Address,
) -> VerificationResult:
    if method == "auto":
        if write_order is not None:
            result = writeorder.writeorder_vmc(sub, write_order)
        elif single_op.applicable(sub):
            result = single_op.single_op_vmc(sub)
        elif _readmap_applicable(sub):
            result = readmap.readmap_vmc(sub)
        elif _estimated_states(sub) <= _EXACT_STATE_BUDGET:
            result = exact.exact_vmc(sub)
        else:
            result = sat_vmc(sub)
    elif method == "write-order":
        if write_order is None:
            raise ValueError("method='write-order' requires write_order=")
        result = writeorder.writeorder_vmc(sub, write_order)
    elif method == "single-op":
        result = single_op.single_op_vmc(sub)
    elif method == "readmap":
        result = readmap.readmap_vmc(sub)
    elif method == "exact":
        result = exact.exact_vmc(sub)
    elif method in ("sat", "sat-cdcl"):
        result = sat_vmc(sub, solver="cdcl")
    elif method == "sat-dpll":
        result = sat_vmc(sub, solver="dpll")
    else:
        raise ValueError(f"unknown method {method!r}")
    result.address = addr
    return result


def _readmap_applicable(sub: Execution) -> bool:
    if not readmap.applicable(sub):
        return False
    # The read-map is only forced when no write re-creates the initial
    # value (otherwise initial-value reads have two possible sources).
    addrs = sub.addresses()
    if not addrs:
        return True
    d_i = sub.initial_value(addrs[0])
    return all(
        op.value_written != d_i
        for op in sub.all_ops()
        if op.kind.writes
    )
