"""The public VMC verifier: a thin shim over the unified engine.

``verify_coherence`` implements the paper's Definition 4.1 decision
problem for one address, and the Section 3 notion of a *coherent
execution* (every address has a coherent schedule) when given a
multi-address execution.

Routing mirrors Figure 5.3 top to bottom, but lives in
:mod:`repro.engine.registry` as a data-driven backend registry rather
than an if-chain:

1. a supplied write-order → :mod:`repro.core.writeorder` (polynomial);
2. at most one operation per process → :mod:`repro.core.single_op`;
3. every value written at most once → :mod:`repro.core.readmap`;
4. few processes or a small state space → :mod:`repro.core.exact`
   (polynomial for constant process count);
5. otherwise → CNF + CDCL (:mod:`repro.core.encode`), the practical
   choice for the NP-complete general case.

The returned :class:`~repro.core.result.VerificationResult` records
which algorithm decided the instance in ``method`` and carries the
engine's :class:`~repro.engine.report.EngineReport` in ``report``.
Multi-address executions decompose into independent per-address tasks;
pass ``jobs=N`` to decide them on a thread pool, or a shared
:class:`~repro.engine.cache.ResultCache` to dedupe isomorphic
sub-executions across calls.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.core.result import VerificationResult
from repro.core.types import Address, Execution, Operation
from repro.engine import verify_vmc, verify_vmc_at
from repro.engine.backend import EXACT_STATE_BUDGET, estimated_states

# Backwards-compatible aliases for the pre-engine module internals.
_EXACT_STATE_BUDGET = EXACT_STATE_BUDGET
_estimated_states = estimated_states


def verify_coherence_at(
    execution: Execution,
    addr: Address,
    method: str = "auto",
    write_order: Sequence[Operation] | None = None,
    prepass: bool = True,
    portfolio=True,
    certify: str = "off",
) -> VerificationResult:
    """Decide VMC at one address of a (possibly multi-address) execution."""
    return verify_vmc_at(
        execution,
        addr,
        method=method,
        write_order=write_order,
        prepass=prepass,
        portfolio=portfolio,
        certify=certify,
    )


def verify_coherence(
    execution: Execution,
    method: str = "auto",
    write_orders: Mapping[Address, Sequence[Operation]] | None = None,
    *,
    jobs: int = 1,
    cache=None,
    pool: str = "auto",
    prepass: bool = True,
    portfolio=True,
    resilience=None,
    certify: str = "off",
) -> VerificationResult:
    """Decide whether the execution is coherent (per Section 3): a
    coherent schedule exists for *every* address.

    Returns an aggregate result; per-address results (with witnesses)
    are in ``result.per_address``.  For a single-address execution this
    is exactly the VMC decision problem.

    ``jobs``, ``pool``, ``cache``, ``prepass`` and ``portfolio`` are
    forwarded to the engine: ``jobs=N`` verifies addresses on a pool
    (``pool="thread" | "process" | "auto"`` — auto picks processes
    exactly when heavy exponential-tier tasks survive the pre-pass),
    ``cache`` may be a shared :class:`repro.engine.ResultCache`
    (``None`` uses a fresh per-call cache, ``False`` disables caching),
    ``prepass=False`` skips the polynomial pre-pass, and
    ``portfolio=False`` disables exact-vs-SAT racing on the
    exponential tier.  ``resilience`` (a
    :class:`repro.engine.ResiliencePolicy`) adds deadlines, crash
    retries and fault injection; undecided addresses yield a sound
    UNKNOWN aggregate instead of a hang or a guessed verdict.
    ``certify`` (``"off"``/``"on"``/``"strict"``) attaches checkable
    certificates validated by :mod:`repro.engine.certify`.
    """
    return verify_vmc(
        execution, method=method, write_orders=write_orders, jobs=jobs,
        cache=cache, pool=pool, prepass=prepass, portfolio=portfolio,
        resilience=resilience, certify=certify,
    )
