"""Online coherence monitoring (the paper's Section 1 motivation).

The offline verifiers take a complete execution.  For *online error
detection* a monitor must consume operations as they commit and flag
the first violation immediately.  In general that is hopeless (VMC is
NP-complete and reads may be served by many writes), but with the
memory system announcing its write serialization — the Section 5.2
augmentation, which the bus of :mod:`repro.memsys` provides naturally —
an incremental check runs in amortized O(1) per operation:

* the monitor tracks the global write-order position ("now");
* per process it remembers the position window its next read may use
  (after its last same-address write / at or after its previous read's
  slot);
* a read of value ``v`` is legal iff some write-order gap in the window
  ``[lo, now]`` holds ``v`` — maintained with per-value gap lists and
  monotone cursors.

The monitor is *eager-greedy*: it places each read at the earliest
legal gap, which is complete for the same exchange-argument reason the
offline Section 5.2 algorithm is — with one genuine loss: the offline
algorithm sees the whole write-order up front, while the monitor only
knows the serialization so far, so a read that could be served by a
*future* write of the same value must be rejected... which is correct,
because coherence forbids reading a value before any write of it
anyway (values written later in the serialization cannot have been the
source of an earlier-committed read **if reads commit after their
source**; the monitor assumes the memory system commits a read after
the write that sourced it, true of real hardware and of the simulator).

Use :class:`CoherenceMonitor` per address.
"""

from __future__ import annotations

from bisect import bisect_left
from collections import defaultdict
from dataclasses import dataclass, field

from repro.core.types import Address, Value


class CoherenceViolation(Exception):
    """Raised by strict-mode monitors on the first detected violation."""

    def __init__(self, message: str, op_index: int):
        super().__init__(message)
        self.op_index = op_index


@dataclass
class _ProcState:
    cursor: int = 0  # earliest write-order gap this proc's next read may use


@dataclass
class MonitorStats:
    writes: int = 0
    reads: int = 0
    rmws: int = 0
    violations: int = 0


class CoherenceMonitor:
    """Incremental per-address coherence checker fed by commit events.

    Feed :meth:`commit_write`, :meth:`commit_read`, :meth:`commit_rmw`
    in the memory system's serialization order.  Each returns ``None``
    on success or a violation message; with ``strict=True`` a violation
    raises :class:`CoherenceViolation` instead.

    ``final(expected)`` checks the end-of-run value.
    """

    def __init__(
        self,
        addr: Address,
        initial: Value,
        strict: bool = False,
    ):
        self.addr = addr
        self.strict = strict
        self.stats = MonitorStats()
        # Gap g holds the value after the g-th write; gap 0 = initial.
        self._gap_values: list[Value] = [initial]
        self._gaps_of_value: dict[Value, list[int]] = defaultdict(list)
        self._gaps_of_value[initial].append(0)
        self._procs: dict[int, _ProcState] = defaultdict(_ProcState)
        self._events = 0

    # -- helpers -----------------------------------------------------------
    @property
    def now(self) -> int:
        """Current gap index (number of writes committed so far)."""
        return len(self._gap_values) - 1

    def _fail(self, message: str) -> str:
        self.stats.violations += 1
        if self.strict:
            raise CoherenceViolation(message, self._events)
        return message

    # -- event interface -----------------------------------------------
    def commit_write(self, proc: int, value: Value) -> str | None:
        """A write by ``proc`` of ``value`` was serialized now."""
        self._events += 1
        self.stats.writes += 1
        self._gap_values.append(value)
        self._gaps_of_value[value].append(self.now)
        # Program order: the writer's later reads come after this write.
        st = self._procs[proc]
        st.cursor = max(st.cursor, self.now)
        return None

    def commit_read(self, proc: int, value: Value) -> str | None:
        """A read by ``proc`` returning ``value`` committed now."""
        self._events += 1
        self.stats.reads += 1
        st = self._procs[proc]
        gaps = self._gaps_of_value.get(value)
        if not gaps:
            return self._fail(
                f"P{proc} read {value!r} from {self.addr!r}, which no "
                f"committed write produced (and it is not the initial value)"
            )
        i = bisect_left(gaps, st.cursor)
        if i == len(gaps):
            return self._fail(
                f"P{proc} read stale value {value!r} from {self.addr!r}: "
                f"its most recent source was overwritten before the "
                f"process's own program-order position (gap {st.cursor})"
            )
        st.cursor = gaps[i]
        return None

    def commit_rmw(
        self, proc: int, value_read: Value, value_written: Value
    ) -> str | None:
        """An atomic RMW serialized now: its read component must see the
        value at the current end of the write-order."""
        self._events += 1
        self.stats.rmws += 1
        current = self._gap_values[-1]
        result: str | None = None
        if value_read != current:
            result = self._fail(
                f"P{proc}'s atomic RMW on {self.addr!r} read "
                f"{value_read!r} but the serialized value is {current!r}"
            )
        # Commit the write component either way so monitoring continues.
        self.stats.writes += 1
        self._gap_values.append(value_written)
        self._gaps_of_value[value_written].append(self.now)
        st = self._procs[proc]
        st.cursor = max(st.cursor, self.now)
        return result

    def final(self, expected: Value) -> str | None:
        """End-of-run check: the last serialized value must be ``expected``."""
        got = self._gap_values[-1]
        if got != expected:
            return self._fail(
                f"final value of {self.addr!r} is {got!r}, expected "
                f"{expected!r}"
            )
        return None

    @property
    def ok(self) -> bool:
        return self.stats.violations == 0


class SystemMonitor:
    """A bank of per-address monitors with a single event interface."""

    def __init__(self, initial: dict[Address, Value] | None = None, strict: bool = False):
        self._initial = dict(initial or {})
        self._strict = strict
        self.monitors: dict[Address, CoherenceMonitor] = {}
        self.violations: list[str] = []

    def _monitor(self, addr: Address) -> CoherenceMonitor:
        mon = self.monitors.get(addr)
        if mon is None:
            from repro.core.types import INITIAL

            mon = CoherenceMonitor(
                addr, self._initial.get(addr, INITIAL), strict=self._strict
            )
            self.monitors[addr] = mon
        return mon

    def _note(self, outcome: str | None) -> str | None:
        if outcome is not None:
            self.violations.append(outcome)
        return outcome

    def write(self, proc: int, addr: Address, value: Value) -> str | None:
        return self._note(self._monitor(addr).commit_write(proc, value))

    def read(self, proc: int, addr: Address, value: Value) -> str | None:
        return self._note(self._monitor(addr).commit_read(proc, value))

    def rmw(
        self, proc: int, addr: Address, value_read: Value, value_written: Value
    ) -> str | None:
        return self._note(
            self._monitor(addr).commit_rmw(proc, value_read, value_written)
        )

    @property
    def ok(self) -> bool:
        return not self.violations


def monitor_run(run_result, strict: bool = False) -> SystemMonitor:
    """Replay a :class:`repro.memsys.recorder.RunResult` through monitors.

    Events are replayed in the bus serialization order for writes and
    program order for reads, approximated by interleaving each
    process's history against the write-order (reads commit right
    after their program-order predecessor).  For simulator runs the
    recorder's per-process histories are already in commit order
    per-process, and writes carry their global order, so the replay is
    faithful.
    """
    execution = run_result.execution
    monitors = SystemMonitor(initial=execution.initial, strict=strict)
    # Global replay: walk the write orders as the clock; between write
    # commits, flush each process's pending reads that precede its next
    # write.  Simplest faithful replay: per address, writes in bus
    # order; reads interleaved per process cursor.
    for addr, order in sorted(
        run_result.write_orders.items(), key=lambda kv: str(kv[0])
    ):
        sub = execution.restrict_to_address(addr)
        pending = {h.proc: list(h.operations) for h in sub.histories}

        def flush_reads_before(proc: int, stop_uid) -> None:
            ops = pending[proc]
            while ops and ops[0].kind.reads and not ops[0].kind.writes:
                if stop_uid is not None and ops[0].index >= stop_uid[1]:
                    break
                op = ops.pop(0)
                monitors.read(proc, addr, op.value_read)

        for w in order:
            flush_reads_before(w.proc, w.uid)
            ops = pending[w.proc]
            assert ops and ops[0].uid == w.uid, "write order out of sync"
            ops.pop(0)
            if w.kind.writes and w.kind.reads:
                monitors.rmw(w.proc, addr, w.value_read, w.value_written)
            else:
                monitors.write(w.proc, addr, w.value_written)
        for proc in pending:
            flush_reads_before(proc, None)
    # Addresses with reads but no writes at all:
    for addr in execution.addresses():
        if addr in run_result.write_orders:
            continue
        for h in execution.restrict_to_address(addr).histories:
            for op in h:
                if op.kind.reads:
                    monitors.read(op.proc, addr, op.value_read)
    # End-of-run check against the machine's reported final values —
    # this is what catches silently dropped writes online.
    for addr, expected in execution.final.items():
        outcome = monitors._monitor(addr).final(expected)
        if outcome is not None:
            monitors.violations.append(outcome)
    return monitors
