"""Online coherence monitoring (the paper's Section 1 motivation).

The offline verifiers take a complete execution.  For *online error
detection* a monitor must consume operations as they commit and flag
the first violation immediately.  In general that is hopeless (VMC is
NP-complete and reads may be served by many writes), but with the
memory system announcing its write serialization — the Section 5.2
augmentation, which the bus of :mod:`repro.memsys` provides naturally —
an incremental check runs in amortized O(log g) per operation (``g`` =
live write-order gaps; the binary search over a value's gap list is
the only super-constant step).

The real engine now lives in :mod:`repro.engine.streaming`: a
windowed, evicting, certificate-producing :class:`AddressMonitor`
driven by :class:`~repro.engine.streaming.StreamingVerifier` (the
``repro monitor`` CLI fast path).  This module keeps the original
value-level surface as thin compatibility shims:

* :class:`CoherenceMonitor` — a lossless (non-evicting, windowless)
  :class:`~repro.engine.streaming.AddressMonitor`;
* :class:`SystemMonitor` — a lazy per-address bank of them;
* :func:`monitor_run` — replays a recorded
  :class:`repro.memsys.recorder.RunResult` through a bank.

The monitor is *eager-greedy*: it places each read at the earliest
legal gap, which is complete for the same exchange-argument reason the
offline Section 5.2 algorithm is — with one genuine loss: the offline
algorithm sees the whole write-order up front, while the monitor only
knows the serialization so far, so a read that could be served by a
*future* write of the same value must be rejected... which is correct,
because coherence forbids reading a value before any write of it
anyway (values written later in the serialization cannot have been the
source of an earlier-committed read **if reads commit after their
source**; the monitor assumes the memory system commits a read after
the write that sourced it, true of real hardware and of the simulator).
"""

from __future__ import annotations

from repro.core.types import Address, Value
from repro.engine.streaming import (
    AddressMonitor,
    CoherenceViolation,
    MonitorStats,
)

__all__ = [
    "CoherenceMonitor",
    "CoherenceViolation",
    "MonitorStats",
    "SystemMonitor",
    "monitor_run",
]


class CoherenceMonitor(AddressMonitor):
    """Back-compat per-address monitor: a lossless (windowless)
    :class:`repro.engine.streaming.AddressMonitor`.

    Feed :meth:`commit_write`, :meth:`commit_read`, :meth:`commit_rmw`
    in the memory system's serialization order.  Each returns ``None``
    on success or a violation message; with ``strict=True`` a violation
    raises :class:`CoherenceViolation` instead.  ``final(expected)``
    checks the end-of-run value.
    """

    def __init__(self, addr: Address, initial: Value, strict: bool = False):
        super().__init__(addr, initial, strict=strict)


class SystemMonitor:
    """A bank of per-address monitors with a single event interface."""

    def __init__(
        self,
        initial: dict[Address, Value] | None = None,
        strict: bool = False,
    ):
        self._initial = dict(initial or {})
        self._strict = strict
        self.monitors: dict[Address, CoherenceMonitor] = {}
        self.violations: list[str] = []

    def _monitor(self, addr: Address) -> CoherenceMonitor:
        mon = self.monitors.get(addr)
        if mon is None:
            from repro.core.types import INITIAL

            mon = CoherenceMonitor(
                addr, self._initial.get(addr, INITIAL), strict=self._strict
            )
            self.monitors[addr] = mon
        return mon

    def _note(self, outcome: str | None) -> str | None:
        if outcome is not None:
            self.violations.append(outcome)
        return outcome

    def write(self, proc: int, addr: Address, value: Value) -> str | None:
        return self._note(self._monitor(addr).commit_write(proc, value))

    def read(self, proc: int, addr: Address, value: Value) -> str | None:
        return self._note(self._monitor(addr).commit_read(proc, value))

    def rmw(
        self, proc: int, addr: Address, value_read: Value, value_written: Value
    ) -> str | None:
        return self._note(
            self._monitor(addr).commit_rmw(proc, value_read, value_written)
        )

    @property
    def ok(self) -> bool:
        return not self.violations


def monitor_run(
    run_result, strict: bool = False, use_commit_log: bool = False
) -> SystemMonitor:
    """Replay a :class:`repro.memsys.recorder.RunResult` through monitors.

    By default events are reconstructed per address: writes in the
    announced write-order, each process's reads flushed before its next
    write — the most permissive placement consistent with program
    order, which is what the offline write-order verifier also allows
    (so the two arms agree even when ``write_orders`` were corrupted
    post-run by a fault).  With ``use_commit_log=True`` the replay is
    the recorder's actual global commit stream instead — strictly
    faithful to *when* each read committed, hence possibly stricter
    than the offline check (a read served by a write serialized after
    it is flagged).
    """
    execution = run_result.execution
    monitors = SystemMonitor(initial=execution.initial, strict=strict)
    commit_log = getattr(run_result, "commit_log", None)
    if use_commit_log and commit_log:
        for op in commit_log:
            if op.kind.is_sync:
                continue
            if op.kind.writes:
                if op.kind.reads:
                    monitors.rmw(
                        op.proc, op.addr, op.value_read, op.value_written
                    )
                else:
                    monitors.write(op.proc, op.addr, op.value_written)
            else:
                monitors.read(op.proc, op.addr, op.value_read)
    else:
        # Reconstructed replay: walk each address's write order as the
        # clock; between write commits, flush each process's pending
        # reads that precede its next write in program order.
        for addr, order in sorted(
            run_result.write_orders.items(), key=lambda kv: str(kv[0])
        ):
            sub = execution.restrict_to_address(addr)
            pending = {h.proc: list(h.operations) for h in sub.histories}

            def flush_reads_before(proc: int, stop_uid) -> None:
                ops = pending[proc]
                while ops and ops[0].kind.reads and not ops[0].kind.writes:
                    if stop_uid is not None and ops[0].index >= stop_uid[1]:
                        break
                    op = ops.pop(0)
                    monitors.read(proc, addr, op.value_read)

            for w in order:
                flush_reads_before(w.proc, w.uid)
                ops = pending[w.proc]
                assert ops and ops[0].uid == w.uid, "write order out of sync"
                ops.pop(0)
                if w.kind.writes and w.kind.reads:
                    monitors.rmw(w.proc, addr, w.value_read, w.value_written)
                else:
                    monitors.write(w.proc, addr, w.value_written)
            for proc in pending:
                flush_reads_before(proc, None)
        # Addresses with reads but no writes at all:
        for addr in execution.addresses():
            if addr in run_result.write_orders:
                continue
            for h in execution.restrict_to_address(addr).histories:
                for op in h:
                    if op.kind.reads:
                        monitors.read(op.proc, addr, op.value_read)
    # End-of-run check against the machine's reported final values —
    # this is what catches silently dropped writes online.
    for addr, expected in execution.final.items():
        outcome = monitors._monitor(addr).final(expected)
        if outcome is not None:
            monitors.violations.append(outcome)
    return monitors
