"""Figure 6.1: extending the reductions to models that relax coherence.

Consistency models such as Lazy Release Consistency do not order plain
accesses to a location, so the Figure 4.1 instance alone says nothing
about them.  But every such model gives the programmer synchronization
primitives; bracketing *every* memory operation with an acquire/release
pair of one global lock forces the data operations to appear serialized
— and then the Figure 4.1 argument applies verbatim.  Hence verifying
adherence to these models is NP-Hard too (Section 6.2).

:func:`wrap_with_sync` performs the bracketing.  The library's
checkers give the wrapped instance exactly the semantics the argument
needs: under :func:`repro.consistency.lrc.lrc_holds`, properly-locked
operations must appear serialized per location, so the wrapped instance
is LRC-consistent iff the original instance is coherent — which tests
verify against the ground-truth VMC decision.
"""

from __future__ import annotations

from repro.core.types import Address, Execution, OpKind, Operation


def wrap_with_sync(execution: Execution, lock: Address = "lock") -> Execution:
    """Bracket every data operation with ``Acq(lock)`` / ``Rel(lock)``.

    Mirrors Figure 6.1: each ``R``/``W``/``RW`` in each history becomes
    the triple ``Acq, op, Rel``.  Existing sync operations are passed
    through unchanged.  Initial/final value constraints are preserved.
    """
    wrapped: list[list[Operation]] = []
    for h in execution.histories:
        ops: list[Operation] = []
        for op in h:
            if op.kind.is_sync:
                ops.append(op)
                continue
            ops.append(Operation(OpKind.ACQUIRE, lock, op.proc, 0))
            ops.append(op)
            ops.append(Operation(OpKind.RELEASE, lock, op.proc, 0))
        wrapped.append(ops)
    return Execution.from_ops(
        wrapped, initial=execution.initial, final=execution.final
    )


def strip_sync(execution: Execution) -> Execution:
    """Inverse of :func:`wrap_with_sync` (drops *all* sync operations)."""
    return execution.drop_sync_ops()


def critical_sections(execution: Execution, lock: Address) -> list[list[Operation]]:
    """The acquire-to-release blocks per process, for lock ``lock``.

    Used by the LRC checker: operations inside a critical section of the
    same lock must appear serialized across processes.  Raises
    ``ValueError`` on unbalanced acquire/release nesting — the wrapped
    instances this library builds are always properly bracketed.
    """
    sections: list[list[Operation]] = []
    for h in execution.histories:
        current: list[Operation] | None = None
        for op in h:
            if op.kind is OpKind.ACQUIRE and op.addr == lock:
                if current is not None:
                    raise ValueError(
                        f"nested acquire of {lock!r} in process {h.proc}"
                    )
                current = []
            elif op.kind is OpKind.RELEASE and op.addr == lock:
                if current is None:
                    raise ValueError(
                        f"release without acquire of {lock!r} in process {h.proc}"
                    )
                sections.append(current)
                current = None
            elif current is not None and not op.kind.is_sync:
                current.append(op)
        if current is not None:
            raise ValueError(f"unreleased acquire of {lock!r} in process {h.proc}")
    return sections
