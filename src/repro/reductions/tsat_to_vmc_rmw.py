"""Figure 5.2: 3SAT → VMC with only read-modify-writes, at most two
RMWs per process, and every value written at most three times.

.. note::
   The rendering of Figure 5.2 in the available copy of the paper is
   OCR-damaged, so this module is a *reconstruction*: a reduction with
   exactly the properties the paper states (all operations RMW, ≤2 per
   process, each value written ≤3 times), built from the same visible
   ingredients (baton values ``B_i`` threading the variable sections,
   per-clause tokens ``t_j`` / outputs ``c_j``, a final value ``d_F``).
   See DESIGN.md for the substitution note.

Because *every* operation is an RMW, a coherent schedule is a single
chain in which each operation reads exactly the value written by its
predecessor — a token machine: ``RW(x, y)`` consumes the current token
``x`` and leaves ``y``.  The construction:

* **Wave 1 (assignment):** ``h_1``'s first op turns the initial value
  into baton ``B_1``.  For each variable ``i`` both literals own a
  *path* of links ``B_i → x_{l,1} → … → B_{i+1}`` (one link per clause
  occurrence of the literal; a linkless literal gets one dummy link).
  Only one path per variable can consume the single ``B_i`` — the
  choice *is* the truth assignment.
* **Check:** ``h_1``'s second op turns ``B_{m+1}`` into clause token
  ``t_1``.  An occurrence of clause ``j`` (second op ``RW(t_j, c_j)``)
  can consume ``t_j`` only if its first op already ran — i.e. only if
  its literal was chosen in wave 1.  Forwarder ``F_j = RW(c_j,
  t_{j+1})`` advances the chain; ``F_n`` emits the wave-2 trigger.
* **Wave 2 (release):** the two-op gate ``T2 = [RW(W_2, W_2'),
  RW(B_{m+1}, s_1)]`` and starter ``S = RW(W_2', B_1)`` re-inject
  ``B_1`` so the *false* paths can run; program order inside ``T2``
  prevents it from stealing wave 1's ``B_{m+1}`` (the soundness-
  critical detail).
* **Sweep:** per clause, injectors ``G_{j,1} = RW(s_j, t_j)`` and
  ``G_{j,2} = RW(c_j, t_j)`` feed the two remaining occurrences and
  ``G_{j,3} = RW(c_j, s_{j+1})`` passes the sweep on; the last sweep
  op writes the required final value ``d_F``.

Write counts: ``t_j`` ×3, ``c_j`` ×3, ``B_i`` ×2, everything else ×1.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.types import INITIAL, Execution, Operation, rmw
from repro.sat.cnf import CNF, Assignment

ADDR = "a"

D_FINAL = ("final",)


def _baton(i: int) -> tuple:
    return ("B", i)


def _link_val(var: int, positive: bool, q: int) -> tuple:
    return ("x", var, positive, q)


def _token(j: int) -> tuple:
    return ("t", j)


def _clause_out(j: int) -> tuple:
    return ("c", j)


def _sweep(j: int) -> tuple:
    return ("s", j)


W2 = ("W2",)
W2P = ("W2'",)


@dataclass
class TsatToVmcRmw:
    """The RMW-only restricted reduction (reconstruction of Figure 5.2)."""

    cnf: CNF
    execution: Execution = field(init=False)
    literal_paths: dict[tuple[int, bool], list[int]] = field(init=False)

    def __post_init__(self) -> None:
        if any(len(c) != 3 for c in self.cnf.clauses):
            raise ValueError(
                "the RMW reduction requires exactly three literals per "
                "clause (repeats allowed); convert with "
                "repro.sat.random_sat.to_3sat first"
            )
        m = self.cnf.num_vars
        clauses = self.cnf.clauses
        n = len(clauses)
        histories: list[list[Operation]] = []

        def new_history(ops: list[Operation]) -> int:
            histories.append(ops)
            return len(histories) - 1

        # Occurrence lists per literal: (clause, literal position) pairs
        # in clause order.
        occurrences: dict[tuple[int, bool], list[tuple[int, int]]] = {}
        for j, clause in enumerate(clauses):
            for k, lit in enumerate(clause, start=1):
                occurrences.setdefault((abs(lit), lit > 0), []).append((j, k))

        # h_1: start wave 1; then B_{m+1} -> t_1 (or W_2 when n == 0).
        after_batons = _token(0) if n > 0 else W2
        self.h1 = new_history(
            [rmw(ADDR, INITIAL, _baton(1)), rmw(ADDR, _baton(m + 1), after_batons)]
        )

        # Literal paths: one 2-op history per occurrence (link, clause
        # op); a literal with no occurrences gets a single dummy link.
        self.literal_paths = {}
        self.occ_proc: dict[tuple[int, int], int] = {}  # (clause, k) -> proc
        for var in range(1, m + 1):
            for positive in (True, False):
                occ = occurrences.get((var, positive), [])
                length = len(occ)
                procs: list[int] = []
                for q, (j, k) in enumerate(occ):
                    src = (
                        _baton(var)
                        if q == 0
                        else _link_val(var, positive, q)
                    )
                    dst = (
                        _baton(var + 1)
                        if q == length - 1
                        else _link_val(var, positive, q + 1)
                    )
                    proc = new_history(
                        [rmw(ADDR, src, dst), rmw(ADDR, _token(j), _clause_out(j))]
                    )
                    procs.append(proc)
                    self.occ_proc[(j, k)] = proc
                if not occ:
                    procs.append(
                        new_history([rmw(ADDR, _baton(var), _baton(var + 1))])
                    )
                self.literal_paths[(var, positive)] = procs

        # Forwarders: F_j consumes c_j, emits t_{j+1}; F_n emits W_2.
        self.forwarders = []
        for j in range(n):
            dst = _token(j + 1) if j + 1 < n else W2
            self.forwarders.append(
                new_history([rmw(ADDR, _clause_out(j), dst)])
            )

        # Wave-2 gate and starter.
        sweep_start = _sweep(0) if n > 0 else D_FINAL
        self.t2 = new_history(
            [rmw(ADDR, W2, W2P), rmw(ADDR, _baton(m + 1), sweep_start)]
        )
        self.starter = new_history([rmw(ADDR, W2P, _baton(1))])

        # Sweep injectors per clause.
        self.injectors = []
        for j in range(n):
            g1 = new_history([rmw(ADDR, _sweep(j), _token(j))])
            g2 = new_history([rmw(ADDR, _clause_out(j), _token(j))])
            nxt = _sweep(j + 1) if j + 1 < n else D_FINAL
            g3 = new_history([rmw(ADDR, _clause_out(j), nxt)])
            self.injectors.append((g1, g2, g3))

        self.execution = Execution.from_ops(
            histories, initial={ADDR: INITIAL}, final={ADDR: D_FINAL}
        )

    # -- restriction properties ------------------------------------------
    @property
    def max_ops_per_process(self) -> int:
        return self.execution.max_ops_per_process()

    @property
    def max_writes_per_value(self) -> int:
        return self.execution.max_writes_per_value()

    @property
    def rmw_only(self) -> bool:
        return self.execution.is_rmw_only()

    # -- decoding ----------------------------------------------------------
    def decode_assignment(self, schedule: list[Operation]) -> Assignment:
        """T(u) = True iff the u-path's first link precedes the ū-path's."""
        pos = {op.uid: i for i, op in enumerate(schedule)}
        assignment: Assignment = {}
        for var in range(1, self.cnf.num_vars + 1):
            p_true = self.literal_paths[(var, True)][0]
            p_false = self.literal_paths[(var, False)][0]
            assignment[var] = pos[(p_true, 0)] < pos[(p_false, 0)]
        return assignment

    # -- constructive converse ---------------------------------------------
    def schedule_from_assignment(self, assignment: Assignment) -> list[Operation]:
        """Build the coherent schedule realizing a satisfying assignment."""
        if not self.cnf.evaluate(assignment):
            raise ValueError("assignment does not satisfy the formula")
        ex = self.execution
        h = {p: list(ex.histories[p].operations) for p in range(ex.num_processes)}
        m = self.cnf.num_vars
        clauses = self.cnf.clauses
        n = len(clauses)
        schedule: list[Operation] = []

        def run_paths(truth_selector: bool) -> None:
            # One full baton wave: for each variable, the links of the
            # selected literal's path, in order.
            for var in range(1, m + 1):
                chosen = assignment.get(var, False) == truth_selector
                lit = (var, chosen if truth_selector else not chosen)
                # truth_selector=True: run the true literal's path;
                # False: run the false literal's path.
                sel = (var, assignment.get(var, False)) if truth_selector else (
                    var,
                    not assignment.get(var, False),
                )
                for p in self.literal_paths[sel]:
                    schedule.append(h[p][0])

        # Wave 1.
        schedule.append(h[self.h1][0])
        run_paths(True)
        schedule.append(h[self.h1][1])  # B_{m+1} -> t_1 (or W_2)

        # Check: per clause, one satisfied occurrence answers the token.
        consumed: set[tuple[int, int]] = set()  # (proc, op-index) used
        for j, clause in enumerate(clauses):
            occ_proc = self._first_true_occurrence(j, clause, assignment)
            schedule.append(h[occ_proc][1])  # RW(t_j, c_j)
            consumed.add((occ_proc, 1))
            schedule.append(h[self.forwarders[j]][0])

        # Wave 2.
        schedule.append(h[self.t2][0])  # W_2 -> W_2'
        schedule.append(h[self.starter][0])  # W_2' -> B_1
        run_paths(False)
        schedule.append(h[self.t2][1])  # B_{m+1} -> s_1

        # Sweep: the two remaining occurrences per clause.
        for j, clause in enumerate(clauses):
            remaining = [
                p for p in self._occurrence_procs(j, clause) if (p, 1) not in consumed
            ]
            assert len(remaining) == 2, remaining
            g1, g2, g3 = self.injectors[j]
            schedule.append(h[g1][0])  # s_j -> t_j
            schedule.append(h[remaining[0]][1])  # t_j -> c_j
            schedule.append(h[g2][0])  # c_j -> t_j
            schedule.append(h[remaining[1]][1])  # t_j -> c_j
            schedule.append(h[g3][0])  # c_j -> s_{j+1} / d_F
        return schedule

    def _occurrence_procs(self, j: int, clause: list[int]) -> list[int]:
        return [self.occ_proc[(j, k)] for k in range(1, len(clause) + 1)]

    def _first_true_occurrence(
        self, j: int, clause: list[int], assignment: Assignment
    ) -> int:
        for k, lit in enumerate(clause):
            if assignment.get(abs(lit), False) == (lit > 0):
                return self._occurrence_procs(j, clause)[k]
        raise AssertionError(f"clause {j} unsatisfied")

    def describe(self) -> str:
        m, n = self.cnf.num_vars, self.cnf.num_clauses
        return (
            f"3SAT(m={m}, n={n}) -> RMW-VMC({self.execution.num_processes} "
            f"histories, {self.execution.num_ops} ops; "
            f"max RMWs/process={self.max_ops_per_process}, "
            f"max writes/value={self.max_writes_per_value})"
        )
