"""Figure 4.1: the general SAT → VMC reduction (Theorem 4.2).

Given a SAT instance with variables ``u_1..u_m`` and clauses
``c_1..c_n``, build a single-address execution with ``2m+3`` process
histories and ``O(mn)`` operations such that a coherent schedule exists
iff the formula is satisfiable:

* ``h_1`` writes ``d_{u_i}`` for every variable, ``h_2`` writes
  ``d_{ū_i}``; the interleaving order of each pair encodes the truth
  assignment (equation 4.1: ``W(d_u) before W(d_ū)  ⇔  T(u) = True``);
* per literal ``l`` a history ``h_l`` reads the pair in the order that
  corresponds to the literal being *true*, then writes the clause value
  ``d_c`` for every clause containing ``l``;
* ``h_3`` reads every clause value (possible only if every clause has a
  true literal), then re-writes all variable values so the histories of
  *false* literals can finally run.

The class also implements both directions of Lemma 4.3 constructively:
:meth:`decode_assignment` extracts ``T`` from any coherent schedule and
:meth:`schedule_from_assignment` builds a coherent schedule from any
satisfying ``T`` (the paper's converse argument, made executable).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.types import Execution, Operation, read, write
from repro.sat.cnf import CNF, Assignment

# Value naming: d_u -> ("u", i, True), d_ū -> ("u", i, False),
# d_c -> ("c", j).  Tuples keep values hashable and self-describing.
ADDR = "a"


def _d_lit(var: int, positive: bool) -> tuple:
    return ("u", var, positive)


def _d_clause(j: int) -> tuple:
    return ("c", j)


@dataclass
class SatToVmc:
    """The Figure 4.1 construction for one CNF formula.

    Attributes after construction:

    * ``execution`` — the VMC instance (single address, no final-value
      constraint, fresh initial value);
    * ``num_histories`` — ``2m + 3`` (paper's stated size);
    * ``literal_proc`` — process index of each literal history.
    """

    cnf: CNF
    execution: Execution = field(init=False)
    literal_proc: dict[tuple[int, bool], int] = field(init=False)

    # Process numbering: 0 = h1, 1 = h2, 2 = h3, then literal histories.
    H1, H2, H3 = 0, 1, 2

    def __post_init__(self) -> None:
        m = self.cnf.num_vars
        clauses = self.cnf.clauses
        variables = list(range(1, m + 1))

        h1 = [write(ADDR, _d_lit(u, True)) for u in variables]
        h2 = [write(ADDR, _d_lit(u, False)) for u in variables]
        h3 = [read(ADDR, _d_clause(j)) for j in range(len(clauses))]
        for u in variables:
            h3.append(write(ADDR, _d_lit(u, True)))
            h3.append(write(ADDR, _d_lit(u, False)))

        # Clause memberships per literal, in clause order (the ordered
        # list D_l of the figure).  Duplicate occurrences collapse.
        membership: dict[tuple[int, bool], list[int]] = {}
        for j, clause in enumerate(clauses):
            for lit in clause:
                key = (abs(lit), lit > 0)
                lst = membership.setdefault(key, [])
                if not lst or lst[-1] != j:
                    lst.append(j)

        histories: list[list[Operation]] = [h1, h2, h3]
        self.literal_proc = {}
        for u in variables:
            for positive in (True, False):
                ops = [
                    read(ADDR, _d_lit(u, positive)),
                    read(ADDR, _d_lit(u, not positive)),
                ]
                for j in membership.get((u, positive), []):
                    ops.append(write(ADDR, _d_clause(j)))
                self.literal_proc[(u, positive)] = len(histories)
                histories.append(ops)

        self.execution = Execution.from_ops(histories)

    # -- paper-stated size properties ----------------------------------
    @property
    def num_histories(self) -> int:
        return self.execution.num_processes

    @property
    def num_operations(self) -> int:
        return self.execution.num_ops

    # -- decoding -------------------------------------------------------
    def decode_assignment(self, schedule: list[Operation]) -> Assignment:
        """Read the truth assignment off a coherent schedule (eq. 4.1).

        ``T(u)`` is true iff ``h_1``'s write of ``d_u`` precedes
        ``h_2``'s write of ``d_ū``.
        """
        pos: dict[tuple[int, int], int] = {
            op.uid: i for i, op in enumerate(schedule)
        }
        m = self.cnf.num_vars
        assignment: Assignment = {}
        for u in range(1, m + 1):
            # h1's i-th op writes d_{u_i}; h2's i-th writes d_{ū_i}.
            p1 = pos[(self.H1, u - 1)]
            p2 = pos[(self.H2, u - 1)]
            assignment[u] = p1 < p2
        return assignment

    # -- the constructive converse (Lemma 4.3, part 2) -------------------
    def schedule_from_assignment(self, assignment: Assignment) -> list[Operation]:
        """Build a coherent schedule from a satisfying assignment.

        Raises ``ValueError`` if the assignment does not satisfy the
        formula (then no schedule following the construction exists).
        """
        if not self.cnf.evaluate(assignment):
            raise ValueError("assignment does not satisfy the formula")
        ex = self.execution
        m = self.cnf.num_vars
        h = {p: list(ex.histories[p].operations) for p in range(ex.num_processes)}
        schedule: list[Operation] = []

        # Phase 1: interleave h1/h2 per equation 4.1, serving the first
        # two reads of every *true*-literal history inline, plus the
        # first read of every *false*-literal history (it reads the
        # second-written value).
        for u in range(1, m + 1):
            t = assignment.get(u, False)
            first_writer, second_writer = (self.H1, self.H2) if t else (self.H2, self.H1)
            true_lit = self.literal_proc[(u, t)]
            false_lit = self.literal_proc[(u, not t)]
            schedule.append(h[first_writer][u - 1])
            schedule.append(h[true_lit][0])  # R(first value)
            schedule.append(h[second_writer][u - 1])
            schedule.append(h[true_lit][1])  # R(second value)
            schedule.append(h[false_lit][0])  # also reads the second value

        # Phase 2: clause writes of true literals, merged in clause
        # order with h3's clause reads.
        true_procs = [
            self.literal_proc[(u, assignment.get(u, False))]
            for u in range(1, m + 1)
        ]
        cursor = {p: 2 for p in true_procs}  # next unscheduled op index
        for j in range(len(self.cnf.clauses)):
            served = False
            for p in true_procs:
                ops = h[p]
                while cursor[p] < len(ops) and ops[cursor[p]].value_written == _d_clause(j):
                    schedule.append(ops[cursor[p]])
                    cursor[p] += 1
                    served = True
            if not served:
                raise AssertionError(
                    f"clause {j} unserved despite satisfying assignment"
                )
            schedule.append(h[self.H3][j])  # R(d_c_j)

        # Phase 3: h3 re-writes every variable's pair (always d_u then
        # d_ū — the fixed order of the construction); the false-literal
        # history's remaining read is served right after the matching
        # re-write.  Its trailing clause writes are dead writes: flushed
        # at the very end, where nothing reads anymore.
        n_clauses = len(self.cnf.clauses)
        tail: list[Operation] = []
        for u in range(1, m + 1):
            t = assignment.get(u, False)
            false_lit = self.literal_proc[(u, not t)]
            w_pos = h[self.H3][n_clauses + 2 * (u - 1)]  # W(d_u)
            w_neg = h[self.H3][n_clauses + 2 * (u - 1) + 1]  # W(d_ū)
            if t:
                # False literal is h_ū; its pending second read is
                # R(d_u), served between the re-writes.
                schedule.extend([w_pos, h[false_lit][1], w_neg])
            else:
                # False literal is h_u; its pending second read is
                # R(d_ū), served after both re-writes.
                schedule.extend([w_pos, w_neg, h[false_lit][1]])
            tail.extend(h[false_lit][2:])
        schedule.extend(tail)
        return schedule

    def describe(self) -> str:
        """Human-readable summary (paper's size claims)."""
        m, n = self.cnf.num_vars, self.cnf.num_clauses
        return (
            f"SAT(m={m} vars, n={n} clauses) -> VMC("
            f"{self.num_histories} histories = 2m+3, "
            f"{self.num_operations} operations)"
        )


def fig_4_2_example() -> SatToVmc:
    """The worked example of Figure 4.2: the formula Q = u (one variable,
    one unit clause).  The resulting instance has histories
    h1=[W(d_u)], h2=[W(d_ū)], h3=[R(d_c), W(d_u), W(d_ū)],
    h_u=[R(d_u), R(d_ū), W(d_c)], h_ū=[R(d_ū), R(d_u)]."""
    cnf = CNF(num_vars=1)
    cnf.add_clause([1])
    return SatToVmc(cnf)
