"""The paper's reductions, as executable constructions.

Each module builds the instance a figure of the paper describes and
packages it with decoding machinery, so tests and benchmarks can verify
*faithfulness* in both directions:

* satisfiable formula ⇒ the constructed execution is coherent/SC, and a
  witness schedule decodes back to a satisfying assignment;
* unsatisfiable formula ⇒ the constructed execution has no legal
  schedule.

Modules:

* :mod:`repro.reductions.sat_to_vmc` — Figure 4.1 (general SAT → VMC)
  and the Figure 4.2 worked example;
* :mod:`repro.reductions.tsat_to_vmc_restricted` — Figure 5.1 (3SAT →
  VMC with ≤3 operations/process and values written at most twice);
* :mod:`repro.reductions.tsat_to_vmc_rmw` — Figure 5.2 (3SAT → VMC with
  ≤2 RMWs/process and values written at most three times);
* :mod:`repro.reductions.sat_to_vscc` — Figure 6.2 (SAT → VSCC,
  coherent by construction, Figure 6.3);
* :mod:`repro.reductions.sync_wrap` — Figure 6.1 (acquire/release
  wrapping for models that relax coherence, e.g. LRC).
"""

from repro.reductions.sat_to_vmc import SatToVmc, fig_4_2_example
from repro.reductions.tsat_to_vmc_restricted import TsatToVmcRestricted
from repro.reductions.tsat_to_vmc_rmw import TsatToVmcRmw
from repro.reductions.sat_to_vscc import SatToVscc
from repro.reductions.sync_wrap import wrap_with_sync

__all__ = [
    "SatToVmc",
    "fig_4_2_example",
    "TsatToVmcRestricted",
    "TsatToVmcRmw",
    "SatToVscc",
    "wrap_with_sync",
]
