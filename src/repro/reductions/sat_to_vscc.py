"""Figure 6.2: SAT → VSCC (sequential consistency of *coherent* executions).

Given a SAT instance with ``m`` variables and ``n`` clauses, build an
execution over ``2m+3`` processes and ``m+n+1`` shared locations that is
**coherent by construction** (Figure 6.3) yet has a sequentially
consistent schedule iff the formula is satisfiable — the paper's proof
that the coherence promise does not make VSC tractable.

Layout (values ``d_X``, ``d_Y``, ``d_Z``):

* one location ``a_{u_i}`` per variable; ``h_1`` writes ``d_X`` to each,
  ``h_2`` writes ``d_Y``; the order of the two writes *to that location*
  encodes ``T(u_i)`` (equation 6.1);
* literal histories ``h_{u_i}`` / ``h_{ū_i}`` read the pair in their
  truth order, then write ``d_Z`` to ``a_{c_j}`` for each clause ``c_j``
  containing the literal;
* ``h_3`` reads ``d_Z`` from every clause location, then writes the
  release location ``a_Δ``;
* after reading ``a_Δ``, ``h_1`` and ``h_2`` re-write every variable
  location with the *opposite* values, releasing false literals.

Coherence per address (Figure 6.3): each ``a_{u_i}`` sees writes
``X,Y`` then ``Y,X`` — interleave the uncomplemented literal's reads
with ``h_1`` and the complemented with ``h_2``; each ``a_{c_j}`` and
``a_Δ`` only ever holds ``d_Z``.  :func:`per_address_schedules` returns
those witnesses explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.types import Execution, Operation, read, write
from repro.sat.cnf import CNF, Assignment

D_X = "X"
D_Y = "Y"
D_Z = "Z"


def a_var(i: int) -> tuple:
    return ("a_u", i)


def a_clause(j: int) -> tuple:
    return ("a_c", j)


A_DELTA = ("a_delta",)


@dataclass
class SatToVscc:
    """The Figure 6.2 construction for one CNF formula."""

    cnf: CNF
    execution: Execution = field(init=False)
    literal_proc: dict[tuple[int, bool], int] = field(init=False)

    H1, H2, H3 = 0, 1, 2

    def __post_init__(self) -> None:
        m = self.cnf.num_vars
        clauses = self.cnf.clauses
        n = len(clauses)
        variables = list(range(1, m + 1))

        h1 = [write(a_var(u), D_X) for u in variables]
        h1.append(read(A_DELTA, D_Z))
        h1.extend(write(a_var(u), D_Y) for u in variables)

        h2 = [write(a_var(u), D_Y) for u in variables]
        h2.append(read(A_DELTA, D_Z))
        h2.extend(write(a_var(u), D_X) for u in variables)

        h3 = [read(a_clause(j), D_Z) for j in range(n)]
        h3.append(write(A_DELTA, D_Z))

        membership: dict[tuple[int, bool], list[int]] = {}
        for j, clause in enumerate(clauses):
            for lit in clause:
                key = (abs(lit), lit > 0)
                lst = membership.setdefault(key, [])
                if not lst or lst[-1] != j:
                    lst.append(j)

        histories: list[list[Operation]] = [h1, h2, h3]
        self.literal_proc = {}
        for u in variables:
            for positive in (True, False):
                first, second = (D_X, D_Y) if positive else (D_Y, D_X)
                ops = [read(a_var(u), first), read(a_var(u), second)]
                ops.extend(
                    write(a_clause(j), D_Z)
                    for j in membership.get((u, positive), [])
                )
                self.literal_proc[(u, positive)] = len(histories)
                histories.append(ops)

        self.execution = Execution.from_ops(histories)

    # -- paper-stated size properties ------------------------------------
    @property
    def num_processes(self) -> int:
        return self.execution.num_processes  # 2m + 3

    @property
    def num_addresses(self) -> int:
        return len(self.execution.addresses())  # m + n + 1

    # -- Figure 6.3: coherence witnesses --------------------------------
    def per_address_schedules(self) -> dict:
        """One coherent schedule per address (the instance's promise).

        Variable locations follow Figure 6.3: the uncomplemented
        literal's reads interleaved with ``h_1``'s two writes, then the
        complemented literal's reads interleaved with ``h_2``'s.
        Clause locations hold only ``d_Z``: one write, the reader, then
        the remaining (idempotent) writes.  ``a_Δ`` has a single write
        followed by its readers.
        """
        ex = self.execution
        m = self.cnf.num_vars
        n = len(self.cnf.clauses)
        out: dict = {}
        for u in range(1, m + 1):
            addr = a_var(u)
            h1w1 = ex.histories[self.H1][u - 1]
            h1w2 = ex.histories[self.H1][m + 1 + (u - 1)]
            h2w1 = ex.histories[self.H2][u - 1]
            h2w2 = ex.histories[self.H2][m + 1 + (u - 1)]
            pos_lit = ex.histories[self.literal_proc[(u, True)]]
            neg_lit = ex.histories[self.literal_proc[(u, False)]]
            # Block A: h1 writes X, h_u reads X; h1 (phase 2) writes Y,
            # h_u reads Y.  Block B symmetric with h2 / h_ū.
            out[addr] = [
                h1w1, pos_lit[0], h1w2, pos_lit[1],
                h2w1, neg_lit[0], h2w2, neg_lit[1],
            ]
        for j in range(n):
            addr = a_clause(j)
            writes_j = [
                op
                for h in ex.histories
                for op in h
                if op.addr == addr and op.kind.writes
            ]
            if not writes_j:
                raise ValueError(
                    f"clause {j} is empty: no literal history writes "
                    f"{addr!r}, so the instance is not coherent"
                )
            out[addr] = [writes_j[0], ex.histories[self.H3][j]] + writes_j[1:]
        # a_Δ: the single write, then its readers.
        out[A_DELTA] = [
            ex.histories[self.H3][n],
            ex.histories[self.H1][m],
            ex.histories[self.H2][m],
        ]
        return out

    # -- decoding ---------------------------------------------------------
    def decode_assignment(self, schedule: list[Operation]) -> Assignment:
        """Equation 6.1: T(u) iff W(a_u, d_X) precedes W(a_u, d_Y)."""
        pos = {op.uid: i for i, op in enumerate(schedule)}
        assignment: Assignment = {}
        for u in range(1, self.cnf.num_vars + 1):
            assignment[u] = pos[(self.H1, u - 1)] < pos[(self.H2, u - 1)]
        return assignment

    # -- constructive converse ---------------------------------------------
    def schedule_from_assignment(self, assignment: Assignment) -> list[Operation]:
        """Build a sequentially consistent schedule from a model."""
        if not self.cnf.evaluate(assignment):
            raise ValueError("assignment does not satisfy the formula")
        ex = self.execution
        m = self.cnf.num_vars
        n = len(self.cnf.clauses)
        h = {p: list(ex.histories[p].operations) for p in range(ex.num_processes)}
        schedule: list[Operation] = []

        # Phase 1: first-phase writes in truth order per variable;
        # true-literal reads inline; false literal's first read too.
        for u in range(1, m + 1):
            t = assignment.get(u, False)
            true_lit = self.literal_proc[(u, t)]
            false_lit = self.literal_proc[(u, not t)]
            w_first = h[self.H1][u - 1] if t else h[self.H2][u - 1]
            w_second = h[self.H2][u - 1] if t else h[self.H1][u - 1]
            schedule.append(w_first)
            schedule.append(h[true_lit][0])
            schedule.append(w_second)
            schedule.append(h[true_lit][1])
            schedule.append(h[false_lit][0])

        # Phase 2: true literals' clause writes, h3's reads, the release.
        true_procs = [
            self.literal_proc[(u, assignment.get(u, False))]
            for u in range(1, m + 1)
        ]
        for p in true_procs:
            schedule.extend(h[p][2:])
        schedule.extend(h[self.H3])  # reads of d_Z then W(a_Δ)

        # Phase 3: h1/h2 read the release, re-write opposite values,
        # serving each false literal's pending read at the right moment.
        schedule.append(h[self.H1][m])  # R(a_Δ)
        schedule.append(h[self.H2][m])
        for u in range(1, m + 1):
            t = assignment.get(u, False)
            false_lit = self.literal_proc[(u, not t)]
            h1w2 = h[self.H1][m + 1 + (u - 1)]  # W(a_u, d_Y)
            h2w2 = h[self.H2][m + 1 + (u - 1)]  # W(a_u, d_X)
            if t:
                # h_ū pending read is R(a_u, d_X): h1's Y write first.
                schedule.extend([h1w2, h2w2, h[false_lit][1]])
            else:
                # h_u pending read is R(a_u, d_Y): h2's X write first.
                schedule.extend([h2w2, h1w2, h[false_lit][1]])

        # Tail: false literals' clause writes (locations already d_Z).
        for u in range(1, m + 1):
            t = assignment.get(u, False)
            schedule.extend(h[self.literal_proc[(u, not t)]][2:])
        return schedule

    def describe(self) -> str:
        m, n = self.cnf.num_vars, self.cnf.num_clauses
        return (
            f"SAT(m={m}, n={n}) -> VSCC({self.num_processes} processes "
            f"= 2m+3, {self.num_addresses} addresses = m+n+1, "
            f"{self.execution.num_ops} ops)"
        )
