"""Solving SAT *through* the reductions (round-trip utilities).

Mostly a demonstration vehicle: ``solve_sat_via_vmc`` reduces a formula
to a VMC instance (Figure 4.1), decides it with a coherence verifier,
and decodes the witness schedule back into a satisfying assignment.
Used by ``examples/sat_via_coherence.py`` and the equivalence tests —
an end-to-end proof that the reductions are faithful.
"""

from __future__ import annotations

from repro.core.vmc import verify_coherence
from repro.core.vsc import verify_sequential_consistency
from repro.reductions.sat_to_vmc import SatToVmc
from repro.reductions.sat_to_vscc import SatToVscc
from repro.sat.cnf import CNF, Assignment


def solve_sat_via_vmc(cnf: CNF, method: str = "auto") -> Assignment | None:
    """Decide ``cnf`` by reducing to VMC and verifying coherence.

    Returns a satisfying assignment decoded from the witness schedule,
    or ``None`` when the formula is unsatisfiable (the VMC instance has
    no coherent schedule).
    """
    reduction = SatToVmc(cnf)
    result = verify_coherence(reduction.execution, method=method)
    if not result:
        return None
    if result.schedule is None:
        raise RuntimeError(
            f"verifier ({result.method}) said coherent but gave no witness"
        )
    assignment = reduction.decode_assignment(result.schedule)
    if not cnf.evaluate(assignment):
        raise RuntimeError(
            "decoded assignment does not satisfy the formula — the "
            "reduction or the verifier is broken"
        )
    return assignment


def solve_sat_via_vscc(cnf: CNF, method: str = "auto") -> Assignment | None:
    """Decide ``cnf`` by reducing to VSCC and verifying SC.

    The constructed execution is coherent by construction (Figure 6.3),
    so this exercises the paper's point that the NP-hardness survives
    the coherence promise.
    """
    reduction = SatToVscc(cnf)
    result = verify_sequential_consistency(reduction.execution, method=method)
    if not result:
        return None
    if result.schedule is None:
        raise RuntimeError(
            f"verifier ({result.method}) said SC but gave no witness"
        )
    assignment = reduction.decode_assignment(result.schedule)
    if not cnf.evaluate(assignment):
        raise RuntimeError(
            "decoded assignment does not satisfy the formula — the "
            "reduction or the verifier is broken"
        )
    return assignment
