"""Figure 5.1: 3SAT → VMC with ≤3 operations per process and every
value written at most twice.

The Figure 4.1 construction concentrates long histories in ``h_1``,
``h_2``, ``h_3`` and lets clause values be written once per satisfying
literal.  To meet the restrictions, every long history is shredded into
≤3-op pieces:

* ``h_{1,r}`` / ``h_{2,r}`` — the variable-value writers, three writes
  per history (chunks of the old ``h_1``/``h_2``);
* ``h_{l,q}`` — one history per *occurrence* ``q`` of literal ``l``:
  the two truth-order reads, then the single write of that occurrence's
  clause value ``d_{c_j,k}`` (``l`` is the ``k``-th literal of ``c_j``);
* ``h_{3,k,j}`` — a 3-cycle per clause: ``R(d_{c_j,k}) W(d_{c_j,k+1})``
  (indices mod 3), so *any one* literal write unlocks all three clause
  values, in particular ``d_{c_j,1}``;
* ``V_j`` — the verification chain: ``R(y_{j-1}) R(d_{c_j,1}) W(y_j)``.
  The chain values ``y_j`` are written exactly once, so ``y_n`` is
  unforgeable: it exists only after every clause, in order, produced
  its ``d_{c_j,1}``;
* ``h_{4,i}`` — per variable: the gate read ``R(y_n)`` then the
  re-writes ``W(d_{u_i}) W(d_{ū_i})`` releasing the false literals.

.. note::
   The copy of the paper available to us renders Figure 5.1 with the
   inter-clause sequencing folded into ``h_{3,1,j}`` (a leading read of
   ``d_{c_{j-1},1}``) and the gate reading ``d_{c_n,1}``.  As stated,
   that gate is forgeable: if the *last* clause is satisfied by its
   first literal, ``d_{c_n,1}`` is written directly and the release
   writes can then retroactively bootstrap every earlier clause with
   false literals, making some unsatisfiable formulas map to coherent
   executions.  We therefore use the dedicated once-written chain
   values ``y_j`` above.  This keeps every stated restriction (the
   ``y_j`` are written once; ``V_j`` has three operations) and the same
   size; see DESIGN.md.

Every clause value ``d_{c_j,k}`` is written by exactly two histories
(the occurrence history of the k-th literal and ``h_{3,k-1,j}``), each
variable value by two (its chunk and ``h_{4,i}``), and each ``y_j`` by
one — the "2 writes per value" cell of Figure 5.3.  No history exceeds
three operations — the "3 operations per process" cell.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.types import Execution, Operation, read, write
from repro.sat.cnf import CNF, Assignment

ADDR = "a"


def _d_var(var: int, positive: bool) -> tuple:
    return ("u", var, positive)


def _d_clause(j: int, k: int) -> tuple:
    """Clause value d_{c_j,k}; j is 0-based clause index, k in 1..3."""
    return ("c", j, k)


def _d_chain(j: int) -> tuple:
    """Verification-chain value y_j (0-based; y_{n-1} is the gate)."""
    return ("y", j)


@dataclass
class TsatToVmcRestricted:
    """The Figure 5.1 construction for one strict 3SAT formula."""

    cnf: CNF
    execution: Execution = field(init=False)
    chunk1_proc: list[int] = field(init=False)  # per-chunk process ids
    chunk2_proc: list[int] = field(init=False)
    occurrence_procs: dict[tuple[int, bool], list[int]] = field(init=False)
    cycle_proc: dict[tuple[int, int], int] = field(init=False)  # (k, j)
    chain_proc: list[int] = field(init=False)  # V_j per clause
    h4_proc: list[int] = field(init=False)  # per variable

    def __post_init__(self) -> None:
        if any(len(c) != 3 for c in self.cnf.clauses):
            raise ValueError(
                "Figure 5.1 requires exactly three literals per clause "
                "(repeats allowed); convert with "
                "repro.sat.random_sat.to_3sat first"
            )
        m = self.cnf.num_vars
        clauses = self.cnf.clauses
        n = len(clauses)

        histories: list[list[Operation]] = []

        def new_history(ops: list[Operation]) -> int:
            histories.append(ops)
            return len(histories) - 1

        # Variable-writer chunks (3 writes max per history).
        self.chunk1_proc = []
        self.chunk2_proc = []
        for start in range(1, m + 1, 3):
            block = list(range(start, min(start + 3, m + 1)))
            self.chunk1_proc.append(
                new_history([write(ADDR, _d_var(u, True)) for u in block])
            )
            self.chunk2_proc.append(
                new_history([write(ADDR, _d_var(u, False)) for u in block])
            )

        # Literal occurrence histories.
        self.occurrence_procs = {}
        for j, clause in enumerate(clauses):
            for k, lit in enumerate(clause, start=1):
                u, positive = abs(lit), lit > 0
                ops = [
                    read(ADDR, _d_var(u, positive)),
                    read(ADDR, _d_var(u, not positive)),
                    write(ADDR, _d_clause(j, k)),
                ]
                self.occurrence_procs.setdefault((u, positive), []).append(
                    new_history(ops)
                )

        # Per-clause 3-cycles.
        self.cycle_proc = {}
        for j in range(n):
            for k in (1, 2, 3):
                self.cycle_proc[(k, j)] = new_history(
                    [
                        read(ADDR, _d_clause(j, k)),
                        write(ADDR, _d_clause(j, k % 3 + 1)),
                    ]
                )

        # Verification chain V_j (y values are written exactly once).
        self.chain_proc = []
        for j in range(n):
            ops = []
            if j > 0:
                ops.append(read(ADDR, _d_chain(j - 1)))
            ops.append(read(ADDR, _d_clause(j, 1)))
            ops.append(write(ADDR, _d_chain(j)))
            self.chain_proc.append(new_history(ops))

        # h_{4,i}: gate on y_n, then re-write the pair.
        self.h4_proc = []
        for u in range(1, m + 1):
            ops = []
            if n > 0:
                ops.append(read(ADDR, _d_chain(n - 1)))
            ops.append(write(ADDR, _d_var(u, True)))
            ops.append(write(ADDR, _d_var(u, False)))
            self.h4_proc.append(new_history(ops))

        self.execution = Execution.from_ops(histories)

    # -- restriction properties (asserted by tests/benchmarks) ----------
    @property
    def max_ops_per_process(self) -> int:
        return self.execution.max_ops_per_process()

    @property
    def max_writes_per_value(self) -> int:
        return self.execution.max_writes_per_value()

    # -- decoding --------------------------------------------------------
    def decode_assignment(self, schedule: list[Operation]) -> Assignment:
        """T(u) = True iff the chunk write of d_u precedes that of d_ū."""
        pos = {op.uid: i for i, op in enumerate(schedule)}
        assignment: Assignment = {}
        for u in range(1, self.cnf.num_vars + 1):
            chunk = (u - 1) // 3
            offset = (u - 1) % 3
            p1 = pos[(self.chunk1_proc[chunk], offset)]
            p2 = pos[(self.chunk2_proc[chunk], offset)]
            assignment[u] = p1 < p2
        return assignment

    # -- constructive converse -------------------------------------------
    def schedule_from_assignment(self, assignment: Assignment) -> list[Operation]:
        """Build a coherent schedule from a satisfying assignment."""
        if not self.cnf.evaluate(assignment):
            raise ValueError("assignment does not satisfy the formula")
        ex = self.execution
        h = {p: list(ex.histories[p].operations) for p in range(ex.num_processes)}
        m = self.cnf.num_vars
        clauses = self.cnf.clauses
        n = len(clauses)
        schedule: list[Operation] = []

        # Phase 1: interleave the chunk writes per the assignment; serve
        # all true-occurrence reads inline and the first read of every
        # false occurrence (it reads the second-written value).
        for u in range(1, m + 1):
            t = assignment.get(u, False)
            chunk = (u - 1) // 3
            offset = (u - 1) % 3
            w_true = h[self.chunk1_proc[chunk]][offset]
            w_false = h[self.chunk2_proc[chunk]][offset]
            first_w, second_w = (w_true, w_false) if t else (w_false, w_true)
            true_occ = self.occurrence_procs.get((u, t), [])
            false_occ = self.occurrence_procs.get((u, not t), [])
            schedule.append(first_w)
            schedule.extend(h[p][0] for p in true_occ)
            schedule.append(second_w)
            schedule.extend(h[p][1] for p in true_occ)
            schedule.extend(h[p][0] for p in false_occ)

        # Phase 2: per clause in order, fire one satisfying occurrence
        # write, run the 3-cycle from it, serving V_j's clause read the
        # first time d_{c_j,1} is current, and append V_j's chain ops
        # around the cycle.  Occurrence writes not chosen here are dead
        # writes, flushed at the very end.
        fired_occurrences: set[int] = set()
        for j, clause in enumerate(clauses):
            if j > 0:
                # V_j's leading chain read: y_{j-1} is current (V_{j-1}
                # wrote it at the end of the previous iteration).
                schedule.append(h[self.chain_proc[j]][0])
            k_star = next(
                k
                for k, lit in enumerate(clause, start=1)
                if assignment.get(abs(lit), False) == (lit > 0)
            )
            lit = clause[k_star - 1]
            u, positive = abs(lit), lit > 0
            occ = next(
                p
                for p in self.occurrence_procs[(u, positive)]
                if h[p][2].value_written == _d_clause(j, k_star)
            )
            v_clause_read = h[self.chain_proc[j]][1 if j > 0 else 0]
            v_read_emitted = False

            schedule.append(h[occ][2])  # W(d_{c_j,k*})
            fired_occurrences.add(occ)
            if k_star == 1:
                schedule.append(v_clause_read)
                v_read_emitted = True
            for step in range(3):
                k = (k_star - 1 + step) % 3 + 1
                cyc = self.cycle_proc[(k, j)]
                schedule.append(h[cyc][0])  # R(d_{c_j,k})
                schedule.append(h[cyc][1])  # W(d_{c_j,k%3+1})
                if k % 3 + 1 == 1 and not v_read_emitted:
                    schedule.append(v_clause_read)
                    v_read_emitted = True
            assert v_read_emitted
            schedule.append(h[self.chain_proc[j]][2 if j > 0 else 1])  # W(y_j)

        # Phase 3: h4 gates then re-writes release the false occurrences.
        gate = 1 if n > 0 else 0
        if n > 0:
            for p in self.h4_proc:
                schedule.append(h[p][0])  # R(y_n); y_n is current
        tail: list[Operation] = []
        for u in range(1, m + 1):
            t = assignment.get(u, False)
            h4 = h[self.h4_proc[u - 1]]
            false_occ = self.occurrence_procs.get((u, not t), [])
            w_pos, w_neg = h4[gate], h4[gate + 1]  # W(d_u), W(d_ū)
            if t:
                schedule.append(w_pos)
                schedule.extend(h[p][1] for p in false_occ)  # R(d_u)
                schedule.append(w_neg)
            else:
                schedule.append(w_pos)
                schedule.append(w_neg)
                schedule.extend(h[p][1] for p in false_occ)  # R(d_ū)
            tail.extend(h[p][2] for p in false_occ)
            tail.extend(
                h[p][2]
                for p in self.occurrence_procs.get((u, t), [])
                if p not in fired_occurrences
            )
        schedule.extend(tail)
        return schedule

    def describe(self) -> str:
        m, n = self.cnf.num_vars, self.cnf.num_clauses
        return (
            f"3SAT(m={m}, n={n}) -> VMC({self.execution.num_processes} "
            f"histories, {self.execution.num_ops} ops; "
            f"max ops/process={self.max_ops_per_process}, "
            f"max writes/value={self.max_writes_per_value})"
        )
