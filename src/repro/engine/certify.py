"""The trusted certificate checker: independent validation of verdicts.

The paper's §4 NP-membership argument gives HOLDS verdicts a natural
certificate — the witness schedule, replayed op-by-op by
:mod:`repro.core.checker`.  This module closes the *no*-side gap: every
VIOLATED verdict can carry one of three refutation certificates
(:class:`repro.core.result.Certificate`), and :func:`validate_result`
checks any of them against the **raw trace alone**, sharing no state
with the solver stack that produced the verdict:

``witness``
    Replay the schedule (program order, exact op multiset, value trace).
``infeasible``
    Re-scan the trace for the claimed value-level impossibility (a read
    of a never-written value, a final value nobody writes, …).
``cycle``
    Replay a happens-before derivation: each axiom step (``po``, ``rf``,
    ``init``, ``fin``, ``finr``) is re-proved directly from the trace;
    each closure step (``wr``, ``fr``) must cite a previously validated
    forced reads-from pair and a reachability fact over previously
    validated edges; finally the claimed cycle must consist of validated
    edges.  Every validated edge holds in every coherent (and hence
    every SC) schedule, so a validated cycle is a refutation.
``rup``
    Re-derive the CNF encoding from the trace (the *encoding audit*:
    a proof can only refute the formula the trace actually induces,
    never a stale or doctored one) and check the DRAT-style proof with
    :func:`repro.sat.drat.check_rup`.
``order``
    A Section 5.2 refutation: the trace is unschedulable *under the
    supplied write-order* (the raw trace alone may be coherent, so
    none of the trace-only kinds can exist).  The checker demands the
    certificate name exactly the order the instance supplies, then
    re-decides the augmented instance with an independent
    gap-placement pass (:func:`_order_infeasible`) — a from-scratch
    reimplementation of the decision procedure, sharing no code with
    :mod:`repro.core.writeorder`, so producer and checker agreeing is
    a differential test, not a tautology.  Symmetrically, when an
    instance supplies a write-order, a HOLDS witness must *respect*
    it: a schedule whose writes deviate from the reported
    serialization does not witness the augmented instance.

The checker is deliberately conservative: anything malformed,
truncated, mismatched, or merely *unproven* fails closed.  The engine
maps a failure to a loud :class:`CertificationError` (``--certify on``)
or a sound UNKNOWN(uncertified) downgrade (``--certify strict``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.checker import is_coherent_schedule, is_sc_schedule
from repro.core.encode import encode_legal_schedule
from repro.core.result import Certificate, VerificationResult
from repro.core.types import Execution, Operation
from repro.sat.drat import check_rup
from repro.util.control import StopCheck

#: Certify modes accepted by the engine and the CLI.
CERTIFY_MODES = ("off", "on", "strict")


class CertificationError(RuntimeError):
    """A verdict failed certification under ``--certify on`` — either
    the producing solver or the checker is wrong, and the run must not
    quietly pick a side."""


@dataclass(frozen=True)
class CertCheck:
    """Outcome of a certificate validation — truthy iff it passed."""

    ok: bool
    reason: str = ""

    def __bool__(self) -> bool:
        return self.ok


def _fail(reason: str) -> CertCheck:
    return CertCheck(False, reason)


_OK = CertCheck(True)


# ---------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------
def validate_result(
    execution: Execution,
    result: VerificationResult,
    problem: str = "vmc",
    write_order=None,
) -> CertCheck:
    """Validate ``result``'s verdict against the raw ``execution``.

    UNKNOWN results assert nothing and pass vacuously.  HOLDS results
    must carry a witness schedule that replays; VIOLATED results must
    carry a certificate whose kind-specific check succeeds.  The
    checker never consults the producing backend.

    ``write_order`` is the instance's supplied write serialization
    when it is an order-augmented (Section 5.2) instance: ``order``
    certificates are checked against it, and a HOLDS witness must
    respect it.
    """
    if result.unknown:
        return _OK
    if result.holds:
        if result.certificate is not None and result.certificate.kind != "witness":
            return _fail(
                f"holds verdict carries a {result.certificate.kind!r} "
                f"certificate; expected a witness schedule"
            )
        if result.schedule is None:
            return _fail("holds verdict carries no witness schedule")
        check = (
            is_sc_schedule(execution, result.schedule)
            if problem == "vsc"
            else is_coherent_schedule(execution, result.schedule)
        )
        if not check:
            return _fail(f"witness schedule rejected: {check.reason}")
        if write_order is not None:
            want = tuple(op.uid for op in write_order)
            got = tuple(
                op.uid for op in result.schedule if op.kind.writes
            )
            if got != want:
                return _fail(
                    "witness schedule does not respect the supplied "
                    "write-order"
                )
        return _OK
    cert = result.certificate
    if cert is None:
        return _fail("violated verdict carries no certificate")
    if not isinstance(cert, Certificate):
        return _fail(f"certificate is not a Certificate: {cert!r}")
    if cert.kind == "witness":
        return _fail("witness certificate on a violated verdict")
    if cert.kind == "infeasible":
        return _check_infeasible(execution, cert.payload)
    if cert.kind == "cycle":
        return _check_cycle(execution, cert.payload)
    if cert.kind == "rup":
        return _check_rup_certificate(execution, cert.payload)
    if cert.kind == "order":
        return _check_order(execution, cert.payload, write_order)
    return _fail(f"unknown certificate kind {cert.kind!r}")


def ensure_certificate(
    execution: Execution,
    result: VerificationResult,
    problem: str = "vmc",
    should_stop: StopCheck = None,
) -> VerificationResult:
    """Producer-side: attach a certificate to a decided result lacking one.

    HOLDS results get the ``witness`` marker (the schedule is already
    the certificate).  A VIOLATED result without a certificate — exact
    search exhausted, a failed VSC merge — is re-refuted on the
    *original* execution via the certified SAT route, whose DRAT proof
    then certifies the verdict.  (The §5.2 write-order route certifies
    itself at the producer with an ``order`` certificate: its
    refutations are relative to the supplied order, which a trace-only
    SAT re-solve cannot reproduce.)  If the re-solve finds a schedule
    instead, the two engines disagree; no certificate is attached and
    validation will fail closed.
    """
    if result.unknown:
        return result
    if result.holds:
        if result.certificate is None and result.schedule is not None:
            result.certificate = Certificate("witness")
        return result
    if result.certificate is not None:
        return result
    from repro.core.encode import sat_vmc, sat_vsc

    if problem == "vsc":
        recheck = sat_vsc(execution, certify=True, should_stop=should_stop)
    else:
        recheck = sat_vmc(execution, certify=True, should_stop=should_stop)
    if recheck.violated and recheck.certificate is not None:
        result.certificate = recheck.certificate
        result.stats["certificate_via"] = recheck.method
    return result


# ---------------------------------------------------------------------
# Infeasibility claims
# ---------------------------------------------------------------------
def _ops_by_uid(execution: Execution) -> dict[tuple[int, int], Operation]:
    return {op.uid: op for op in execution.all_ops()}


def _check_infeasible(execution: Execution, claim) -> CertCheck:
    if not (isinstance(claim, tuple) and len(claim) == 2):
        return _fail(f"malformed infeasibility claim {claim!r}")
    tag, arg = claim
    if tag == "read-impossible":
        try:
            uid = tuple(arg)
        except TypeError:
            return _fail(f"malformed operation uid {arg!r}")
        op = _ops_by_uid(execution).get(uid)
        if op is None:
            return _fail(f"claimed reader {uid!r} is not in the execution")
        if not op.kind.reads:
            return _fail(f"claimed reader {op} does not read")
        want, addr = op.value_read, op.addr
        if want == execution.initial_value(addr):
            return _fail(f"{op} reads the initial value of {addr!r}")
        for other in execution.all_ops():
            if (
                other.uid != op.uid
                and other.kind.writes
                and other.addr == addr
                and other.value_written == want
            ):
                return _fail(f"{want!r} is written to {addr!r} by {other}")
        return _OK
    if tag == "final-vs-initial":
        d_f = execution.final_value(arg)
        if d_f is None:
            return _fail(f"no final value is required of {arg!r}")
        if d_f == execution.initial_value(arg):
            return _fail(f"final value of {arg!r} equals its initial value")
        for op in execution.all_ops():
            if op.kind.writes and op.addr == arg:
                return _fail(f"{arg!r} is written by {op}")
        return _OK
    if tag == "final-unwritten":
        d_f = execution.final_value(arg)
        if d_f is None:
            return _fail(f"no final value is required of {arg!r}")
        wrote_any = False
        for op in execution.all_ops():
            if op.kind.writes and op.addr == arg:
                wrote_any = True
                if op.value_written == d_f:
                    return _fail(f"final value {d_f!r} is written by {op}")
        if not wrote_any and d_f == execution.initial_value(arg):
            return _fail(
                f"{arg!r} is never written and already holds {d_f!r}"
            )
        return _OK
    return _fail(f"unknown infeasibility claim {tag!r}")


# ---------------------------------------------------------------------
# Happens-before cycle certificates
# ---------------------------------------------------------------------
def _unique_writer(
    execution: Execution, addr, value, excluding: tuple[int, int]
) -> Operation | None:
    """The single op writing ``value`` to ``addr`` (ignoring
    ``excluding``), or None when absent or ambiguous."""
    found: Operation | None = None
    for op in execution.all_ops():
        if (
            op.uid != excluding
            and op.kind.writes
            and op.addr == addr
            and op.value_written == value
        ):
            if found is not None:
                return None
            found = op
    return found


def _reaches(
    edges: dict[tuple[int, int], set[tuple[int, int]]],
    src: tuple[int, int],
    dst: tuple[int, int],
) -> bool:
    """DFS reachability over the validated edge set."""
    if src == dst:
        return True
    stack = [src]
    seen = {src}
    while stack:
        u = stack.pop()
        for v in edges.get(u, ()):
            if v == dst:
                return True
            if v not in seen:
                seen.add(v)
                stack.append(v)
    return False


def _check_cycle(execution: Execution, payload) -> CertCheck:
    try:
        steps, cycle = payload
        steps = tuple(steps)
        cycle = tuple(tuple(u) for u in cycle)
    except (TypeError, ValueError):
        return _fail(f"malformed cycle certificate payload {payload!r}")
    ops = _ops_by_uid(execution)
    edges: dict[tuple[int, int], set[tuple[int, int]]] = {}
    rf_pairs: set[tuple[tuple[int, int], tuple[int, int]]] = set()
    for i, step in enumerate(steps):
        try:
            u_uid, v_uid, rule, aux = step
            u_uid, v_uid = tuple(u_uid), tuple(v_uid)
        except (TypeError, ValueError):
            return _fail(f"malformed proof step {i}: {step!r}")
        u, v = ops.get(u_uid), ops.get(v_uid)
        if u is None or v is None or u_uid == v_uid:
            return _fail(f"proof step {i} names unknown operations: {step!r}")
        verdict = _check_step(execution, u, v, rule, aux, edges, rf_pairs)
        if not verdict:
            return _fail(f"proof step {i} ({rule} {u} -> {v}): {verdict.reason}")
        edges.setdefault(u_uid, set()).add(v_uid)
        if rule == "rf":
            rf_pairs.add((u_uid, v_uid))
    if len(cycle) < 2:
        return _fail(f"claimed cycle {cycle!r} is too short to be a cycle")
    for u_uid, v_uid in zip(cycle, cycle[1:] + cycle[:1]):
        if v_uid not in edges.get(u_uid, ()):
            return _fail(
                f"cycle edge {u_uid!r} -> {v_uid!r} was never established "
                f"by a proof step"
            )
    return _OK


def _check_step(
    execution: Execution,
    u: Operation,
    v: Operation,
    rule: str,
    aux,
    edges: dict[tuple[int, int], set[tuple[int, int]]],
    rf_pairs: set[tuple[tuple[int, int], tuple[int, int]]],
) -> CertCheck:
    """Re-prove one happens-before step directly from the trace (axiom
    rules) or from previously validated steps (closure rules)."""
    if rule == "po":
        if u.proc != v.proc or u.index >= v.index:
            return _fail("not in program order")
        return _OK
    if rule == "rf":
        # v is forced to read from u: same address, matching non-initial
        # value, and u is the *only* candidate writer.
        if not (v.kind.reads and u.kind.writes and u.addr == v.addr):
            return _fail("not a write/read pair at one address")
        if u.value_written != v.value_read:
            return _fail("written and read values differ")
        if v.value_read == execution.initial_value(v.addr):
            return _fail("the read value equals the initial value, so the "
                         "source is not forced")
        writer = _unique_writer(execution, v.addr, v.value_read, v.uid)
        if writer is None or writer.uid != u.uid:
            return _fail("the claimed source is not the unique writer")
        return _OK
    if rule == "init":
        # u reads the never-rewritten initial value, so it precedes
        # every write v to its address.
        if not u.kind.reads:
            return _fail("source does not read")
        if u.value_read != execution.initial_value(u.addr):
            return _fail("source does not read the initial value")
        if not (v.kind.writes and v.addr == u.addr):
            return _fail("target is not a write to the same address")
        for op in execution.all_ops():
            if (
                op.uid != u.uid
                and op.kind.writes
                and op.addr == u.addr
                and op.value_written == u.value_read
            ):
                return _fail(f"the initial value is re-written by {op}")
        return _OK
    if rule in ("fin", "finr"):
        # v uniquely writes the required final value, so every other
        # write (fin) / stale read (finr) precedes it.
        d_f = execution.final_value(v.addr)
        if d_f is None:
            return _fail(f"no final value is required of {v.addr!r}")
        if not (v.kind.writes and v.value_written == d_f):
            return _fail("target does not write the final value")
        if _unique_writer(execution, v.addr, d_f, (-1, -1)) is None:
            return _fail("the final value's writer is not unique")
        if u.addr != v.addr:
            return _fail("addresses differ")
        if rule == "fin":
            if not u.kind.writes:
                return _fail("source is not a write")
        else:
            if not u.kind.reads or u.value_read == d_f:
                return _fail("source is not a stale read")
        return _OK
    if rule in ("wr", "fr"):
        try:
            w_uid, r_uid = tuple(aux[0]), tuple(aux[1])
        except (TypeError, IndexError):
            return _fail(f"malformed closure aux {aux!r}")
        if (w_uid, r_uid) not in rf_pairs:
            return _fail("cited reads-from pair was never validated")
        if rule == "wr":
            # u is a write necessarily before r, so it precedes r's
            # source w (= v): otherwise it would land between them.
            if v.uid != w_uid or u.uid in (w_uid, r_uid):
                return _fail("edge does not target the cited source write")
            if not (u.kind.writes and u.addr == v.addr):
                return _fail("source is not a write to the same address")
            if not _reaches(edges, u.uid, r_uid):
                return _fail("no validated path orders the write before "
                             "the reader")
            return _OK
        # fr: v is a write necessarily after r's source w, so the read
        # u (= r) precedes it.
        if u.uid != r_uid or v.uid in (w_uid, r_uid):
            return _fail("edge does not start at the cited reader")
        if not (v.kind.writes and v.addr == u.addr):
            return _fail("target is not a write to the same address")
        if not _reaches(edges, w_uid, v.uid):
            return _fail("no validated path orders the source before the "
                         "later write")
        return _OK
    return _fail(f"unknown proof rule {rule!r}")


# ---------------------------------------------------------------------
# RUP refutation certificates
# ---------------------------------------------------------------------
def _check_rup_certificate(execution: Execution, payload) -> CertCheck:
    lines = []
    try:
        for line in payload:
            kind, lits = line
            lits = tuple(lits)
            if kind not in ("a", "d") or not all(
                isinstance(l, int) and l != 0 for l in lits
            ):
                return _fail(f"malformed proof line {line!r}")
            lines.append((kind, lits))
    except (TypeError, ValueError):
        return _fail(f"malformed rup certificate payload {payload!r}")
    # The encoding audit: the proof must refute the CNF this trace
    # induces *today* — re-derived here, plain (no solver-side hints).
    enc = encode_legal_schedule(execution)
    verdict = check_rup(enc.cnf, lines)
    if not verdict:
        return _fail(f"rup proof rejected: {verdict.reason}")
    return _OK


# ---------------------------------------------------------------------
# Order-augmented (Section 5.2) refutation certificates
# ---------------------------------------------------------------------
def _check_order(execution: Execution, payload, write_order) -> CertCheck:
    if write_order is None:
        return _fail(
            "order certificate, but the instance supplies no write-order"
        )
    try:
        claimed = tuple(tuple(u) for u in payload)
    except TypeError:
        return _fail(f"malformed order certificate payload {payload!r}")
    supplied = tuple(op.uid for op in write_order)
    if claimed != supplied:
        return _fail(
            "order certificate refutes a different write-order than the "
            "instance supplies"
        )
    reason = _order_infeasible(execution, tuple(write_order))
    if reason is None:
        return _fail(
            "the execution is schedulable under the supplied write-order"
        )
    return _OK


def _order_infeasible(execution: Execution, order) -> str | None:
    """Independent re-decision of the order-augmented instance.

    Returns a reason when no schedule consistent with ``order`` exists,
    ``None`` when one does.  Gap ``g`` (``0..W``) sits just after the
    ``g``-th write and holds its value (gap 0 holds the initial value);
    per process, every read goes into the earliest value-matching gap
    at/after its program-order predecessors, which by the standard
    exchange argument succeeds iff any placement does.  Deliberately a
    from-scratch reimplementation — the producing solver is never
    consulted.
    """
    from bisect import bisect_left

    addrs = execution.constrained_addresses()
    addr = addrs[0] if addrs else None
    writes = [op for op in execution.all_ops() if op.kind.writes]
    if sorted(op.uid for op in order) != sorted(op.uid for op in writes):
        return "the order is not a permutation of the trace's writes"
    slot = {op.uid: j for j, op in enumerate(order)}
    for h in execution.histories:
        js = [slot[op.uid] for op in h if op.kind.writes]
        if any(a >= b for a, b in zip(js, js[1:])):
            return "the order contradicts a process's program order"
    values = [execution.initial_value(addr)] + [
        w.value_written for w in order
    ]
    for j, w in enumerate(order):
        if w.kind.reads and w.value_read != values[j]:
            return f"RMW at slot {j} reads {w.value_read!r}, not {values[j]!r}"
    d_f = execution.final_value(addr) if addr is not None else None
    if d_f is not None and values[-1] != d_f:
        return f"the last write leaves {values[-1]!r}, not the final {d_f!r}"
    gaps: dict = {}
    for g, v in enumerate(values):
        gaps.setdefault(v, []).append(g)
    for h in execution.histories:
        cursor = 0
        limits: list[tuple[int, int]] = []  # (placed gap, next-po-write slot)
        for op in h:
            if op.kind.is_sync:
                continue
            if op.kind.writes:
                cursor = max(cursor, slot[op.uid] + 1)
                continue
            cand = gaps.get(op.value_read)
            if not cand:
                return f"{op} reads a value nobody writes"
            i = bisect_left(cand, cursor)
            if i == len(cand):
                return f"{op} has no admissible gap after its predecessors"
            cursor = cand[i]
            limits.append((cursor, op.uid))  # resolved in the reverse pass
        bound = len(order)
        placed = dict((uid, g) for g, uid in limits)
        for op in reversed(list(h)):
            if op.kind.is_sync:
                continue
            if op.kind.writes:
                bound = slot[op.uid]
            elif placed[op.uid] > bound:
                return f"{op} is pushed past its next program-order write"
    return None
