"""Backend registries: Figure 5.3's routing table as data.

A :class:`BackendRegistry` holds the deciders for one problem ("vmc" or
"vsc").  Selection walks the registered backends in tier order and
picks the first whose ``auto_applicable`` predicate holds — exactly the
paper's ladder, but extensible: registering a backend with a new tier
slots it into the routing without touching any dispatch code.

Module-level :func:`vmc_registry` / :func:`vsc_registry` return the
shared default registries; :func:`build_vmc_registry` /
:func:`build_vsc_registry` build fresh ones for tests and embedders
that want private routing tables.
"""

from __future__ import annotations

from repro.engine.backend import (
    Backend,
    BackendInapplicableError,
    ExactBackend,
    ExactVscBackend,
    Instance,
    ReadMapBackend,
    SatBackend,
    SatVscBackend,
    SingleOpBackend,
    WriteOrderBackend,
)


class BackendRegistry:
    """An ordered, named collection of :class:`Backend` instances."""

    def __init__(self, problem: str):
        self.problem = problem
        self._backends: list[Backend] = []
        self._by_name: dict[str, Backend] = {}

    # -- registration ---------------------------------------------------
    def register(self, backend: Backend) -> Backend:
        """Add a backend; returns it so this can be used as a decorator
        on pre-built instances."""
        if backend.problem != self.problem:
            raise ValueError(
                f"backend {backend.name!r} decides {backend.problem!r}, "
                f"this registry routes {self.problem!r}"
            )
        for key in (backend.name, *backend.aliases):
            if key in self._by_name:
                raise ValueError(f"backend name {key!r} already registered")
        self._backends.append(backend)
        self._backends.sort(key=lambda b: b.tier)
        for key in (backend.name, *backend.aliases):
            self._by_name[key] = backend
        return backend

    # -- queries --------------------------------------------------------
    def backends(self) -> list[Backend]:
        """All backends, cheapest tier first."""
        return list(self._backends)

    def names(self) -> list[str]:
        return [b.name for b in self._backends]

    def get(self, name: str) -> Backend:
        """Resolve a method name or alias; ValueError when unknown."""
        try:
            return self._by_name[name]
        except KeyError:
            raise ValueError(f"unknown method {name!r}") from None

    def applicable(self, instance: Instance) -> list[Backend]:
        """Backends able to decide the instance, in tier order."""
        return [b for b in self._backends if b.applicable(instance)]

    def select(self, instance: Instance) -> Backend:
        """The router: lowest-tier auto-applicable backend."""
        for b in self._backends:
            if b.auto_applicable(instance):
                return b
        # The SAT backends are always applicable, so with the default
        # registries this is unreachable; a stripped-down custom
        # registry can get here.
        raise ValueError(
            f"no registered {self.problem} backend is applicable to "
            f"{instance.execution!r}"
        )

    def resolve(self, method: str, instance: Instance) -> Backend:
        """Resolve a forced ``method=`` to a backend, validating
        applicability; raises :class:`BackendInapplicableError` (a
        ValueError) when the backend cannot decide the instance."""
        backend = self.get(method)
        if not backend.applicable(instance):
            detail = ""
            if backend.name == "write-order":
                detail = "method='write-order' requires write_order="
            raise BackendInapplicableError(
                backend,
                instance,
                [b.name for b in self.applicable(instance)],
                detail,
            )
        return backend


def build_vmc_registry() -> BackendRegistry:
    """A fresh registry with the paper's VMC ladder (Figure 5.3)."""
    reg = BackendRegistry("vmc")
    reg.register(WriteOrderBackend())
    reg.register(SingleOpBackend())
    reg.register(ReadMapBackend())
    reg.register(ExactBackend())
    reg.register(SatBackend("cdcl", tier=4, aliases=("sat",)))
    reg.register(SatBackend("dpll", tier=5))
    return reg


def build_vsc_registry() -> BackendRegistry:
    """A fresh registry with the VSC deciders (Section 6.1)."""
    reg = BackendRegistry("vsc")
    reg.register(ExactVscBackend())
    reg.register(SatVscBackend("cdcl", tier=1, aliases=("sat",)))
    reg.register(SatVscBackend("dpll", tier=2))
    return reg


_VMC_REGISTRY: BackendRegistry | None = None
_VSC_REGISTRY: BackendRegistry | None = None


def vmc_registry() -> BackendRegistry:
    """The process-wide default VMC registry."""
    global _VMC_REGISTRY
    if _VMC_REGISTRY is None:
        _VMC_REGISTRY = build_vmc_registry()
    return _VMC_REGISTRY


def vsc_registry() -> BackendRegistry:
    """The process-wide default VSC registry."""
    global _VSC_REGISTRY
    if _VSC_REGISTRY is None:
        _VSC_REGISTRY = build_vsc_registry()
    return _VSC_REGISTRY
