"""The per-address planner.

Coherence is decided independently per address (the paper's Section 3:
an execution is coherent iff every address has a coherent schedule), so
a multi-address VMC query decomposes into one task per constrained
address.  The planner

1. restricts the execution to each constrained address,
2. resolves each task's backend — the registry's tier ladder for
   ``method="auto"``, or the forced backend (validated for
   applicability) otherwise,
3. runs the polynomial pre-pass (:mod:`repro.engine.prepass`) on tasks
   that routed to the exponential tail of the ladder: the pre-pass may
   decide the task outright, downgrade it to the Section 5.2
   ``write-order`` backend, or shrink it to a kernel with ordering
   hints — the task's ``run_instance`` is what the backend executes,
   while ``instance`` (the original) keys the result cache,
4. orders the tasks cheapest-estimate-first, so that when the
   execution is incoherent the executor's early exit tends to fire
   before the expensive tasks run.

VSC does not decompose (a single schedule must serve all addresses at
once); :func:`plan_vsc` emits the single whole-execution task, also
pre-passed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.core.types import Address, Execution, Operation
from repro.engine.backend import Backend, Instance
from repro.engine.portfolio import (
    PORTFOLIO_MIN_STATES,
    RACE_STATE_BUDGET,
    PortfolioBackend,
)
from repro.engine.prepass import (
    EXPONENTIAL_TIER,
    PrepassInfo,
    prepass_vmc,
    prepass_vsc,
)
from repro.engine.registry import BackendRegistry, vmc_registry, vsc_registry


@dataclass
class PlannedTask:
    """One unit of work: an instance bound to its chosen backend.

    ``instance`` is the original task (cache key); ``run_instance`` is
    what the backend actually executes — the pre-pass kernel when the
    pre-pass shrank or downgraded the task, otherwise the original.
    """

    order: int            # position in the (cheapest-first) plan
    address: Address | None
    instance: Instance
    backend: Backend
    estimate: float
    run_instance: Instance | None = None
    prepass: PrepassInfo | None = None

    def __post_init__(self) -> None:
        if self.run_instance is None:
            self.run_instance = self.instance


def _portfolio_legs(
    registry: BackendRegistry,
) -> tuple[Backend, Backend] | None:
    """The (budgeted exact, SAT) leg pair, or None for registries that
    lack either algorithm (custom registries opt out of racing)."""
    try:
        exact_leg = registry.get("exact")
        sat_leg = registry.get("sat-cdcl")
    except ValueError:
        return None
    try:
        capped = type(exact_leg)(max_states=RACE_STATE_BUDGET)
    except TypeError:
        capped = exact_leg  # custom exact without a budget knob
    return capped, sat_leg


def _apply_portfolio(
    task: PlannedTask, registry: BackendRegistry, portfolio
) -> None:
    """Rebind an exponential-tier task per the portfolio policy.

    ``portfolio`` is True/"race" (race exact vs SAT), "exact"/"sat"
    (force that leg solo — the benchmark's comparison arms), or False
    (keep the router's choice).  Small instances skip the race when the
    router already picked the exact search: it wins so fast that the
    second leg is pure overhead.
    """
    if portfolio is False or portfolio is None:
        return
    run = task.run_instance
    if portfolio in ("exact", "sat"):
        name = "exact" if portfolio == "exact" else "sat-cdcl"
        try:
            task.backend = registry.get(name)
        except ValueError:
            return
        task.estimate = task.backend.cost_estimate(run)
        return
    if (
        task.backend.name == "exact"
        and run.states <= PORTFOLIO_MIN_STATES
    ):
        return
    legs = _portfolio_legs(registry)
    if legs is None:
        return
    task.backend = PortfolioBackend(legs, problem=run.problem)
    task.estimate = task.backend.cost_estimate(run)


def _prepassed_task(
    order: int,
    address: Address | None,
    instance: Instance,
    method: str,
    registry: BackendRegistry,
    prepass: bool,
    portfolio=True,
) -> PlannedTask:
    """Select a backend, then let the pre-pass shrink/decide/downgrade.

    The pre-pass only runs for auto-routed tasks that landed on the
    exponential tiers — it cannot beat an already-polynomial backend,
    and a forced ``method=`` is a contract with the caller.  Surviving
    exponential-tier tasks are then subject to the portfolio policy
    (see :func:`_apply_portfolio`).
    """
    if method == "auto":
        backend = registry.select(instance)
    else:
        backend = registry.resolve(method, instance)
    task = PlannedTask(
        order=order,
        address=address,
        instance=instance,
        backend=backend,
        estimate=backend.cost_estimate(instance),
    )
    # Every built-in VSC backend is a search; for VMC the polynomial
    # tiers start below EXPONENTIAL_TIER.
    threshold = EXPONENTIAL_TIER if instance.problem == "vmc" else 0
    if not (method == "auto" and backend.tier >= threshold):
        return task
    if prepass:
        run = prepass_vmc if instance.problem == "vmc" else prepass_vsc
        info = run(instance)
        if info is not None:
            task.prepass = info
            if info.decided is not None:
                task.estimate = 0.0
                return task
            task.run_instance = info.residual
            task.backend = registry.select(info.residual)
            task.estimate = task.backend.cost_estimate(info.residual)
            if task.backend.tier < threshold:
                return task  # downgraded to a polynomial tier
    _apply_portfolio(task, registry, portfolio)
    return task


def plan_vmc(
    execution: Execution,
    method: str = "auto",
    write_orders: Mapping[Address, Sequence[Operation]] | None = None,
    registry: BackendRegistry | None = None,
    prepass: bool = True,
    portfolio=True,
) -> list[PlannedTask]:
    """Decompose a (possibly multi-address) execution into per-address
    tasks, cheapest first."""
    registry = registry or vmc_registry()
    if method != "auto":
        registry.get(method)  # unknown method -> ValueError, before any work
    tasks: list[PlannedTask] = []
    for pos, addr in enumerate(execution.constrained_addresses()):
        sub = execution.restrict_to_address(addr)
        wo = write_orders.get(addr) if write_orders else None
        instance = Instance(sub, address=addr, write_order=wo, problem="vmc")
        tasks.append(
            _prepassed_task(
                pos, addr, instance, method, registry, prepass, portfolio
            )
        )
    # Cheapest first; the original address position breaks ties so the
    # plan (and therefore early-exit behaviour) is deterministic.
    tasks.sort(key=lambda t: (t.estimate, t.order))
    for i, t in enumerate(tasks):
        t.order = i
    return tasks


def plan_vsc(
    execution: Execution,
    method: str = "auto",
    registry: BackendRegistry | None = None,
    prepass: bool = True,
    portfolio=True,
) -> list[PlannedTask]:
    """The single whole-execution VSC task."""
    registry = registry or vsc_registry()
    if method != "auto":
        registry.get(method)
    instance = Instance(execution, address=None, problem="vsc")
    return [
        _prepassed_task(
            0, None, instance, method, registry, prepass, portfolio
        )
    ]
