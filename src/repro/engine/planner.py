"""The per-address planner.

Coherence is decided independently per address (the paper's Section 3:
an execution is coherent iff every address has a coherent schedule), so
a multi-address VMC query decomposes into one task per constrained
address.  The planner

1. restricts the execution to each constrained address,
2. resolves each task's backend — the registry's tier ladder for
   ``method="auto"``, or the forced backend (validated for
   applicability) otherwise,
3. orders the tasks cheapest-estimate-first, so that when the
   execution is incoherent the executor's early exit tends to fire
   before the expensive tasks run.

VSC does not decompose (a single schedule must serve all addresses at
once); :func:`plan_vsc` emits the single whole-execution task.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.core.types import Address, Execution, Operation
from repro.engine.backend import Backend, Instance
from repro.engine.registry import BackendRegistry, vmc_registry, vsc_registry


@dataclass
class PlannedTask:
    """One unit of work: an instance bound to its chosen backend."""

    order: int            # position in the (cheapest-first) plan
    address: Address | None
    instance: Instance
    backend: Backend
    estimate: float


def plan_vmc(
    execution: Execution,
    method: str = "auto",
    write_orders: Mapping[Address, Sequence[Operation]] | None = None,
    registry: BackendRegistry | None = None,
) -> list[PlannedTask]:
    """Decompose a (possibly multi-address) execution into per-address
    tasks, cheapest first."""
    registry = registry or vmc_registry()
    if method != "auto":
        registry.get(method)  # unknown method -> ValueError, before any work
    tasks: list[PlannedTask] = []
    for pos, addr in enumerate(execution.constrained_addresses()):
        sub = execution.restrict_to_address(addr)
        wo = write_orders.get(addr) if write_orders else None
        instance = Instance(sub, address=addr, write_order=wo, problem="vmc")
        if method == "auto":
            backend = registry.select(instance)
        else:
            backend = registry.resolve(method, instance)
        tasks.append(
            PlannedTask(
                order=pos,
                address=addr,
                instance=instance,
                backend=backend,
                estimate=backend.cost_estimate(instance),
            )
        )
    # Cheapest first; the original address position breaks ties so the
    # plan (and therefore early-exit behaviour) is deterministic.
    tasks.sort(key=lambda t: (t.estimate, t.order))
    for i, t in enumerate(tasks):
        t.order = i
    return tasks


def plan_vsc(
    execution: Execution,
    method: str = "auto",
    registry: BackendRegistry | None = None,
) -> list[PlannedTask]:
    """The single whole-execution VSC task."""
    registry = registry or vsc_registry()
    if method != "auto":
        registry.get(method)
    instance = Instance(execution, address=None, problem="vsc")
    if method == "auto":
        backend = registry.select(instance)
    else:
        backend = registry.resolve(method, instance)
    return [
        PlannedTask(
            order=0,
            address=None,
            instance=instance,
            backend=backend,
            estimate=backend.cost_estimate(instance),
        )
    ]
