"""The polynomial pre-pass pipeline.

The planner runs this on every task that would otherwise go to the
exponential tail of the backend ladder (``exact`` / ``sat-*``).  Three
passes, all polynomial and all sound (verdicts with the pre-pass on are
identical to verdicts with it off — see ``tests/engine/test_prepass.py``
for the differential proof obligation):

1. **read elimination** (:func:`repro.core.infer.eliminate_reads`) —
   reads whose placement is decided by a neighbouring operation leave
   the instance; a :class:`~repro.core.infer.ReinsertionPlan` splices
   them back into any residual witness;
2. **happens-before inference** (:func:`repro.core.infer.infer_order`)
   — saturating the necessary ordering edges either decides the task
   (a cycle is an incoherence proof; for VSC a cross-address cycle
   refutes SC), forces a total write order (downgrading the task to the
   O(n log n) Section 5.2 ``write-order`` backend), or at least
   produces ordering *hints* the exact/SAT backends use to prune;
3. **kernel extraction** — the residual instance (fewer ops, plus
   hints) replaces the original as the unit the backend actually runs;
   the cache still keys on the *original* instance so hits are
   independent of pre-pass settings.

For VSC the same machinery runs per address; when every address's write
order is forced, the per-address Section 5.2 schedules are merged with
Section 6.3's VSC-Conflict — a successful merge decides SC outright
(the merge is sound-positive; a failed merge only means "fall through
to the search with hints", respecting the paper's incompleteness
result).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.core import writeorder
from repro.core.conflict import vsc_conflict
from repro.core.infer import Inference, ReinsertionPlan, eliminate_reads, infer_order
from repro.core.result import Certificate, VerificationResult
from repro.core.types import Execution
from repro.engine.backend import Instance
from repro.util.digraph import CycleError, Digraph

#: Built-in registry tier at which the exponential backends start; the
#: planner only spends pre-pass time on tasks routed at or above it.
EXPONENTIAL_TIER = 3


@dataclass
class PrepassInfo:
    """What the pre-pass did to one task (picklable; rides inside the
    :class:`~repro.engine.planner.PlannedTask` into pool workers)."""

    #: Early verdict — the task never reaches a backend.
    decided: VerificationResult | None = None
    #: Witness splice plan for eliminated reads (None = nothing removed).
    plan: ReinsertionPlan | None = None
    #: The shrunk instance the backend actually runs (None when decided).
    residual: Instance | None = None
    ops_before: int = 0
    ops_after: int = 0
    edges_inferred: int = 0
    #: True when a forced total write order downgraded the task to the
    #: ``write-order`` backend.
    downgraded: bool = False

    @property
    def ops_eliminated(self) -> int:
        return self.ops_before - self.ops_after

    def detail(self) -> dict[str, Any]:
        """Scalar counters merged into the task's result stats."""
        d: dict[str, Any] = {
            "pp_ops_eliminated": self.ops_eliminated,
            "pp_edges": self.edges_inferred,
        }
        if self.decided is not None:
            d["pp_decided"] = True
        if self.downgraded:
            d["pp_downgraded"] = True
        return d

    def finish(self, result: VerificationResult) -> VerificationResult:
        """Post-process a backend result on the residual instance:
        splice eliminated reads back into the witness and merge the
        pre-pass counters into the result stats."""
        if (
            result.holds
            and result.schedule is not None
            and self.plan is not None
            and self.plan.eliminated
        ):
            result.schedule = self.plan.rematerialize(result.schedule)
        result.stats.update(self.detail())
        return result


def _decide(info: PrepassInfo, result: VerificationResult) -> PrepassInfo:
    """Mark ``info`` as decided, finishing the result first."""
    info.decided = info.finish(result)
    info.residual = None
    return info


# ---------------------------------------------------------------------
# VMC
# ---------------------------------------------------------------------
def prepass_vmc(instance: Instance) -> PrepassInfo | None:
    """Run the pipeline on one per-address VMC task.

    Returns None when the pre-pass does not apply (sync operations, or
    a write order already supplied — Section 5.2 is already engaged).
    """
    ex = instance.execution
    if instance.write_order is not None:
        return None
    if any(op.kind.is_sync for op in ex.all_ops()):
        return None
    info = PrepassInfo(ops_before=ex.num_ops)

    residual_ex, plan = eliminate_reads(ex)
    info.plan = plan
    info.ops_after = residual_ex.num_ops

    if residual_ex.num_ops == 0:
        return _decide(info, _trivial_verdict(residual_ex, instance))

    inf = infer_order(residual_ex)
    info.edges_inferred = inf.edge_count
    if inf.decided is not None:
        return _decide(info, inf.decided)

    if not any(op.kind.writes for op in residual_ex.all_ops()):
        # No writes survive: every remaining read must read the initial
        # value (anything else was decided infeasible above), so any
        # program-order interleaving is a witness.
        sched = [op for h in residual_ex.histories for op in h]
        return _decide(
            info,
            VerificationResult(
                holds=True, method="prepass", schedule=sched,
                address=instance.address,
            ),
        )

    if inf.write_order is not None:
        info.downgraded = True
        info.residual = Instance(
            residual_ex,
            address=instance.address,
            write_order=inf.write_order,
            problem="vmc",
        )
    else:
        info.residual = Instance(
            residual_ex,
            address=instance.address,
            problem="vmc",
            order_hints=tuple((u, v) for u, v, _why in inf.edges),
        )
    return info


def _trivial_verdict(ex: Execution, instance: Instance) -> VerificationResult:
    """Verdict for an empty residual: only final values can object."""
    for a in ex.final:
        if ex.final[a] != ex.initial_value(a):
            return VerificationResult(
                holds=False,
                method="prepass",
                reason=(
                    f"no writes to {a!r} but final {ex.final[a]!r} != "
                    f"initial {ex.initial_value(a)!r}"
                ),
                address=instance.address,
                certificate=Certificate(
                    "infeasible", ("final-vs-initial", a)
                ),
            )
    return VerificationResult(
        holds=True, method="prepass", schedule=[], address=instance.address
    )


# ---------------------------------------------------------------------
# VSC
# ---------------------------------------------------------------------
def prepass_vsc(instance: Instance) -> PrepassInfo | None:
    """Run the pipeline on a whole-execution VSC task.

    Per-address inference runs on the eliminated residual; the union of
    all necessary per-address edges with global program order must be
    acyclic in any SC schedule, so a cycle refutes SC polynomially
    (this decides the classic store-buffering litmus without search).
    When every address's write order is forced, the per-address
    Section 5.2 schedules are merged via Section 6.3's conflict check —
    success decides SC; failure falls through to the search, because a
    failed merge of *chosen* read placements proves nothing (the
    paper's incompleteness point).
    """
    ex = instance.execution
    if any(op.kind.is_sync for op in ex.all_ops()):
        return None
    info = PrepassInfo(ops_before=ex.num_ops)

    residual_ex, plan = eliminate_reads(ex)
    info.plan = plan
    info.ops_after = residual_ex.num_ops

    if residual_ex.num_ops == 0:
        return _decide(info, _trivial_verdict(residual_ex, instance))

    per_addr: dict[Any, Inference] = {}
    for addr in residual_ex.constrained_addresses():
        sub = residual_ex.restrict_to_address(addr)
        inf = infer_order(sub)
        if inf.decided is not None:
            # An incoherent address refutes SC (SC implies coherence).
            verdict = inf.decided
            verdict.reason = (
                f"address {addr!r} cannot be coherent, so no SC schedule "
                f"exists: {verdict.reason}"
            )
            verdict.address = None
            return _decide(info, verdict)
        per_addr[addr] = inf
        info.edges_inferred += inf.edge_count

    # Cross-address cycle check: global program order plus every
    # necessary per-address edge must embed into a single total order.
    ops = [op for h in residual_ex.histories for op in h]
    node = {op.uid: i for i, op in enumerate(ops)}
    g = Digraph(len(ops))
    reasons: dict[tuple[int, int], str] = {}
    for h in residual_ex.histories:
        for o1, o2 in zip(h.operations, h.operations[1:]):
            g.add_edge(node[o1.uid], node[o2.uid])
    for inf in per_addr.values():
        for u, v, why in inf.edges:
            if g.add_edge(node[u], node[v]):
                reasons[(node[u], node[v])] = why
    try:
        g.topological_order()
    except CycleError as e:
        steps = []
        for u, v in zip(e.cycle, e.cycle[1:] + e.cycle[:1]):
            steps.append(
                f"{ops[u]} -> {ops[v]} "
                f"[{reasons.get((u, v), 'program order')}]"
            )
        # Certificate step log: global program order first, then every
        # per-address derivation verbatim — each address's closure steps
        # only ever cite edges earlier in its own log, and prepending
        # more edges can only make the checker's reachability test more
        # permissive, never less, so the concatenation stays replayable.
        cert_steps = [
            (o1.uid, o2.uid, "po", None)
            for h in residual_ex.histories
            for o1, o2 in zip(h.operations, h.operations[1:])
        ]
        for inf in per_addr.values():
            cert_steps.extend(inf.steps)
        return _decide(
            info,
            VerificationResult(
                holds=False,
                method="prepass",
                reason=(
                    "program order and necessary per-address ordering "
                    "form a cycle: " + "; ".join(steps)
                ),
                stats={"cycle_length": len(e.cycle)},
                certificate=Certificate(
                    "cycle",
                    (
                        tuple(cert_steps),
                        tuple(ops[u].uid for u in e.cycle),
                    ),
                ),
            ),
        )

    if per_addr and all(
        inf.write_order is not None for inf in per_addr.values()
    ):
        # Section 5.2 per address, then the Section 6.3 merge.
        schedules = {}
        for addr, inf in per_addr.items():
            sub = residual_ex.restrict_to_address(addr)
            r = writeorder.writeorder_vmc(sub, inf.write_order)
            if not r.holds:
                # The forced order is necessary, so this address is
                # simply incoherent — SC is refuted, not merely unmerged.
                return _decide(
                    info,
                    VerificationResult(
                        holds=False,
                        method="prepass",
                        reason=(
                            f"address {addr!r} is incoherent under its "
                            f"forced write order: {r.reason}"
                        ),
                    ),
                )
            schedules[addr] = r.schedule
        merged = vsc_conflict(
            residual_ex, schedules, validate_inputs=False
        )
        if merged.holds:
            merged.method = "prepass"
            merged.stats.setdefault("via", "vsc-conflict")
            return _decide(info, merged)
        # A failed merge is *not* a negative verdict; fall through.

    hints = tuple(
        (u, v) for inf in per_addr.values() for u, v, _why in inf.edges
    )
    info.residual = Instance(
        residual_ex, address=None, problem="vsc", order_hints=hints or None
    )
    return info
