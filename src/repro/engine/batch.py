"""Sharded batch verification: many traces, one campaign.

The paper's hardness results (Theorem 4.2: VMC is NP-complete) mean
campaign-scale throughput comes from *never solving the same instance
twice* and from *parallelizing across instances*, not from a faster
single solve.  This module is that data plane:

1. **Scan** — every source (trace file or in-memory execution) is
   decomposed into per-address tasks, exactly like
   :func:`repro.engine.plan_vmc` would.
2. **Dedup** — every task is canonicalized up front
   (:func:`repro.engine.cache.canonicalize`) and grouped by canonical
   key *before any solving*: N tasks collapse to M unique instances,
   and each unique is decided exactly once per batch.
3. **Admission / sharding** — unique instances are bucketed by their
   store shard (``fingerprint[0] % n_shards``), so with ``--jobs N``
   every worker's working set maps to a *disjoint* set of persistent
   store shards — workers never contend on a shard lock.  Buckets are
   drained chunk-by-chunk with at most one chunk of a bucket in flight
   (the PR-2 bounded-window discipline at batch granularity).
4. **Serve or solve** — each unique consults the (store-backed) cache
   first; hits pass the same on-hit validation seam as the executor's
   (witness replay always, certificates under ``--certify``), and a
   corrupt or stale record is evicted from both tiers and recomputed,
   never served.  Misses run through :func:`repro.engine.verify_vmc_at`
   under the per-batch :class:`~repro.engine.ResiliencePolicy` budget.
5. **Report** — results fan back out to their sources; the aggregate
   per source is ``VIOLATED > UNKNOWN > holds`` and the machine-
   readable report records per-source verdicts, hit provenance
   (solved / memory / store / dedup) and certified counts.

``repro batch`` (the CLI front-end) adds ``--dry-run``: print the
dedup plan and predicted store hits without solving anything — a cheap
correctness probe for the admission-control math.
"""

from __future__ import annotations

import concurrent.futures
import traceback
from collections import deque
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Mapping, Sequence

from repro.core.result import VerificationResult
from repro.core.types import Address, Execution, Operation
from repro.engine.cache import CanonicalInstance, ResultCache, canonicalize
from repro.engine.certify import CertificationError, validate_result
from repro.engine.executor import NO_RESILIENCE, ResiliencePolicy
from repro.engine.store import ResultStore, fingerprint_key
from repro.util.deadline import Deadline

#: Default shard fanout used for bucketing when no store is attached
#: (matches :class:`ResultStore`'s default so plans agree either way).
DEFAULT_SHARDS = 16

#: Uniques per pool submission.  Small enough to pipeline (a bucket
#: with a slow chunk does not starve the window), large enough that
#: pickling overhead amortizes.
CHUNK_SIZE = 8


# ---------------------------------------------------------------------
# Plan data model
# ---------------------------------------------------------------------
@dataclass
class BatchTask:
    """One (source, address) verification obligation."""

    source: int
    address: Any
    unique: int


@dataclass
class UniqueInstance:
    """One canonical instance: solved once, served to every duplicate."""

    canon: CanonicalInstance
    sub: Execution
    address: Any
    write_order: Sequence[Operation] | None
    fp: bytes
    count: int = 1


@dataclass
class SourceOutcome:
    """Per-source verdict plus batch provenance."""

    label: str
    result: VerificationResult | None = None
    error: str | None = None
    tasks: int = 0
    unique: int = 0
    provenance: dict[str, int] = field(default_factory=dict)
    certified: int = 0

    @property
    def verdict(self) -> str:
        if self.error is not None:
            return "error"
        if self.result is None:
            return "error"
        if self.result.unknown:
            return "UNKNOWN"
        return "holds" if self.result.holds else "VIOLATED"


@dataclass
class BatchPlan:
    """The scan + dedup product: everything but the solving."""

    labels: list[str]
    tasks: list[BatchTask]
    uniques: list[UniqueInstance]
    errors: dict[int, str]
    #: Uniques already present in the store (``--dry-run`` predictor;
    #: -1 = no store attached).
    predicted_store_hits: int = -1

    @property
    def dedup_ratio(self) -> float:
        return len(self.tasks) / len(self.uniques) if self.uniques else 1.0

    def describe(self, jobs: int = 1, n_shards: int = DEFAULT_SHARDS) -> str:
        """The ``--dry-run`` rendering of the plan."""
        lines = [
            f"batch plan: {len(self.labels)} sources, "
            f"{len(self.tasks)} tasks -> {len(self.uniques)} unique "
            f"instances ({self.dedup_ratio:.2f}x dedup)"
        ]
        if self.predicted_store_hits >= 0:
            to_solve = len(self.uniques) - self.predicted_store_hits
            lines.append(
                f"store: {self.predicted_store_hits} predicted hits, "
                f"{to_solve} to solve"
            )
        buckets = _bucketize(self.uniques, jobs, n_shards)
        chunks = sum(
            (len(b) + CHUNK_SIZE - 1) // CHUNK_SIZE for b in buckets if b
        )
        lines.append(
            f"admission: jobs={jobs}, {sum(1 for b in buckets if b)} "
            f"buckets over {n_shards} shards, {chunks} chunks of "
            f"<={CHUNK_SIZE}, window {jobs} in flight"
        )
        if self.errors:
            for idx in sorted(self.errors):
                lines.append(f"error: {self.labels[idx]}: {self.errors[idx]}")
        return "\n".join(lines)


def _bucketize(
    uniques: list[UniqueInstance], jobs: int, n_shards: int
) -> list[list[int]]:
    """Partition unique indices into per-worker buckets **by shard**:
    shard ``s`` always lands in bucket ``s % jobs``, so two workers can
    never append to the same store shard."""
    buckets: list[list[int]] = [[] for _ in range(max(1, jobs))]
    for i, u in enumerate(uniques):
        shard = u.fp[0] % n_shards
        buckets[shard % max(1, jobs)].append(i)
    return buckets


# ---------------------------------------------------------------------
# Scan + dedup
# ---------------------------------------------------------------------
def plan_batch(
    sources: Sequence[tuple[str, Execution | None, str | None]],
    write_orders: Sequence[Mapping[Address, Sequence[Operation]] | None]
    | None = None,
    store: ResultStore | None = None,
) -> BatchPlan:
    """Canonicalize and deduplicate every (source, address) task.

    ``sources`` is a list of ``(label, execution, error)`` triples —
    a failed load arrives as ``(label, None, message)`` and is carried
    through to the report without sinking the batch.
    """
    labels = [label for label, _, _ in sources]
    errors = {
        i: err for i, (_, ex, err) in enumerate(sources) if err is not None
    }
    tasks: list[BatchTask] = []
    uniques: list[UniqueInstance] = []
    by_key: dict[Any, int] = {}
    for i, (_, execution, err) in enumerate(sources):
        if err is not None or execution is None:
            continue
        wos = write_orders[i] if write_orders is not None else None
        for addr in execution.constrained_addresses():
            sub = execution.restrict_to_address(addr)
            wo = wos.get(addr) if wos else None
            canon = canonicalize(sub, wo, "vmc", "auto")
            uidx = by_key.get(canon.key)
            if uidx is None:
                uidx = by_key[canon.key] = len(uniques)
                uniques.append(
                    UniqueInstance(
                        canon=canon,
                        sub=sub,
                        address=addr,
                        write_order=wo,
                        fp=fingerprint_key(canon.key),
                    )
                )
            else:
                uniques[uidx].count += 1
            tasks.append(BatchTask(source=i, address=addr, unique=uidx))
    predicted = -1
    if store is not None:
        predicted = sum(1 for u in uniques if store.contains(u.canon))
    return BatchPlan(
        labels=labels,
        tasks=tasks,
        uniques=uniques,
        errors=errors,
        predicted_store_hits=predicted,
    )


# ---------------------------------------------------------------------
# Serve-or-solve (shared by the serial path and the workers)
# ---------------------------------------------------------------------
def _serve_or_solve(
    unique: UniqueInstance,
    cache: ResultCache | None,
    certify: str,
    task_policy: ResiliencePolicy | None,
    prepass: bool,
    portfolio: Any,
) -> VerificationResult:
    """Decide one unique instance: validated cache/store hit or a full
    engine run.  Mirrors the executor's on-hit validation seam — the
    canonical key is already in hand, so a warm hit skips planning and
    the pre-pass entirely (that is the warm-store fast path)."""
    from repro.engine import verify_vmc_at

    if cache is not None:
        hit = cache.lookup(unique.canon)
        if hit is not None:
            hit.address = unique.address
            if hit.holds or certify != "off":
                check = validate_result(
                    unique.sub, hit, "vmc",
                    write_order=unique.write_order,
                )
                if not check:
                    cache.invalidate(unique.canon)
                    hit = None
                elif certify != "off":
                    hit.stats["certified"] = True
            if hit is not None:
                return hit
    result = verify_vmc_at(
        unique.sub,
        unique.address,
        write_order=unique.write_order,
        cache=False,  # batch-wide dedup already collapsed duplicates
        prepass=prepass,
        portfolio=portfolio,
        resilience=task_policy,
        certify=certify,
    )
    if cache is not None and not result.unknown:
        cache.store(unique.canon, result)
    return result


def _slim(result: VerificationResult) -> VerificationResult:
    """Strip the parent-irrelevant payload before crossing the pool
    boundary (the per-task EngineReport is worker-local detail)."""
    result.report = None
    result.per_address = {}
    return result


def _task_policy(policy: ResiliencePolicy) -> ResiliencePolicy | None:
    """The per-task slice of the batch policy: task deadline, retries
    and chaos travel to the worker; the run budget stays with the
    parent's admission control."""
    if (
        policy.task_timeout is None
        and policy.chaos is None
        and policy.retries == NO_RESILIENCE.retries
    ):
        return None
    return ResiliencePolicy(
        task_timeout=policy.task_timeout,
        retries=policy.retries,
        backoff_s=policy.backoff_s,
        chaos=policy.chaos,
    )


# ---------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------
#: Per-process cache singletons keyed by store identity, so one worker
#: process reuses its memory tier and store handle across chunks.
_WORKER_CACHES: dict[tuple, ResultCache] = {}


def _worker_cache(
    store_path: str | None, store_max_mb: float | None, chaos
) -> ResultCache:
    key = (store_path, store_max_mb, chaos)
    cache = _WORKER_CACHES.get(key)
    if cache is None:
        store = (
            ResultStore(store_path, max_mb=store_max_mb, chaos=chaos)
            if store_path is not None
            else None
        )
        cache = ResultCache(store=store)
        _WORKER_CACHES[key] = cache
    return cache


def _solve_chunk(
    items: list[tuple[int, UniqueInstance]],
    store_path: str | None,
    store_max_mb: float | None,
    certify: str,
    task_policy: ResiliencePolicy | None,
    prepass: bool,
    portfolio: Any,
) -> list[tuple[int, VerificationResult | None, str | None]]:
    """Process-pool unit: decide a chunk of uniques against this
    worker's store shards, flush once, return slim results."""
    cache = _worker_cache(
        store_path, store_max_mb, task_policy.chaos if task_policy else None
    )
    out: list[tuple[int, VerificationResult | None, str | None]] = []
    for uidx, unique in items:
        try:
            result = _serve_or_solve(
                unique, cache, certify, task_policy, prepass, portfolio
            )
            out.append((uidx, _slim(result), None))
        except CertificationError as e:
            out.append((uidx, None, f"certification failed: {e}"))
        except Exception as e:  # noqa: BLE001 - one bad instance never sinks a chunk
            out.append(
                (uidx, None, f"{type(e).__name__}: {e}\n"
                 f"{traceback.format_exc(limit=3)}")
            )
    cache.flush_store()
    return out


# ---------------------------------------------------------------------
# Parent-side execution
# ---------------------------------------------------------------------
@dataclass
class BatchStats:
    """Batch-level execution counters (the report's ``totals``)."""

    sources: int = 0
    errors: int = 0
    holds: int = 0
    violated: int = 0
    unknown: int = 0
    tasks: int = 0
    unique: int = 0
    solved: int = 0
    memory_hits: int = 0
    store_hits: int = 0
    dedup_served: int = 0
    certified: int = 0
    budget_expired: int = 0
    chunk_retries: int = 0
    quarantined_chunks: int = 0
    wall_s: float = 0.0


def _unknown_budget(unique: UniqueInstance, timeout) -> VerificationResult:
    return VerificationResult.make_unknown(
        method="batch",
        reason="budget",
        detail=(
            f"batch budget {timeout:g}s exhausted before the instance "
            f"started"
        ),
        address=unique.address,
    )


def _run_uniques(
    plan: BatchPlan,
    jobs: int,
    cache: ResultCache | None,
    store: ResultStore | None,
    policy: ResiliencePolicy,
    certify: str,
    prepass: bool,
    portfolio: Any,
    stats: BatchStats,
) -> dict[int, tuple[VerificationResult | None, str | None]]:
    """Decide every unique instance; returns uidx -> (result, error)."""
    decided: dict[int, tuple[VerificationResult | None, str | None]] = {}
    task_policy = _task_policy(policy)
    run_deadline = Deadline.after(policy.timeout)

    def serve(uidx: int) -> None:
        unique = plan.uniques[uidx]
        if run_deadline is not None and run_deadline.expired():
            decided[uidx] = (_unknown_budget(unique, policy.timeout), None)
            stats.budget_expired += 1
            return
        try:
            decided[uidx] = (
                _serve_or_solve(
                    unique, cache, certify, task_policy, prepass, portfolio
                ),
                None,
            )
        except CertificationError as e:
            decided[uidx] = (None, f"certification failed: {e}")
        except Exception as e:  # noqa: BLE001
            decided[uidx] = (None, f"{type(e).__name__}: {e}")

    if jobs <= 1 or len(plan.uniques) <= 1:
        for uidx in range(len(plan.uniques)):
            serve(uidx)
        return decided

    n_shards = store.n_shards if store is not None else DEFAULT_SHARDS
    buckets = _bucketize(plan.uniques, jobs, n_shards)
    queues: list[deque[list[int]]] = []
    for bucket in buckets:
        q: deque[list[int]] = deque()
        for i in range(0, len(bucket), CHUNK_SIZE):
            q.append(bucket[i:i + CHUNK_SIZE])
        queues.append(q)
    store_path = store.path if store is not None else None
    store_max_mb = (
        store.max_bytes / (1024 * 1024)
        if store is not None and store.max_bytes is not None
        else None
    )

    def submit(executor, bucket_idx: int, chunk: list[int], attempt: int):
        items = [(uidx, plan.uniques[uidx]) for uidx in chunk]
        fut = executor.submit(
            _solve_chunk, items, store_path, store_max_mb,
            certify, task_policy, prepass, portfolio,
        )
        return (fut, bucket_idx, chunk, attempt)

    def quarantine(chunk: list[int]) -> None:
        # Retries exhausted: decide the chunk in-process against the
        # parent's cache/store handle (flock keeps that safe).
        stats.quarantined_chunks += 1
        for uidx in chunk:
            serve(uidx)

    executor = concurrent.futures.ProcessPoolExecutor(max_workers=jobs)
    try:
        in_flight: list[tuple] = []
        # Seed the window: one chunk per bucket, at most `jobs` in
        # flight ever — admission control by construction.
        for b, q in enumerate(queues):
            if q:
                in_flight.append(submit(executor, b, q.popleft(), 0))
        while in_flight:
            done, _pending = concurrent.futures.wait(
                [f for f, *_ in in_flight],
                return_when=concurrent.futures.FIRST_COMPLETED,
            )
            still: list[tuple] = []
            finished_buckets: list[int] = []
            for fut, b, chunk, attempt in in_flight:
                if fut not in done:
                    still.append((fut, b, chunk, attempt))
                    continue
                try:
                    for uidx, result, err in fut.result():
                        decided[uidx] = (result, err)
                    finished_buckets.append(b)
                except concurrent.futures.BrokenExecutor:
                    executor.shutdown(wait=False, cancel_futures=True)
                    executor = concurrent.futures.ProcessPoolExecutor(
                        max_workers=jobs
                    )
                    if attempt >= policy.retries:
                        quarantine(chunk)
                        finished_buckets.append(b)
                    else:
                        stats.chunk_retries += 1
                        still.append(submit(executor, b, chunk, attempt + 1))
            in_flight = still
            for b in finished_buckets:
                expired = (
                    run_deadline is not None and run_deadline.expired()
                )
                if expired:
                    continue  # stop admitting; drain what's in flight
                if queues[b]:
                    in_flight.append(
                        submit(executor, b, queues[b].popleft(), 0)
                    )
        for q in queues:
            for chunk in q:
                for uidx in chunk:
                    if uidx not in decided:
                        decided[uidx] = (
                            _unknown_budget(
                                plan.uniques[uidx], policy.timeout
                            ),
                            None,
                        )
                        stats.budget_expired += 1
    finally:
        executor.shutdown(wait=True)
    return decided


# ---------------------------------------------------------------------
# Aggregation
# ---------------------------------------------------------------------
def _aggregate_source(
    outcome: SourceOutcome,
    item_results: list[tuple[Any, VerificationResult]],
) -> None:
    """VIOLATED > UNKNOWN > holds, with per-address detail attached."""
    per_address = {addr: res for addr, res in item_results}
    violated = [r for _, r in item_results if r.violated]
    unknowns = [r for _, r in item_results if r.unknown]
    if violated:
        agg = violated[0]
    elif unknowns:
        first = unknowns[0]
        agg = VerificationResult.make_unknown(
            method="batch",
            reason=first.unknown_reason or "budget",
            detail=first.reason,
            address=first.address,
        )
    elif item_results:
        agg = VerificationResult(
            holds=True, method="batch",
            reason="coherent at every constrained address",
        )
    else:
        agg = VerificationResult(
            holds=True, method="trivial", schedule=[],
            reason="no constrained addresses",
        )
    agg.per_address = per_address
    outcome.result = agg


def _classify(result: VerificationResult) -> str:
    if result.stats.get("store_hit"):
        return "store"
    if result.stats.get("cache_hit"):
        return "memory"
    return "solved"


def run_plan(
    plan: BatchPlan,
    jobs: int = 1,
    cache: ResultCache | None = None,
    store: ResultStore | None = None,
    resilience: ResiliencePolicy | None = None,
    certify: str = "off",
    prepass: bool = True,
    portfolio: Any = True,
) -> tuple[list[SourceOutcome], BatchStats]:
    """Decide a planned batch and fan results back to the sources."""
    t0 = perf_counter()
    stats = BatchStats(
        sources=len(plan.labels),
        tasks=len(plan.tasks),
        unique=len(plan.uniques),
    )
    if cache is None:
        cache = ResultCache(store=store)
    policy = resilience or NO_RESILIENCE
    decided = _run_uniques(
        plan, jobs, cache, store, policy, certify, prepass, portfolio, stats
    )
    cache.flush_store()

    outcomes = [SourceOutcome(label=label) for label in plan.labels]
    for idx, message in plan.errors.items():
        outcomes[idx].error = message
    served: set[int] = set()
    items_by_source: dict[int, list[tuple[Any, VerificationResult]]] = {}
    for task in plan.tasks:
        outcome = outcomes[task.source]
        outcome.tasks += 1
        result, err = decided.get(task.unique, (None, "never scheduled"))
        if err is not None:
            outcome.error = err
            continue
        assert result is not None
        if task.unique not in served:
            served.add(task.unique)
            outcome.unique += 1
            kind = _classify(result)
            stats.solved += kind == "solved"
            stats.memory_hits += kind == "memory"
            stats.store_hits += kind == "store"
        else:
            kind = "dedup"
            stats.dedup_served += 1
        outcome.provenance[kind] = outcome.provenance.get(kind, 0) + 1
        if result.stats.get("certified"):
            outcome.certified += 1
            stats.certified += 1
        materialized = result
        if task.address != result.address:
            # A duplicate under a different address label: same verdict,
            # re-addressed.
            materialized = VerificationResult(
                holds=result.holds,
                method=result.method,
                schedule=result.schedule,
                reason=result.reason,
                address=task.address,
                stats=dict(result.stats),
                unknown=result.unknown,
                certificate=result.certificate,
            )
        items_by_source.setdefault(task.source, []).append(
            (task.address, materialized)
        )
    for i, outcome in enumerate(outcomes):
        if outcome.error is not None:
            stats.errors += 1
            continue
        _aggregate_source(outcome, items_by_source.get(i, []))
        assert outcome.result is not None
        if outcome.result.violated:
            stats.violated += 1
        elif outcome.result.unknown:
            stats.unknown += 1
        else:
            stats.holds += 1
    stats.wall_s = perf_counter() - t0
    return outcomes, stats


# ---------------------------------------------------------------------
# Public entry points
# ---------------------------------------------------------------------
def verify_many(
    executions: Sequence[Execution],
    write_orders: Sequence[Mapping[Address, Sequence[Operation]] | None]
    | None = None,
    labels: Sequence[str] | None = None,
    jobs: int = 1,
    cache: ResultCache | None = None,
    store: ResultStore | None = None,
    resilience: ResiliencePolicy | None = None,
    certify: str = "off",
    prepass: bool = True,
    portfolio: Any = True,
) -> list[SourceOutcome]:
    """Verify many in-memory executions as one deduplicated batch.

    The campaign front-end: all (execution, address) tasks are
    canonicalized and deduplicated across the whole batch before any
    solving, then decided through the shared ``cache`` (optionally
    store-backed for cross-run warm starts).  Returns one
    :class:`SourceOutcome` per execution, in order; a per-execution
    engine exception lands in ``outcome.error`` instead of raising.
    """
    if labels is None:
        labels = [f"<execution {i}>" for i in range(len(executions))]
    sources = [
        (label, execution, None)
        for label, execution in zip(labels, executions)
    ]
    if cache is None and store is not None:
        cache = ResultCache(store=store)
    elif cache is not None and store is None:
        store = cache.store_tier
    plan = plan_batch(sources, write_orders=write_orders)
    outcomes, _stats = run_plan(
        plan,
        jobs=jobs,
        cache=cache,
        store=store,
        resilience=resilience,
        certify=certify,
        prepass=prepass,
        portfolio=portfolio,
    )
    return outcomes


def load_sources(
    paths: Sequence[str],
) -> list[tuple[str, Execution | None, str | None]]:
    """Load trace files (any supported format); failures become
    per-source errors, not batch failures."""
    from repro.core.serialize import parse_trace_bytes
    from pathlib import Path

    sources: list[tuple[str, Execution | None, str | None]] = []
    for path_str in paths:
        path = Path(path_str)
        try:
            execution = parse_trace_bytes(
                path.read_bytes(), str(path), path.suffix
            )
            sources.append((str(path), execution, None))
        except (OSError, ValueError) as e:
            sources.append((str(path), None, str(e)))
    return sources


def run_batch(
    paths: Sequence[str],
    jobs: int = 1,
    store: ResultStore | None = None,
    cache: ResultCache | None = None,
    resilience: ResiliencePolicy | None = None,
    certify: str = "off",
    prepass: bool = True,
    portfolio: Any = True,
    dry_run: bool = False,
) -> dict[str, Any]:
    """Verify a list of trace files as one campaign.

    Returns the machine-readable batch report (JSON-shaped).  With
    ``dry_run`` the plan is computed — including predicted store hits —
    but nothing is solved.
    """
    t0 = perf_counter()
    if cache is None and store is not None:
        cache = ResultCache(store=store)
    elif cache is not None and store is None:
        store = cache.store_tier
    sources = load_sources(paths)
    plan = plan_batch(sources, store=store)
    n_shards = store.n_shards if store is not None else DEFAULT_SHARDS
    report: dict[str, Any] = {
        "version": 1,
        "problem": "vmc",
        "jobs": jobs,
        "certify": certify,
        "dry_run": dry_run,
        "store": {
            "path": store.path,
            "n_shards": store.n_shards,
            "max_mb": (
                store.max_bytes / (1024 * 1024)
                if store.max_bytes is not None
                else None
            ),
        }
        if store is not None
        else None,
        "plan": {
            "sources": len(plan.labels),
            "tasks": len(plan.tasks),
            "unique": len(plan.uniques),
            "dedup_ratio": round(plan.dedup_ratio, 4),
            "predicted_store_hits": plan.predicted_store_hits,
            "text": plan.describe(jobs, n_shards),
        },
    }
    if dry_run:
        report["files"] = [
            {"path": label, "error": plan.errors.get(i)}
            for i, label in enumerate(plan.labels)
        ]
        report["totals"] = {
            "files": len(plan.labels),
            "errors": len(plan.errors),
            "wall_s": round(perf_counter() - t0, 6),
        }
        return report
    outcomes, stats = run_plan(
        plan,
        jobs=jobs,
        cache=cache,
        store=store,
        resilience=resilience,
        certify=certify,
        prepass=prepass,
        portfolio=portfolio,
    )
    report["files"] = [
        {
            "path": o.label,
            "verdict": o.verdict,
            "reason": (
                o.error if o.error is not None
                else o.result.reason if o.result is not None
                else ""
            ),
            "tasks": o.tasks,
            "unique": o.unique,
            "provenance": o.provenance,
            "certified": o.certified,
        }
        for o in outcomes
    ]
    totals: dict[str, Any] = {
        "files": stats.sources,
        "errors": stats.errors,
        "holds": stats.holds,
        "violated": stats.violated,
        "unknown": stats.unknown,
        "tasks": stats.tasks,
        "unique": stats.unique,
        "solved": stats.solved,
        "memory_hits": stats.memory_hits,
        "store_hits": stats.store_hits,
        "dedup_served": stats.dedup_served,
        "certified": stats.certified,
        "budget_expired": stats.budget_expired,
        "chunk_retries": stats.chunk_retries,
        "quarantined_chunks": stats.quarantined_chunks,
        "wall_s": round(perf_counter() - t0, 6),
    }
    if store is not None:
        totals["store"] = store.stats.as_dict()
    report["totals"] = totals
    return report


def batch_exit_code(report: dict[str, Any]) -> int:
    """CLI exit discipline: violated (1) > error (2) > unknown (3) > 0."""
    totals = report.get("totals", {})
    if totals.get("violated"):
        return 1
    if totals.get("errors"):
        return 2
    if totals.get("unknown"):
        return 3
    return 0
