"""Streaming incremental coherence verification — the online fast path.

The offline engine re-verifies a complete execution from scratch; a
monitor must keep up with a *growing* commit stream.  With the memory
system announcing its write serialization (the Section 5.2
augmentation, which the bus of :mod:`repro.memsys` provides naturally)
each appended operation costs amortized O(log g) in the number of live
write-order gaps — no re-saturation, no re-parse:

* per address, a **gap frontier**: gap ``g`` holds the value after the
  ``g``-th serialized write, with per-value sorted gap lists and
  monotone per-process cursors (a read of ``v`` is legal iff some gap
  at or after its process's cursor holds ``v``);
* a bounded **certificate window** of recently committed operations.
  Decided prefixes are evicted and summarized into the frontier: the
  window base gap, the value at that gap, the per-process cursors and
  the live gap lists are all that survive.

Eviction soundness: let ``C`` be the minimum cursor over *all declared
processes*.  Every future read selects a gap ``>= C`` (cursors are
monotone), so gaps below ``C`` — and the operations that produced or
consumed them — can never participate in a future placement decision.
Conversely nothing below ``C`` may be dropped earlier: a process that
has not yet committed at an address holds its cursor at 0 and may still
legally read the oldest live value, so a silent process pins the
window (this is the honest cost of sound eviction; see
``docs/engine.md``).

Verdicts stay *certified*.  A frontier-detected violation is refuted on
the retained window rebuilt as a standalone execution (initial value =
the value at the window base gap, reads placed below the base dropped
— both only relax constraints), and the resulting HB-cycle /
infeasibility / RUP certificate is checked by the independent trusted
checker against that window execution.  Violations of the announced
serialization whose window is nevertheless coherent as a raw trace
(e.g. a stale read another write order could serve) carry no
trace-level certificate and fail closed under ``--certify on|strict``,
exactly like the offline write-order backend.  Clean windows emit
periodic HOLDS-so-far heartbeats whose witness schedule is the gap
placement itself.

:class:`AddressMonitor` is the per-address engine (and the
implementation behind the :class:`repro.core.online.CoherenceMonitor`
compatibility shim); :class:`StreamingVerifier` routes a multi-address
commit stream, enforces per-process program order, and emits
:class:`StreamVerdict` objects.  ``repro monitor`` drives it over the
framed REPROSTM format of :mod:`repro.core.serialize_bin`.
"""

from __future__ import annotations

from bisect import bisect_left
from collections import deque
from dataclasses import dataclass, field
from time import perf_counter
from typing import Iterable, Iterator, Mapping

from repro.core.result import Certificate, VerificationResult
from repro.core.types import INITIAL, Address, Execution, Operation, Value
from repro.engine.certify import CertificationError, validate_result

__all__ = [
    "DEFAULT_WINDOW",
    "AddressMonitor",
    "CoherenceViolation",
    "MonitorStats",
    "StreamStats",
    "StreamVerdict",
    "StreamingVerifier",
    "monitor_execution",
]

#: Default certificate-window size (retained ops per address).
DEFAULT_WINDOW = 4096


class CoherenceViolation(Exception):
    """Raised by strict-mode monitors on the first detected violation."""

    def __init__(self, message: str, op_index: int):
        super().__init__(message)
        self.op_index = op_index


@dataclass
class MonitorStats:
    writes: int = 0
    reads: int = 0
    rmws: int = 0
    violations: int = 0


class AddressMonitor:
    """Incremental per-address coherence checker fed by commit events.

    Feed :meth:`commit_write`, :meth:`commit_read`, :meth:`commit_rmw`
    in the memory system's serialization order.  Each returns ``None``
    on success or a violation message; with ``strict=True`` a violation
    raises :class:`CoherenceViolation` instead.  ``final(expected)``
    checks the end-of-run value.

    With ``window`` set (and ``n_procs`` declared), each event may also
    carry its :class:`Operation`; the monitor then retains a bounded
    certificate window with sound prefix eviction and can build
    checkable refutations (:meth:`refute`) and HOLDS witnesses
    (:meth:`window_schedule`).  Without a window (the compatibility
    shim) it is a pure value-level frontier.
    """

    __slots__ = (
        "addr", "strict", "stats", "window_limit", "n_procs", "evicted",
        "_gap_values", "_gap_base", "_gaps_of_value", "_stored_gaps",
        "_cursors", "_events", "_window", "_win_base_gap", "_trimmed",
    )

    def __init__(
        self,
        addr: Address,
        initial: Value,
        strict: bool = False,
        n_procs: int | None = None,
        window: int | None = None,
    ):
        if window is not None and n_procs is None:
            raise ValueError(
                "windowed eviction needs n_procs: the eviction horizon "
                "is the minimum cursor over all declared processes"
            )
        self.addr = addr
        self.strict = strict
        self.stats = MonitorStats()
        self.window_limit = window
        self.n_procs = n_procs
        self.evicted = 0
        # Gap g holds the value after the g-th write; gap 0 = initial.
        # _gap_values[g - _gap_base] is gap g's value (prefix trimmed).
        self._gap_values: list[Value] = [initial]
        self._gap_base = 0
        self._gaps_of_value: dict[Value, list[int]] = {initial: [0]}
        self._stored_gaps = 1
        self._cursors: dict[int, int] = {}
        self._events = 0
        #: Certificate window: (gap, op) in commit order.
        self._window: deque[tuple[int, Operation]] = deque()
        #: Number of evicted writes == the window's base gap.
        self._win_base_gap = 0
        self._trimmed = False

    # -- helpers -----------------------------------------------------------
    @property
    def now(self) -> int:
        """Current gap index (number of writes committed so far)."""
        return self._gap_base + len(self._gap_values) - 1

    @property
    def window_size(self) -> int:
        return len(self._window)

    def _fail(self, message: str) -> str:
        self.stats.violations += 1
        if self.strict:
            raise CoherenceViolation(message, self._events)
        return message

    def _push_gap(self, value: Value) -> int:
        g = self._gap_base + len(self._gap_values)
        self._gap_values.append(value)
        lst = self._gaps_of_value.get(value)
        if lst is None:
            self._gaps_of_value[value] = [g]
        else:
            lst.append(g)
        self._stored_gaps += 1
        return g

    # -- event interface ---------------------------------------------------
    def commit_write(
        self, proc: int, value: Value, op: Operation | None = None
    ) -> str | None:
        """A write by ``proc`` of ``value`` was serialized now."""
        self._events += 1
        self.stats.writes += 1
        g = self._push_gap(value)
        # Program order: the writer's later reads come after this write.
        if g > self._cursors.get(proc, 0):
            self._cursors[proc] = g
        if op is not None and self.window_limit is not None:
            self._window.append((g, op))
            if len(self._window) > self.window_limit:
                self._evict()
        return None

    def commit_read(
        self, proc: int, value: Value, op: Operation | None = None
    ) -> str | None:
        """A read by ``proc`` returning ``value`` committed now."""
        self._events += 1
        self.stats.reads += 1
        cur = self._cursors.get(proc, 0)
        gaps = self._gaps_of_value.get(value)
        placed = -1
        if gaps:
            i = bisect_left(gaps, cur)
            if i < len(gaps):
                placed = gaps[i]
        if placed >= 0:
            self._cursors[proc] = placed
            if op is not None and self.window_limit is not None:
                self._window.append((placed, op))
                if len(self._window) > self.window_limit:
                    self._evict()
            return None
        if op is not None and self.window_limit is not None:
            # Retain the failing read (at the frontier, never evicted
            # before the refutation runs).
            self._window.append((self.now, op))
        if gaps is None and not self._trimmed:
            return self._fail(
                f"P{proc} read {value!r} from {self.addr!r}, which no "
                f"committed write produced (and it is not the initial value)"
            )
        return self._fail(
            f"P{proc} read stale value {value!r} from {self.addr!r}: "
            f"its most recent source was overwritten before the "
            f"process's own program-order position (gap {cur})"
        )

    def commit_rmw(
        self,
        proc: int,
        value_read: Value,
        value_written: Value,
        op: Operation | None = None,
    ) -> str | None:
        """An atomic RMW serialized now: its read component must see the
        value at the current end of the write-order."""
        self._events += 1
        self.stats.rmws += 1
        current = self._gap_values[-1]
        result: str | None = None
        if value_read != current:
            if op is not None and self.window_limit is not None:
                self._window.append((self.now, op))
            result = self._fail(
                f"P{proc}'s atomic RMW on {self.addr!r} read "
                f"{value_read!r} but the serialized value is {current!r}"
            )
        # Commit the write component either way so monitoring continues.
        self.stats.writes += 1
        g = self._push_gap(value_written)
        if g > self._cursors.get(proc, 0):
            self._cursors[proc] = g
        if result is None and op is not None and self.window_limit is not None:
            self._window.append((g, op))
            if len(self._window) > self.window_limit:
                self._evict()
        return result

    def peek_read(self, proc: int, value: Value) -> bool:
        """Would :meth:`commit_read` succeed right now?  (No mutation.)"""
        gaps = self._gaps_of_value.get(value)
        if not gaps:
            return False
        return bisect_left(gaps, self._cursors.get(proc, 0)) < len(gaps)

    def peek_rmw(self, value_read: Value) -> bool:
        """Would :meth:`commit_rmw`'s read component succeed right now?"""
        return self._gap_values[-1] == value_read

    def final(self, expected: Value) -> str | None:
        """End-of-run check: the last serialized value must be ``expected``."""
        got = self._gap_values[-1]
        if got != expected:
            return self._fail(
                f"final value of {self.addr!r} is {got!r}, expected "
                f"{expected!r}"
            )
        return None

    @property
    def ok(self) -> bool:
        return self.stats.violations == 0

    # -- windowed eviction -------------------------------------------------
    def _evict(self) -> None:
        """Evict the decided prefix below ``C`` = min cursor over all
        declared processes, then summarize it into the frontier."""
        if len(self._cursors) < self.n_procs:
            return  # an untouched process still pins gap 0
        c = min(self._cursors.values())
        w = self._window
        popped = False
        while w and w[0][0] < c:
            g, op = w.popleft()
            self.evicted += 1
            if op.kind.writes:
                self._win_base_gap = g
            popped = True
        if not popped:
            return
        # Trim the gap frontier itself (amortized: only on doubling).
        keep = self._win_base_gap
        drop = keep - self._gap_base
        if drop > 0 and drop * 2 >= len(self._gap_values):
            del self._gap_values[:drop]
            self._gap_base = keep
            self._trimmed = True
        live = len(self._gap_values)
        if self._stored_gaps > 2 * live + 64:
            fresh: dict[Value, list[int]] = {}
            total = 0
            for v, lst in self._gaps_of_value.items():
                i = bisect_left(lst, keep)
                if i < len(lst):
                    kept = lst[i:]
                    fresh[v] = kept
                    total += len(kept)
            self._gaps_of_value = fresh
            self._stored_gaps = total
            self._trimmed = True

    # -- certification support --------------------------------------------
    def window_execution(
        self, final: Mapping[Address, Value] | None = None
    ) -> Execution:
        """The retained window as a standalone execution.

        Initial value = the value at the window base gap; reads placed
        below the base (transient stragglers behind a high-gap head)
        are dropped.  Both are pure relaxations, so any refutation of
        this execution refutes the full stream.
        """
        from repro.core.infer import _gappy_execution

        base = self._win_base_gap
        base_value = self._gap_values[base - self._gap_base]
        per_proc: list[list[Operation]] = [
            [] for _ in range(self.n_procs or 0)
        ]
        for g, op in self._window:
            if g < base and not op.kind.writes:
                continue
            while op.proc >= len(per_proc):  # open-world shims
                per_proc.append([])
            per_proc[op.proc].append(op)
        histories = [(p, tuple(ops)) for p, ops in enumerate(per_proc)]
        initial = {} if base_value is INITIAL else {self.addr: base_value}
        return _gappy_execution(histories, initial, dict(final or {}))

    def window_schedule(self) -> list[Operation]:
        """The gap placement as a witness schedule for
        :meth:`window_execution`: writes at their gap, reads right
        after the write that serves them (ties keep commit order)."""
        base = self._win_base_gap
        rows = [
            (g, 0 if op.kind.writes else 1, op)
            for g, op in self._window
            if op.kind.writes or g >= base
        ]
        rows.sort(key=lambda t: (t[0], t[1]))
        return [op for _, _, op in rows]

    def refute(
        self,
        message: str,
        final: Mapping[Address, Value] | None = None,
        certify: str = "off",
    ) -> tuple[VerificationResult, Execution]:
        """Turn a frontier-detected violation into a (certified where
        possible) VIOLATED result over the window execution.

        The window is re-verified by the offline engine; a VIOLATED
        outcome donates its checked certificate.  A window that is
        coherent as a raw trace means the stream only violates the
        *announced serialization* — that verdict is real but carries no
        trace-level certificate (the caller fails closed under
        ``certify on|strict``).
        """
        ex = self.window_execution(final)
        from repro.engine import verify_vmc_at
        from repro.engine.backend import Instance
        from repro.engine.prepass import prepass_vmc

        # Certification is always *attempted* (violations are rare and
        # windows small); ``certify`` only controls how the caller
        # reacts to an uncertifiable verdict.  The polynomial pre-pass
        # goes first: it decides the frontier's violation shapes
        # (impossible read, forced cycle) with a cheap checkable
        # certificate, whereas the full engine's certified fallback
        # re-refutes through the SAT encoding — cubic in the window.
        deep = None
        info = prepass_vmc(
            Instance(
                ex.restrict_to_address(self.addr),
                address=self.addr,
                problem="vmc",
            )
        )
        if info is not None and info.decided is not None:
            deep = info.decided
        if deep is None or (deep.violated and deep.certificate is None):
            try:
                deep = verify_vmc_at(ex, self.addr, certify="on")
            except CertificationError:
                deep = (
                    None
                    if certify != "off"
                    else verify_vmc_at(ex, self.addr, certify="off")
                )
        if deep is not None and deep.violated:
            out = VerificationResult(
                holds=False,
                method="streaming",
                reason=message,
                address=self.addr,
                certificate=deep.certificate,
            )
            out.stats["refutation"] = deep.method
            return out, ex
        if deep is not None and deep.holds:
            note = (
                " [violates the announced write serialization; the "
                "retained window is coherent as a raw trace, so no "
                "trace-level certificate exists]"
            )
        else:
            note = " [window refutation unavailable]"
        out = VerificationResult(
            holds=False,
            method="streaming",
            reason=message + note,
            address=self.addr,
        )
        return out, ex


# ---------------------------------------------------------------------
# Multi-address stream verification
# ---------------------------------------------------------------------
@dataclass
class StreamStats:
    ops: int = 0
    syncs: int = 0
    violations: int = 0
    heartbeats: int = 0
    peak_window: int = 0


@dataclass
class StreamVerdict:
    """One emitted monitor verdict.

    ``kind`` is ``"violation"`` (monitoring tripped; ``result`` is
    VIOLATED and, when certified, ``result.certificate`` validates
    against ``execution``), ``"heartbeat"`` (periodic HOLDS-so-far),
    ``"final"`` (end-of-stream HOLDS), or ``"unknown"`` (a strict-mode
    certification downgrade).  ``op_index`` is the 0-based stream
    position of the offending operation (== ops consumed for
    heartbeats/final).
    """

    kind: str
    op_index: int
    result: VerificationResult
    execution: Execution | None = None
    stats: dict = field(default_factory=dict)


class StreamingVerifier:
    """Routes a commit-ordered multi-address operation stream through
    per-address :class:`AddressMonitor` frontiers.

    ``feed_op`` consumes one committed operation (enforcing per-process
    program order — an out-of-order index is malformed input and raises
    ``ValueError``) and returns a :class:`StreamVerdict` on violation
    or heartbeat, else ``None``.  ``feed`` consumes decoded
    :class:`repro.core.serialize_bin.FrameReader` events.  After a
    violation the verifier is *tripped* (``stop_on_violation=True``,
    the default) and ignores further input; pass
    ``stop_on_violation=False`` to keep monitoring through violations
    (each still yields a verdict).
    """

    def __init__(
        self,
        n_procs: int,
        initial: Mapping[Address, Value] | None = None,
        window: int = DEFAULT_WINDOW,
        certify: str = "off",
        heartbeat: int = 0,
        stop_on_violation: bool = True,
    ):
        if n_procs < 1:
            raise ValueError(f"n_procs must be >= 1, got {n_procs}")
        self.n_procs = n_procs
        self.window = max(1, window)
        self.certify = certify
        self.heartbeat = max(0, heartbeat)
        self.stop_on_violation = stop_on_violation
        self.monitors: dict[Address, AddressMonitor] = {}
        self.stats = StreamStats()
        self.tripped: StreamVerdict | None = None
        self._initial: dict[Address, Value] = dict(initial or {})
        self._final: dict[Address, Value] = {}
        self._next_index = [0] * n_procs
        self._window_total = 0
        self._t0 = perf_counter()

    # -- plumbing ----------------------------------------------------------
    def _monitor(self, addr: Address) -> AddressMonitor:
        mon = self.monitors.get(addr)
        if mon is None:
            mon = AddressMonitor(
                addr,
                self._initial.get(addr, INITIAL),
                n_procs=self.n_procs,
                window=self.window,
            )
            self.monitors[addr] = mon
        return mon

    def set_initial(self, initial: Mapping[Address, Value]) -> None:
        for addr, value in initial.items():
            if addr in self.monitors:
                raise ValueError(
                    f"initial value for {addr!r} arrived after its "
                    f"first operation"
                )
            self._initial[addr] = value

    def snapshot(self) -> dict:
        """Current throughput/memory statistics."""
        elapsed = perf_counter() - self._t0
        evicted = sum(m.evicted for m in self.monitors.values())
        return {
            "ops": self.stats.ops,
            "syncs": self.stats.syncs,
            "violations": self.stats.violations,
            "heartbeats": self.stats.heartbeats,
            "addresses": len(self.monitors),
            "window": self._window_total,
            "peak_window": self.stats.peak_window,
            "evicted": evicted,
            "elapsed_s": elapsed,
            "ops_per_s": self.stats.ops / elapsed if elapsed > 0 else 0.0,
        }

    # -- the hot path ------------------------------------------------------
    def feed_op(self, op: Operation) -> StreamVerdict | None:
        """Consume one committed operation (the stream's next event)."""
        if self.tripped is not None:
            return None
        proc = op.proc
        if not (0 <= proc < self.n_procs):
            raise ValueError(
                f"op {op} names process {proc}, outside the declared "
                f"0..{self.n_procs - 1}"
            )
        expected = self._next_index[proc]
        if op.index != expected:
            raise ValueError(
                f"malformed stream: P{proc} committed index {op.index} "
                f"but index {expected} is next in program order"
            )
        self._next_index[proc] = expected + 1
        self.stats.ops += 1
        kind = op.kind
        if kind.is_sync:
            self.stats.syncs += 1
            message = None
        else:
            mon = self._monitor(op.addr)
            before = len(mon._window)
            if kind.writes:
                if kind.reads:
                    message = mon.commit_rmw(
                        proc, op.value_read, op.value_written, op
                    )
                else:
                    message = mon.commit_write(proc, op.value_written, op)
            else:
                message = mon.commit_read(proc, op.value_read, op)
            self._window_total += len(mon._window) - before
            if self._window_total > self.stats.peak_window:
                self.stats.peak_window = self._window_total
        if message is not None:
            return self._violation(op.addr, message, offending_op=op)
        if self.heartbeat and self.stats.ops % self.heartbeat == 0:
            return self.checkpoint()
        return None

    def feed(self, events: Iterable[tuple]) -> Iterator[StreamVerdict]:
        """Consume decoded stream events (see
        :class:`~repro.core.serialize_bin.FrameReader`), yielding every
        verdict.  Ends after an END frame or a tripping violation."""
        for tag, payload in events:
            if tag == "op":
                verdict = self.feed_op(payload)
                if verdict is not None:
                    yield verdict
                    if self.tripped is not None:
                        return
            elif tag == "initial":
                self.set_initial(payload)
            elif tag == "final":
                self._final.update(payload)
            elif tag == "end":
                yield self.finalize()
                return
            else:
                raise ValueError(f"unknown stream event {tag!r}")

    # -- verdicts ----------------------------------------------------------
    def _violation(
        self,
        addr: Address,
        message: str,
        offending_op: Operation | None = None,
        final: Mapping[Address, Value] | None = None,
    ) -> StreamVerdict:
        self.stats.violations += 1
        index = self.stats.ops - (1 if offending_op is not None else 0)
        mon = self.monitors[addr]
        result, ex = mon.refute(message, final=final, certify=self.certify)
        result.stats["op_index"] = index
        if self.certify != "off":
            check = (
                validate_result(ex, result)
                if result.certificate is not None
                else None
            )
            problem = (
                "carries no certificate"
                if check is None
                else (None if check.ok else f"certificate rejected: {check.reason}")
            )
            if problem is not None:
                if self.certify == "on":
                    raise CertificationError(
                        f"streaming violation at op {index} {problem}: "
                        f"{result.reason}"
                    )
                result = VerificationResult.make_unknown(
                    method="streaming",
                    reason="uncertified",
                    detail=f"violation at op {index} {problem}: "
                    f"{result.reason}",
                    address=addr,
                )
        verdict = StreamVerdict(
            "violation" if result.violated else "unknown",
            index,
            result,
            ex,
            self.snapshot(),
        )
        if self.stop_on_violation:
            self.tripped = verdict
        return verdict

    def checkpoint(self, kind: str = "heartbeat") -> StreamVerdict:
        """A HOLDS-so-far verdict over everything consumed.  Under
        certification every address's window witness is replayed by the
        trusted checker."""
        if kind == "heartbeat":
            self.stats.heartbeats += 1
        snap = self.snapshot()
        result = VerificationResult(
            holds=True, method="streaming", reason=""
        )
        result.stats.update(snap)
        if self.certify != "off":
            for addr, mon in self.monitors.items():
                fin = (
                    {addr: self._final[addr]}
                    if kind == "final" and addr in self._final
                    else None
                )
                ex = mon.window_execution(fin)
                witness = VerificationResult(
                    holds=True,
                    method="streaming",
                    schedule=mon.window_schedule(),
                    certificate=Certificate("witness"),
                )
                check = validate_result(ex, witness)
                if not check.ok:
                    if self.certify == "on":
                        raise CertificationError(
                            f"{kind} witness rejected for {addr!r}: "
                            f"{check.reason}"
                        )
                    result = VerificationResult.make_unknown(
                        method="streaming",
                        reason="uncertified",
                        detail=f"{kind} witness rejected for {addr!r}: "
                        f"{check.reason}",
                    )
                    return StreamVerdict(
                        "unknown", self.stats.ops, result, ex, snap
                    )
            result.stats["certified"] = True
        return StreamVerdict(kind, self.stats.ops, result, None, snap)

    def finalize(
        self, final: Mapping[Address, Value] | None = None
    ) -> StreamVerdict:
        """End of stream: check final-value constraints (from FINAL
        frames plus ``final``) and emit the closing verdict."""
        if self.tripped is not None:
            return self.tripped
        if final:
            self._final.update(final)
        for addr in sorted(self._final, key=str):
            expected = self._final[addr]
            message = self._monitor(addr).final(expected)
            if message is not None:
                return self._violation(
                    addr, message, final={addr: expected}
                )
        return self.checkpoint(kind="final")


# ---------------------------------------------------------------------
# Monitoring a complete execution (no announced commit order)
# ---------------------------------------------------------------------
def _escalate(
    execution: Execution,
    certify: str,
    sv: StreamingVerifier,
    why: str,
) -> StreamVerdict:
    """Hand the whole execution to the offline engine and wrap its
    (certified where possible) verdict as a stream verdict."""
    from repro.engine import verify_vmc

    try:
        deep = verify_vmc(
            execution, certify="on" if certify == "off" else certify
        )
    except CertificationError:
        if certify != "off":
            raise
        deep = verify_vmc(execution, certify="off")
    if deep.violated:
        kind = "violation"
    elif deep.holds:
        kind = "final"
    else:
        kind = "unknown"
    verdict = StreamVerdict(
        kind,
        -1,  # no stream position: the offline engine decided the trace
        deep,
        execution if deep.violated else None,
        sv.snapshot(),
    )
    verdict.stats["escalated"] = why
    return verdict


def monitor_execution(
    execution: Execution,
    window: int = DEFAULT_WINDOW,
    certify: str = "off",
    heartbeat: int = 0,
    on_heartbeat=None,
) -> StreamVerdict:
    """Monitor a complete execution that carries no commit order.

    Without an announced serialization the monitor must *choose* one.
    A greedy feasible merge commits sync operations and currently-legal
    reads/RMWs eagerly and otherwise serializes a write that some
    blocked head-of-queue read demands.  If the merge consumes every
    operation, the chosen interleaving is itself a coherent commit
    order, so the stream verdict (heartbeats included, via
    ``on_heartbeat``) is exact.  If the merge gets stuck — or trips,
    which might be an artifact of the chosen interleaving rather than
    of the trace — the execution is escalated to the offline engine and
    its certified verdict is returned (``stats["escalated"]`` names the
    reason, ``op_index`` is ``-1``)."""
    n_procs = max(1, execution.num_processes)
    sv = StreamingVerifier(
        n_procs,
        initial=execution.initial,
        window=window,
        certify=certify,
        heartbeat=heartbeat,
    )
    pending = [deque(h.operations) for h in execution.histories]
    remaining = sum(len(q) for q in pending)

    def feed(op: Operation) -> StreamVerdict | None:
        nonlocal remaining
        remaining -= 1
        verdict = sv.feed_op(op)
        if verdict is None:
            return None
        if verdict.kind == "heartbeat":
            if on_heartbeat is not None:
                on_heartbeat(verdict)
            return None
        return verdict

    while remaining:
        progressed = True
        while progressed:
            progressed = False
            for proc, q in enumerate(pending):
                while q:
                    op = q[0]
                    kind = op.kind
                    if kind.is_sync:
                        ok = True
                    elif kind.reads and kind.writes:
                        ok = sv._monitor(op.addr).peek_rmw(op.value_read)
                    elif kind.reads:
                        ok = sv._monitor(op.addr).peek_read(
                            proc, op.value_read
                        )
                    else:
                        break  # plain writes are serialized on demand
                    if not ok:
                        break
                    q.popleft()
                    if feed(op) is not None:  # unreachable after peek
                        return _escalate(
                            execution, certify, sv, "greedy violation"
                        )
                    progressed = True
        if not remaining:
            break
        # Serialize a write; prefer one producing a demanded value.
        demanded = {
            (q[0].addr, q[0].value_read)
            for q in pending
            if q and q[0].kind.reads
        }
        choice = None
        for proc, q in enumerate(pending):
            head = q[0] if q else None
            if head is None or not head.kind.writes or head.kind.reads:
                continue
            if choice is None:
                choice = q
            if (head.addr, head.value_written) in demanded:
                choice = q
                break
        if choice is None:
            return _escalate(
                execution, certify, sv, "no feasible next operation"
            )
        op = choice.popleft()
        if feed(op) is not None:
            return _escalate(execution, certify, sv, "greedy violation")
    try:
        verdict = sv.finalize(execution.final)
    except CertificationError:
        verdict = None
    if verdict is None or verdict.kind != "final":
        # A final-value mismatch may blame the greedy write order, not
        # the trace; let the offline engine decide.
        return _escalate(execution, certify, sv, "greedy final mismatch")
    return verdict
