"""The unified verification engine.

This package turns the paper's Figure 5.3 dispatch ladder into an
extensible pipeline:

* :mod:`repro.engine.backend` — the :class:`Backend` interface and the
  built-in deciders (write-order, single-op, readmap, exact, CNF+SAT);
* :mod:`repro.engine.registry` — named, tier-ordered backend
  registries; routing is data, and new deciders register without
  touching any dispatch code;
* :mod:`repro.engine.planner` — decomposes a multi-address execution
  into independent per-address tasks, ordered cheapest-first;
* :mod:`repro.engine.executor` — runs the plan serially or on a thread
  pool (``jobs=N``), early-exiting on the first violation;
* :mod:`repro.engine.cache` — canonical-fingerprint result cache so
  isomorphic sub-executions are decided once;
* :mod:`repro.engine.report` — per-task stats aggregated into an
  :class:`EngineReport` (the CLI's ``--stats``).

The public verifiers in :mod:`repro.core.vmc` / :mod:`repro.core.vsc`
are thin shims over :func:`verify_vmc` / :func:`verify_vsc`; call the
engine directly for the extra knobs (jobs, shared caches, custom
registries).  See ``docs/engine.md``.
"""

from __future__ import annotations

from time import perf_counter
from typing import Mapping, Sequence

from repro.core.result import Certificate, VerificationResult
from repro.core.types import Address, Execution, Operation
from repro.engine.backend import (
    EXACT_STATE_BUDGET,
    Backend,
    BackendInapplicableError,
    Instance,
    estimated_states,
)
from repro.engine.cache import CacheStats, ResultCache, canonicalize, fingerprint
from repro.engine.certify import (
    CERTIFY_MODES,
    CertCheck,
    CertificationError,
    ensure_certificate,
    validate_result,
)
from repro.engine.chaos import CHAOS_ENV, ChaosCrash, ChaosSpec
from repro.engine.executor import (
    POOL_KINDS,
    ResiliencePolicy,
    execute_plan,
    resolve_pool,
    run_task,
)
from repro.engine.planner import PlannedTask, plan_vmc, plan_vsc
from repro.engine.portfolio import (
    PORTFOLIO_MIN_STATES,
    RACE_STATE_BUDGET,
    PortfolioBackend,
)
from repro.engine.prepass import (
    EXPONENTIAL_TIER,
    PrepassInfo,
    prepass_vmc,
    prepass_vsc,
)
from repro.engine.registry import (
    BackendRegistry,
    build_vmc_registry,
    build_vsc_registry,
    vmc_registry,
    vsc_registry,
)
from repro.engine.batch import (
    BatchPlan,
    SourceOutcome,
    batch_exit_code,
    plan_batch,
    run_batch,
    verify_many,
)
from repro.engine.report import EngineReport, TaskStats
from repro.engine.store import ResultStore, StoreStats, fingerprint_key
from repro.engine.streaming import (
    DEFAULT_WINDOW,
    AddressMonitor,
    StreamingVerifier,
    StreamStats,
    StreamVerdict,
    monitor_execution,
)

__all__ = [
    "CERTIFY_MODES",
    "CHAOS_ENV",
    "DEFAULT_WINDOW",
    "EXACT_STATE_BUDGET",
    "EXPONENTIAL_TIER",
    "POOL_KINDS",
    "PORTFOLIO_MIN_STATES",
    "RACE_STATE_BUDGET",
    "AddressMonitor",
    "Backend",
    "BackendInapplicableError",
    "BackendRegistry",
    "BatchPlan",
    "CacheStats",
    "CertCheck",
    "Certificate",
    "CertificationError",
    "ChaosCrash",
    "ChaosSpec",
    "EngineReport",
    "Instance",
    "PlannedTask",
    "PortfolioBackend",
    "PrepassInfo",
    "ResiliencePolicy",
    "ResultCache",
    "ResultStore",
    "SourceOutcome",
    "StoreStats",
    "StreamStats",
    "StreamVerdict",
    "StreamingVerifier",
    "TaskStats",
    "batch_exit_code",
    "build_vmc_registry",
    "build_vsc_registry",
    "canonicalize",
    "ensure_certificate",
    "estimated_states",
    "execute_plan",
    "fingerprint",
    "fingerprint_key",
    "monitor_execution",
    "plan_batch",
    "plan_vmc",
    "plan_vsc",
    "run_batch",
    "verify_many",
    "prepass_vmc",
    "prepass_vsc",
    "resolve_pool",
    "run_task",
    "validate_result",
    "verify_vmc",
    "verify_vmc_at",
    "verify_vsc",
    "vmc_registry",
    "vsc_registry",
]


def _resolve_cache(cache: "ResultCache | bool | None") -> ResultCache | None:
    """``None`` → fresh per-call cache (dedupes identical sub-executions
    within one verification); ``False`` → caching disabled; a
    :class:`ResultCache` → shared across calls (campaigns, sweeps)."""
    if cache is None:
        return ResultCache()
    if cache is False:
        return None
    return cache


def verify_vmc(
    execution: Execution,
    method: str = "auto",
    write_orders: Mapping[Address, Sequence[Operation]] | None = None,
    jobs: int = 1,
    cache: "ResultCache | bool | None" = None,
    registry: BackendRegistry | None = None,
    early_exit: bool = True,
    pool: str = "auto",
    prepass: bool = True,
    portfolio=True,
    resilience: ResiliencePolicy | None = None,
    certify: str = "off",
) -> VerificationResult:
    """Decide whether the execution is coherent (Section 3): a coherent
    schedule exists for *every* address.

    Plans one task per constrained address (each shrunk or decided by
    the polynomial pre-pass unless ``prepass=False``), runs them (in
    parallel when ``jobs > 1``, on threads or processes per ``pool`` —
    ``"auto"`` picks processes exactly when the plan still contains
    heavy exponential-tier work), and aggregates.  ``portfolio``
    controls the exponential tier: True races exact search vs SAT per
    task, ``"exact"``/``"sat"`` force that leg, False keeps the
    router's single choice.  Per-address results (with witnesses) are
    in ``result.per_address``; execution statistics are in
    ``result.report``.

    ``resilience`` (a :class:`ResiliencePolicy`) adds deadlines, crash
    retries and fault injection; tasks abandoned under it yield sound
    UNKNOWN per-address results, and the aggregate is UNKNOWN exactly
    when no violation was found but some address went undecided.

    ``certify`` (``"off"``/``"on"``/``"strict"``) makes every verdict
    carry a certificate validated by the independent trusted checker
    (:mod:`repro.engine.certify`) before it is cached or returned:
    ``on`` raises :class:`CertificationError` on any failure, ``strict``
    downgrades the offending verdict to a sound UNKNOWN(uncertified).
    """
    addrs = execution.constrained_addresses()
    if not addrs:
        result = VerificationResult(holds=True, method="trivial", schedule=[])
        if certify != "off":
            result.certificate = Certificate("witness")
            result.stats["certified"] = True
        result.report = EngineReport(
            problem="vmc",
            jobs=max(1, jobs),
            pool=pool if pool != "auto" else "thread",
        )
        return result
    t_plan = perf_counter()
    tasks = plan_vmc(
        execution,
        method=method,
        write_orders=write_orders,
        registry=registry,
        prepass=prepass,
        portfolio=portfolio,
    )
    t_plan = perf_counter() - t_plan
    results, report = execute_plan(
        tasks,
        jobs=jobs,
        cache=_resolve_cache(cache),
        early_exit=early_exit,
        problem="vmc",
        pool=pool,
        resilience=resilience,
        certify=certify,
    )
    per: dict[Address, VerificationResult] = {
        a: results[a] for a in addrs if a in results
    }
    bad = [a for a in addrs if a in per and per[a].violated]
    undecided = [a for a in addrs if a in per and per[a].unknown]
    if bad:
        # A violation is a verdict even if other addresses went
        # undecided: incoherence at one address is incoherence.
        first = per[bad[0]]
        agg = VerificationResult(
            holds=False,
            method=first.method,
            reason=f"address {bad[0]!r} has no coherent schedule: "
            f"{first.reason}",
            certificate=first.certificate,
        )
    elif undecided:
        first = per[undecided[0]]
        agg = VerificationResult.make_unknown(
            method=first.method,
            reason=first.unknown_reason,
            detail=f"{len(undecided)}/{len(addrs)} addresses undecided; "
            f"first: {first.reason}",
        )
    else:
        only = per[addrs[0]]
        agg = VerificationResult(
            holds=True,
            method=only.method if len(addrs) == 1 else "per-address",
            schedule=only.schedule if len(addrs) == 1 else None,
            certificate=only.certificate if len(addrs) == 1 else None,
        )
    agg.per_address = per
    if len(addrs) == 1:
        agg.address = addrs[0]
    report.stage_times["prepass"] = t_plan
    agg.report = report
    return agg


def verify_vmc_at(
    execution: Execution,
    addr: Address,
    method: str = "auto",
    write_order: Sequence[Operation] | None = None,
    cache: "ResultCache | bool | None" = False,
    registry: BackendRegistry | None = None,
    prepass: bool = True,
    portfolio=True,
    resilience: ResiliencePolicy | None = None,
    certify: str = "off",
) -> VerificationResult:
    """Decide VMC at one address of a (possibly multi-address)
    execution."""
    from repro.engine.planner import _prepassed_task

    registry = registry or vmc_registry()
    if method != "auto":
        registry.get(method)
    t_plan = perf_counter()
    sub = execution.restrict_to_address(addr)
    instance = Instance(sub, address=addr, write_order=write_order, problem="vmc")
    task = _prepassed_task(
        0, addr, instance, method, registry, prepass, portfolio
    )
    t_plan = perf_counter() - t_plan
    results, report = execute_plan(
        [task], jobs=1, cache=_resolve_cache(cache), problem="vmc",
        resilience=resilience, certify=certify,
    )
    result = results[addr]
    report.stage_times["prepass"] = t_plan
    result.report = report
    return result


def verify_vsc(
    execution: Execution,
    method: str = "auto",
    cache: "ResultCache | bool | None" = False,
    registry: BackendRegistry | None = None,
    prepass: bool = True,
    portfolio=True,
    resilience: ResiliencePolicy | None = None,
    certify: str = "off",
) -> VerificationResult:
    """Decide whether a sequentially consistent schedule exists
    (Definition 6.1).  VSC needs one schedule over all addresses at
    once, so there is a single task — no per-address parallelism."""
    t_plan = perf_counter()
    tasks = plan_vsc(
        execution,
        method=method,
        registry=registry,
        prepass=prepass,
        portfolio=portfolio,
    )
    t_plan = perf_counter() - t_plan
    results, report = execute_plan(
        tasks, jobs=1, cache=_resolve_cache(cache), problem="vsc",
        resilience=resilience, certify=certify,
    )
    result = results[None]
    report.stage_times["prepass"] = t_plan
    result.report = report
    return result
