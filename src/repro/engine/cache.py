"""Canonical-fingerprint result caching.

Memsys campaigns and benchmark sweeps verify thousands of per-address
sub-executions, and a large fraction are *the same instance up to
renaming*: the same read/write pattern at a different address, with
different value names, or with the processes permuted.  Coherence is
invariant under all three relabelings, so the engine hashes a canonical
form of every task and serves repeats from a dictionary.

Canonicalization (:func:`canonicalize`):

* empty process histories are dropped (they cannot constrain a
  schedule);
* addresses are renamed to dense ids by first appearance;
* values (including initial and final values) are renamed to dense ids
  by first appearance — the initial value of the first address always
  becomes id 0;
* each history becomes a tuple of ``(kind, addr_id, read_id,
  write_id)`` codes, positions replacing the original program-order
  indices (sub-executions keep gappy parent indices);
* histories are sorted lexicographically, making the fingerprint
  invariant under most process permutations.

Equal fingerprints imply the two instances are isomorphic (the
fingerprint is a faithful relabeling), so a cached verdict — and a
cached witness, stored as canonical op positions and mapped back onto
the new execution's operations — is always correct.  The converse does
not hold: some isomorphic pairs hash differently (value ids are
assigned before histories are sorted), which only costs a cache miss,
never a wrong answer.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Hashable, Sequence

from repro.core.result import Certificate, VerificationResult
from repro.core.types import Execution, Operation

if TYPE_CHECKING:
    from repro.engine.store import ResultStore


@dataclass
class CanonicalInstance:
    """A task's canonical form plus the maps back to the real ops."""

    key: Hashable
    #: Flat canonical op list: histories in canonical order, program
    #: order within each; entries are the *original* operations.
    ops: list[Operation]
    #: uid -> position in ``ops``.
    index_of: dict[tuple[int, int], int]


def canonicalize(
    execution: Execution,
    write_order: Sequence[Operation] | None = None,
    problem: str = "vmc",
    method: str = "auto",
) -> CanonicalInstance:
    """Compute the canonical form of one verification task.

    Runs over the columnar view's interned ids — one remap of the
    already-deduplicated tables instead of re-hashing every operation's
    objects — and produces keys identical to the original object walk
    (interning uses the same hash/== semantics).
    """
    from repro.core.columnar import KINDS_BY_CODE

    view = execution.columnar()
    col_kinds = view.kinds
    col_addr = view.addr_ids
    col_rv = view.read_vids
    col_wv = view.write_vids

    # Canonical address order: touched ids by first appearance (the
    # view's own order), then final-only addresses ordered by repr so
    # dict insertion order cannot leak into the key.  Initial-only
    # addresses stay out of the key (they cannot constrain a schedule).
    addr_order = list(range(view.n_touched))
    addr_order += sorted(
        range(view.n_touched, view.n_constrained),
        key=lambda ai: repr(view.addrs[ai]),
    )
    canon_aid = {ai: i for i, ai in enumerate(addr_order)}

    # Canonical value ids: remap view vids by first appearance —
    # initial values (canonical address order) first, then op values in
    # flat order, then finals.
    canon_vid: dict[int, int] = {}

    def cvid(vv: int) -> int:
        i = canon_vid.get(vv)
        if i is None:
            i = canon_vid[vv] = len(canon_vid)
        return i

    for ai in addr_order:
        cvid(view.initial_ids[ai])
    encoded: list[tuple] = []
    nonempty: list[int] = []
    for p in range(view.n_procs):
        s = view.proc_slice(p)
        if s.start == s.stop:
            continue  # empty histories cannot constrain a schedule
        nonempty.append(p)
        row = []
        for pos in range(s.start, s.stop):
            rv = col_rv[pos]
            wv = col_wv[pos]
            row.append(
                (
                    KINDS_BY_CODE[col_kinds[pos]].value,
                    canon_aid[col_addr[pos]],
                    cvid(rv) if rv >= 0 else -1,
                    cvid(wv) if wv >= 0 else -1,
                )
            )
        encoded.append(tuple(row))
    constraints = tuple(
        (
            canon_vid[view.initial_ids[ai]],
            cvid(view.final_ids[ai]) if view.final_ids[ai] >= 0 else -1,
        )
        for ai in addr_order
    )

    perm = sorted(range(len(encoded)), key=lambda p: encoded[p])
    flat: list[Operation] = []
    index_of: dict[tuple[int, int], int] = {}
    for p in perm:
        s = view.proc_slice(nonempty[p])
        for pos in range(s.start, s.stop):
            op = view.op_at(pos)
            index_of[op.uid] = len(flat)
            flat.append(op)

    wo_key: tuple | None = None
    if write_order is not None:
        # Encode content as well as identity: a (possibly faulty)
        # memory system may hand back an order containing operations
        # that are missing from, or disagree with, the execution — the
        # write-order backend decides such instances "not coherent
        # under this order", and the fingerprint must distinguish them.
        # Foreign values (absent from the trace) extend the canonical
        # numbering by value equality, like the old object walk did.
        value_key: dict[Hashable, int] = {
            view.values[vv]: cid for vv, cid in canon_vid.items()
        }

        def vkey(v: Hashable) -> int:
            cid = value_key.get(v)
            if cid is None:
                cid = value_key[v] = len(value_key)
            return cid

        wo_key = tuple(
            (
                index_of.get(op.uid, -1),
                op.kind.value,
                vkey(op.value_read) if op.kind.reads else -1,
                vkey(op.value_written) if op.kind.writes else -1,
            )
            for op in write_order
        )

    key = (
        problem,
        method,
        tuple(encoded[p] for p in perm),
        constraints,
        wo_key,
    )
    return CanonicalInstance(key=key, ops=flat, index_of=index_of)


@dataclass
class _Entry:
    holds: bool
    method: str
    reason: str
    schedule_idx: list[int] | None
    stats: dict[str, Any]
    #: The verdict's certificate, stored verbatim.  Witness markers
    #: transfer to any isomorphic hit (the schedule is re-materialized
    #: onto the new ops); refutation certificates reference original
    #: uids / variable numberings, so a permuted hit may fail the
    #: on-hit re-validation — which costs a recompute, never a wrong
    #: answer.
    certificate: Certificate | None = None
    #: Whether the entry was loaded from the persistent store tier (so
    #: a later validation failure is charged to the store, not to the
    #: in-memory cache).
    from_store: bool = False


@dataclass
class CacheStats:
    #: Served from the in-memory tier.
    hits: int = 0
    #: Missed both the in-memory tier and the store (if attached).
    misses: int = 0
    stores: int = 0
    evictions: int = 0
    #: Hits whose re-materialized result failed the on-hit check (a
    #: witness that no longer replays, or a certificate the trusted
    #: checker rejects): the entry is dropped and the task recomputed.
    validation_failures: int = 0
    #: Served from the persistent store tier (memory miss, disk hit).
    store_hits: int = 0
    #: Store-loaded entries that failed the on-hit check — corrupt,
    #: stale, or tampered records evicted (tombstoned) and recomputed.
    store_revalidation_failures: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.store_hits + self.misses
        return (self.hits + self.store_hits) / total if total else 0.0

    def summary(self) -> str:
        text = (
            f"{self.hits} memory hit / {self.store_hits} store hit / "
            f"{self.misses} miss "
            f"({self.hit_rate:.0%}), {self.stores} stored, "
            f"{self.evictions} evicted, "
            f"{self.validation_failures} failed validation"
        )
        if self.store_revalidation_failures:
            text += (
                f", {self.store_revalidation_failures} store records "
                f"failed revalidation"
            )
        return text


class ResultCache:
    """Thread-safe verdict/witness cache keyed by canonical fingerprint.

    The witness is stored as canonical op positions; on a hit it is
    re-materialized with the *current* execution's operations, so the
    returned schedule passes :mod:`repro.core.checker` for the new
    instance even though it was computed for an isomorphic one.

    With a :class:`~repro.engine.store.ResultStore` attached the cache
    becomes two-tiered: lookups fall through to the store on a memory
    miss (read-through, the loaded entry is promoted into memory) and
    every store writes through to disk — so the executor, pre-pass,
    portfolio, streaming, and batch paths all gain cross-run
    persistence without any call-site change.  Store-loaded verdicts
    pass through the same on-hit validation seam as memory hits
    (:func:`repro.engine.executor._cache_lookup`); a failure evicts the
    record from *both* tiers and recomputes.
    """

    def __init__(
        self,
        max_entries: int | None = None,
        store: "ResultStore | None" = None,
    ):
        self._data: dict[Hashable, _Entry] = {}
        self._lock = threading.Lock()
        self.max_entries = max_entries
        self.store_tier = store
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._data)

    def _install(self, key: Hashable, entry: _Entry) -> None:
        """Insert under the lock, honouring ``max_entries`` (FIFO)."""
        if (
            self.max_entries is not None
            and key not in self._data
            and len(self._data) >= self.max_entries
        ):
            self._data.pop(next(iter(self._data)))
            self.stats.evictions += 1
        self._data[key] = entry

    def lookup(self, canon: CanonicalInstance) -> VerificationResult | None:
        with self._lock:
            entry = self._data.get(canon.key)
            if entry is not None:
                self.stats.hits += 1
        from_store = False
        if entry is None and self.store_tier is not None:
            rec = self.store_tier.lookup(canon)
            if rec is not None:
                entry = _Entry(
                    holds=rec["holds"],
                    method=rec["method"],
                    reason=rec["reason"],
                    schedule_idx=rec["schedule_idx"],
                    stats=rec["stats"],
                    certificate=rec["certificate"],
                    from_store=True,
                )
                from_store = True
                with self._lock:
                    self._install(canon.key, entry)
                    self.stats.store_hits += 1
        if entry is None:
            with self._lock:
                self.stats.misses += 1
            return None
        schedule = None
        if entry.schedule_idx is not None:
            schedule = [canon.ops[i] for i in entry.schedule_idx]
        stats = dict(entry.stats)
        stats["cache_hit"] = True
        if from_store:
            stats["store_hit"] = True
        return VerificationResult(
            holds=entry.holds,
            method=entry.method,
            schedule=schedule,
            reason=entry.reason,
            stats=stats,
            certificate=entry.certificate,
        )

    def invalidate(self, canon: CanonicalInstance) -> None:
        """Drop an entry whose re-materialized result failed the on-hit
        check; the caller recomputes the task as if it had missed.  A
        store-loaded entry is tombstoned on disk too — a corrupt or
        stale record must never be trusted by a later run either."""
        with self._lock:
            entry = self._data.pop(canon.key, None)
            self.stats.validation_failures += 1
            if entry is not None and entry.from_store:
                self.stats.store_revalidation_failures += 1
        if self.store_tier is not None:
            self.store_tier.invalidate(canon)

    def store(self, canon: CanonicalInstance, result: VerificationResult) -> None:
        schedule_idx = None
        if result.schedule is not None:
            try:
                schedule_idx = [canon.index_of[op.uid] for op in result.schedule]
            except KeyError:
                # A witness op outside the canonical listing (should not
                # happen for engine tasks); skip witness caching.
                schedule_idx = None
        entry = _Entry(
            holds=result.holds,
            method=result.method,
            reason=result.reason,
            schedule_idx=schedule_idx,
            stats={
                k: v
                for k, v in result.stats.items()
                if k not in ("cache_hit", "store_hit", "t_certify")
            },
            certificate=result.certificate,
        )
        with self._lock:
            if canon.key not in self._data:
                self.stats.stores += 1
            self._install(canon.key, entry)
        if self.store_tier is not None and not result.unknown:
            self.store_tier.put(
                canon,
                holds=entry.holds,
                method=entry.method,
                reason=entry.reason,
                schedule_idx=entry.schedule_idx,
                stats=entry.stats,
                certificate=entry.certificate,
            )

    def flush_store(self) -> None:
        """Persist buffered write-through entries (one fsync batch per
        dirty shard); a no-op without a store tier."""
        if self.store_tier is not None:
            self.store_tier.flush()

    def clear(self) -> None:
        """Reset the in-memory tier and counters (the store survives)."""
        with self._lock:
            self._data.clear()
            self.stats = CacheStats()


def fingerprint(
    execution: Execution,
    write_order: Sequence[Operation] | None = None,
    problem: str = "vmc",
    method: str = "auto",
) -> Hashable:
    """The canonical cache key of a task (mostly for tests/debugging)."""
    return canonicalize(execution, write_order, problem, method).key
