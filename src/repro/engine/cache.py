"""Canonical-fingerprint result caching.

Memsys campaigns and benchmark sweeps verify thousands of per-address
sub-executions, and a large fraction are *the same instance up to
renaming*: the same read/write pattern at a different address, with
different value names, or with the processes permuted.  Coherence is
invariant under all three relabelings, so the engine hashes a canonical
form of every task and serves repeats from a dictionary.

Canonicalization (:func:`canonicalize`):

* empty process histories are dropped (they cannot constrain a
  schedule);
* addresses are renamed to dense ids by first appearance;
* values (including initial and final values) are renamed to dense ids
  by first appearance — the initial value of the first address always
  becomes id 0;
* each history becomes a tuple of ``(kind, addr_id, read_id,
  write_id)`` codes, positions replacing the original program-order
  indices (sub-executions keep gappy parent indices);
* histories are sorted lexicographically, making the fingerprint
  invariant under most process permutations.

Equal fingerprints imply the two instances are isomorphic (the
fingerprint is a faithful relabeling), so a cached verdict — and a
cached witness, stored as canonical op positions and mapped back onto
the new execution's operations — is always correct.  The converse does
not hold: some isomorphic pairs hash differently (value ids are
assigned before histories are sorted), which only costs a cache miss,
never a wrong answer.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Hashable, Sequence

from repro.core.result import Certificate, VerificationResult
from repro.core.types import Execution, Operation


@dataclass
class CanonicalInstance:
    """A task's canonical form plus the maps back to the real ops."""

    key: Hashable
    #: Flat canonical op list: histories in canonical order, program
    #: order within each; entries are the *original* operations.
    ops: list[Operation]
    #: uid -> position in ``ops``.
    index_of: dict[tuple[int, int], int]


def canonicalize(
    execution: Execution,
    write_order: Sequence[Operation] | None = None,
    problem: str = "vmc",
    method: str = "auto",
) -> CanonicalInstance:
    """Compute the canonical form of one verification task.

    Runs over the columnar view's interned ids — one remap of the
    already-deduplicated tables instead of re-hashing every operation's
    objects — and produces keys identical to the original object walk
    (interning uses the same hash/== semantics).
    """
    from repro.core.columnar import KINDS_BY_CODE

    view = execution.columnar()
    col_kinds = view.kinds
    col_addr = view.addr_ids
    col_rv = view.read_vids
    col_wv = view.write_vids

    # Canonical address order: touched ids by first appearance (the
    # view's own order), then final-only addresses ordered by repr so
    # dict insertion order cannot leak into the key.  Initial-only
    # addresses stay out of the key (they cannot constrain a schedule).
    addr_order = list(range(view.n_touched))
    addr_order += sorted(
        range(view.n_touched, view.n_constrained),
        key=lambda ai: repr(view.addrs[ai]),
    )
    canon_aid = {ai: i for i, ai in enumerate(addr_order)}

    # Canonical value ids: remap view vids by first appearance —
    # initial values (canonical address order) first, then op values in
    # flat order, then finals.
    canon_vid: dict[int, int] = {}

    def cvid(vv: int) -> int:
        i = canon_vid.get(vv)
        if i is None:
            i = canon_vid[vv] = len(canon_vid)
        return i

    for ai in addr_order:
        cvid(view.initial_ids[ai])
    encoded: list[tuple] = []
    nonempty: list[int] = []
    for p in range(view.n_procs):
        s = view.proc_slice(p)
        if s.start == s.stop:
            continue  # empty histories cannot constrain a schedule
        nonempty.append(p)
        row = []
        for pos in range(s.start, s.stop):
            rv = col_rv[pos]
            wv = col_wv[pos]
            row.append(
                (
                    KINDS_BY_CODE[col_kinds[pos]].value,
                    canon_aid[col_addr[pos]],
                    cvid(rv) if rv >= 0 else -1,
                    cvid(wv) if wv >= 0 else -1,
                )
            )
        encoded.append(tuple(row))
    constraints = tuple(
        (
            canon_vid[view.initial_ids[ai]],
            cvid(view.final_ids[ai]) if view.final_ids[ai] >= 0 else -1,
        )
        for ai in addr_order
    )

    perm = sorted(range(len(encoded)), key=lambda p: encoded[p])
    flat: list[Operation] = []
    index_of: dict[tuple[int, int], int] = {}
    for p in perm:
        s = view.proc_slice(nonempty[p])
        for pos in range(s.start, s.stop):
            op = view.op_at(pos)
            index_of[op.uid] = len(flat)
            flat.append(op)

    wo_key: tuple | None = None
    if write_order is not None:
        # Encode content as well as identity: a (possibly faulty)
        # memory system may hand back an order containing operations
        # that are missing from, or disagree with, the execution — the
        # write-order backend decides such instances "not coherent
        # under this order", and the fingerprint must distinguish them.
        # Foreign values (absent from the trace) extend the canonical
        # numbering by value equality, like the old object walk did.
        value_key: dict[Hashable, int] = {
            view.values[vv]: cid for vv, cid in canon_vid.items()
        }

        def vkey(v: Hashable) -> int:
            cid = value_key.get(v)
            if cid is None:
                cid = value_key[v] = len(value_key)
            return cid

        wo_key = tuple(
            (
                index_of.get(op.uid, -1),
                op.kind.value,
                vkey(op.value_read) if op.kind.reads else -1,
                vkey(op.value_written) if op.kind.writes else -1,
            )
            for op in write_order
        )

    key = (
        problem,
        method,
        tuple(encoded[p] for p in perm),
        constraints,
        wo_key,
    )
    return CanonicalInstance(key=key, ops=flat, index_of=index_of)


@dataclass
class _Entry:
    holds: bool
    method: str
    reason: str
    schedule_idx: list[int] | None
    stats: dict[str, Any]
    #: The verdict's certificate, stored verbatim.  Witness markers
    #: transfer to any isomorphic hit (the schedule is re-materialized
    #: onto the new ops); refutation certificates reference original
    #: uids / variable numberings, so a permuted hit may fail the
    #: on-hit re-validation — which costs a recompute, never a wrong
    #: answer.
    certificate: Certificate | None = None


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0
    #: Hits whose re-materialized result failed the on-hit check (a
    #: witness that no longer replays, or a certificate the trusted
    #: checker rejects): the entry is dropped and the task recomputed.
    validation_failures: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def summary(self) -> str:
        return (
            f"{self.hits} hit / {self.misses} miss "
            f"({self.hit_rate:.0%}), {self.stores} stored, "
            f"{self.evictions} evicted, "
            f"{self.validation_failures} failed validation"
        )


class ResultCache:
    """Thread-safe verdict/witness cache keyed by canonical fingerprint.

    The witness is stored as canonical op positions; on a hit it is
    re-materialized with the *current* execution's operations, so the
    returned schedule passes :mod:`repro.core.checker` for the new
    instance even though it was computed for an isomorphic one.
    """

    def __init__(self, max_entries: int | None = None):
        self._data: dict[Hashable, _Entry] = {}
        self._lock = threading.Lock()
        self.max_entries = max_entries
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._data)

    def lookup(self, canon: CanonicalInstance) -> VerificationResult | None:
        with self._lock:
            entry = self._data.get(canon.key)
            if entry is None:
                self.stats.misses += 1
                return None
            self.stats.hits += 1
        schedule = None
        if entry.schedule_idx is not None:
            schedule = [canon.ops[i] for i in entry.schedule_idx]
        stats = dict(entry.stats)
        stats["cache_hit"] = True
        return VerificationResult(
            holds=entry.holds,
            method=entry.method,
            schedule=schedule,
            reason=entry.reason,
            stats=stats,
            certificate=entry.certificate,
        )

    def invalidate(self, canon: CanonicalInstance) -> None:
        """Drop an entry whose re-materialized result failed the on-hit
        check; the caller recomputes the task as if it had missed."""
        with self._lock:
            self._data.pop(canon.key, None)
            self.stats.validation_failures += 1

    def store(self, canon: CanonicalInstance, result: VerificationResult) -> None:
        schedule_idx = None
        if result.schedule is not None:
            try:
                schedule_idx = [canon.index_of[op.uid] for op in result.schedule]
            except KeyError:
                # A witness op outside the canonical listing (should not
                # happen for engine tasks); skip witness caching.
                schedule_idx = None
        entry = _Entry(
            holds=result.holds,
            method=result.method,
            reason=result.reason,
            schedule_idx=schedule_idx,
            stats={
                k: v
                for k, v in result.stats.items()
                if k not in ("cache_hit", "t_certify")
            },
            certificate=result.certificate,
        )
        with self._lock:
            if (
                self.max_entries is not None
                and canon.key not in self._data
                and len(self._data) >= self.max_entries
            ):
                self._data.pop(next(iter(self._data)))
                self.stats.evictions += 1
            if canon.key not in self._data:
                self.stats.stores += 1
            self._data[canon.key] = entry

    def clear(self) -> None:
        with self._lock:
            self._data.clear()
            self.stats = CacheStats()


def fingerprint(
    execution: Execution,
    write_order: Sequence[Operation] | None = None,
    problem: str = "vmc",
    method: str = "auto",
) -> Hashable:
    """The canonical cache key of a task (mostly for tests/debugging)."""
    return canonicalize(execution, write_order, problem, method).key
