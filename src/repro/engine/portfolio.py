"""Intra-task portfolio racing for the exponential tier.

The paper gives two exact procedures for the NP-complete general case:
the memoized frontier search of Section 5.1 and the SAT reduction of
Section 4.  Neither dominates — the search is near-instant when the
state space is small or commit-collapsible, the SAT route is robust
when the search blows up.  A :class:`PortfolioBackend` races both legs
on the *same* instance, takes the first sound verdict, and cancels the
loser cooperatively (via :mod:`repro.util.control` stop checks).

Race protocol
-------------

* Each leg runs ``run_cancellable(instance, stop.is_set)`` in its own
  thread.  The first leg to produce a verdict sets the shared stop
  event; the losing leg observes it at its next
  :data:`~repro.util.control.CHECK_INTERVAL` poll and raises
  :class:`~repro.util.control.Cancelled`, which the race records and
  swallows.
* A leg hitting its state budget (:class:`SearchBudgetExceeded`) bows
  out *without* setting the stop event — the other leg keeps running.
  This is how "budget exhaustion escalates to the SAT leg" works inside
  a race: the exact leg is given :data:`RACE_STATE_BUDGET` and simply
  retires if the instance is too big for it.
* A leg error is recorded; it is re-raised only if no other leg wins.
* If every leg bows out (all budgets exceeded), the race falls back to
  running the last leg (the SAT route, which always terminates)
  uncapped and uncancelled.

With one CPU (or under the GIL) the race still pays off whenever the
legs' costs are lopsided: the cheap leg finishes after ~2x its solo
time (the legs interleave), then cancels the expensive one — bounded
overhead in exchange for never being stuck on the wrong algorithm.
"""

from __future__ import annotations

import threading
from typing import Sequence

from repro.core.exact import SearchBudgetExceeded
from repro.core.result import VerificationResult
from repro.engine.backend import Backend, Instance
from repro.util.control import Cancelled, StopCheck

#: Instances whose estimated state count is below this are decided by
#: the exact search alone — it wins the race so fast that spinning up a
#: second leg (thread + CNF encoding) costs more than it can save.
PORTFOLIO_MIN_STATES = 20_000

#: State budget for the exact leg *inside a race*.  Past this the leg
#: retires and lets the SAT leg finish; deliberately smaller than the
#: router's EXACT_STATE_BUDGET since here retiring is cheap.
RACE_STATE_BUDGET = 250_000


class PortfolioBackend(Backend):
    """Race several backends on one instance; first sound verdict wins.

    The planner builds these around exponential-tier tasks; ``legs``
    are complete :class:`Backend` instances (typically a budgeted exact
    search and a SAT route).  The portfolio reports the *winner's*
    result, augmented with a ``stats["portfolio"]`` record of the race.
    """

    problem = "vmc"

    def __init__(self, legs: Sequence[Backend], problem: str = "vmc"):
        if not legs:
            raise ValueError("portfolio needs at least one leg")
        self.legs = list(legs)
        self.problem = problem
        self.name = "portfolio"
        self.tier = min(leg.tier for leg in self.legs)

    def applicable(self, instance: Instance) -> bool:
        return any(leg.applicable(instance) for leg in self.legs)

    def cost_estimate(self, instance: Instance) -> float:
        return min(leg.cost_estimate(instance) for leg in self.legs)

    def run(self, instance: Instance) -> VerificationResult:
        legs = [leg for leg in self.legs if leg.applicable(instance)]
        if not legs:
            legs = [self.legs[-1]]
        if len(legs) == 1:
            return legs[0].run(instance)
        return self._race(legs, instance)

    def run_cancellable(
        self, instance: Instance, should_stop: StopCheck = None
    ) -> VerificationResult:
        return self.run(instance)

    def _race(
        self, legs: Sequence[Backend], instance: Instance
    ) -> VerificationResult:
        stop = threading.Event()
        lock = threading.Lock()
        done: list[tuple[str, VerificationResult]] = []
        cancelled: list[str] = []
        budget_exceeded: list[str] = []
        errors: list[tuple[str, BaseException]] = []

        def leg_main(leg: Backend) -> None:
            try:
                result = leg.run_cancellable(instance, stop.is_set)
            except Cancelled:
                with lock:
                    cancelled.append(leg.name)
                return
            except SearchBudgetExceeded:
                # Bow out quietly; the other leg keeps running.
                with lock:
                    budget_exceeded.append(leg.name)
                return
            except BaseException as e:  # noqa: BLE001 - re-raised below
                with lock:
                    errors.append((leg.name, e))
                stop.set()  # no point letting the other leg spin
                return
            with lock:
                done.append((leg.name, result))
            stop.set()

        threads = [
            threading.Thread(target=leg_main, args=(leg,), daemon=True)
            for leg in legs
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        if not done:
            if errors:
                raise errors[0][1]
            # Every leg retired on budget: run the terminating leg
            # (by convention the SAT route is last) to completion.
            result = legs[-1].run(instance)
            winner = legs[-1].name
        else:
            winner, result = done[0]
            for other_name, other in done[1:]:
                if other.holds != result.holds:
                    raise RuntimeError(
                        f"portfolio legs disagree on verdict: "
                        f"{winner}={result.holds} vs "
                        f"{other_name}={other.holds}"
                    )
            if errors:
                # A losing leg crashed but the winner is sound; surface
                # the crash in stats rather than failing the task.
                pass
        result.stats["portfolio"] = {
            "winner": winner,
            "raced": [leg.name for leg in legs],
            "cancelled": len(cancelled),
            "budget_exceeded": len(budget_exceeded),
            "errors": [name for name, _ in errors],
        }
        return result
