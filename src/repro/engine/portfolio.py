"""Intra-task portfolio racing for the exponential tier.

The paper gives two exact procedures for the NP-complete general case:
the memoized frontier search of Section 5.1 and the SAT reduction of
Section 4.  Neither dominates — the search is near-instant when the
state space is small or commit-collapsible, the SAT route is robust
when the search blows up.  A :class:`PortfolioBackend` races both legs
on the *same* instance, takes the first sound verdict, and cancels the
loser cooperatively (via :mod:`repro.util.control` stop checks).

Race protocol
-------------

* Each leg runs ``run_cancellable(instance, stop.is_set)`` in its own
  thread.  The first leg to produce a verdict sets the shared stop
  event; the losing leg observes it at its next
  :data:`~repro.util.control.CHECK_INTERVAL` poll and raises
  :class:`~repro.util.control.Cancelled`, which the race records and
  swallows.
* A leg hitting its state budget (:class:`SearchBudgetExceeded`) bows
  out *without* setting the stop event — the other leg keeps running.
  This is how "budget exhaustion escalates to the SAT leg" works inside
  a race: the exact leg is given :data:`RACE_STATE_BUDGET` and simply
  retires if the instance is too big for it.
* A leg error is recorded; it is re-raised only if no other leg wins.
* If every leg bows out (all budgets exceeded), the race falls back to
  running the last leg (the SAT route, which always terminates)
  uncapped and uncancelled.

With one CPU (or under the GIL) the race still pays off whenever the
legs' costs are lopsided: the cheap leg finishes after ~2x its solo
time (the legs interleave), then cancels the expensive one — bounded
overhead in exchange for never being stuck on the wrong algorithm.
"""

from __future__ import annotations

import threading
from typing import Sequence

from repro.core.exact import SearchBudgetExceeded
from repro.core.result import VerificationResult
from repro.engine.backend import Backend, Instance
from repro.engine.chaos import ChaosSpec
from repro.util.control import Cancelled, StopCheck, any_stop

#: Instances whose estimated state count is below this are decided by
#: the exact search alone — it wins the race so fast that spinning up a
#: second leg (thread + CNF encoding) costs more than it can save.
PORTFOLIO_MIN_STATES = 20_000

#: State budget for the exact leg *inside a race*.  Past this the leg
#: retires and lets the SAT leg finish; deliberately smaller than the
#: router's EXACT_STATE_BUDGET since here retiring is cheap.
RACE_STATE_BUDGET = 250_000

#: After a race is decided the losers get this long to observe the stop
#: event and exit; a leg still alive past it is *abandoned* — left to
#: die with its daemon thread rather than allowed to hang the race.  A
#: cooperative leg stops within one CHECK_INTERVAL poll (milliseconds),
#: so only a genuinely wedged leg ever hits this.
LEG_GRACE_S = 1.0

#: External-stop (deadline / run-budget) poll period while waiting for
#: a verdict.  Only paid when the caller supplied a stop check.
_WAIT_POLL_S = 0.01


def _dump_disagreement(
    instance: Instance,
    legs: Sequence[tuple[str, VerificationResult]],
) -> str:
    """Write a self-contained diagnostics file for a verdict
    disagreement — the instance's full trace plus each leg's verdict,
    witness and certificate — and return its path."""
    import json
    import os
    import tempfile

    from repro.core.serialize import execution_to_dict

    payload = {
        "what": "portfolio verdict disagreement",
        "problem": instance.problem,
        "address": repr(instance.address),
        "execution": execution_to_dict(instance.execution),
        "legs": [
            {
                "leg": name,
                "holds": r.holds,
                "method": r.method,
                "reason": r.reason,
                "schedule": (
                    None if r.schedule is None
                    else [repr(op) for op in r.schedule]
                ),
                "certificate": repr(r.certificate),
                "stats": {
                    k: v for k, v in r.stats.items()
                    if isinstance(v, (int, float, str, bool))
                },
            }
            for name, r in legs
        ],
    }
    fd, path = tempfile.mkstemp(
        prefix="repro-disagreement-", suffix=".json"
    )
    with os.fdopen(fd, "w") as f:
        json.dump(payload, f, indent=2, default=repr)
    return path


class PortfolioBackend(Backend):
    """Race several backends on one instance; first sound verdict wins.

    The planner builds these around exponential-tier tasks; ``legs``
    are complete :class:`Backend` instances (typically a budgeted exact
    search and a SAT route).  The portfolio reports the *winner's*
    result, augmented with a ``stats["portfolio"]`` record of the race.
    """

    problem = "vmc"

    def __init__(self, legs: Sequence[Backend], problem: str = "vmc"):
        if not legs:
            raise ValueError("portfolio needs at least one leg")
        self.legs = list(legs)
        self.problem = problem
        self.name = "portfolio"
        self.tier = min(leg.tier for leg in self.legs)
        #: Fault-injection context, set per task by the executor when a
        #: chaos spec is active (pickles with the task into workers).
        self.chaos: ChaosSpec | None = None
        self.chaos_key: str = ""

    def applicable(self, instance: Instance) -> bool:
        return any(leg.applicable(instance) for leg in self.legs)

    def cost_estimate(self, instance: Instance) -> float:
        return min(leg.cost_estimate(instance) for leg in self.legs)

    def run(self, instance: Instance) -> VerificationResult:
        return self.run_resilient(instance, None)

    def run_cancellable(
        self, instance: Instance, should_stop: StopCheck = None
    ) -> VerificationResult:
        return self.run_resilient(instance, should_stop)

    def run_resilient(
        self, instance: Instance, should_stop: StopCheck = None
    ) -> VerificationResult:
        """Race the legs; ``should_stop`` (a task deadline or the run
        budget) aborts the whole race, raising ``Cancelled``."""
        legs = [leg for leg in self.legs if leg.applicable(instance)]
        if not legs:
            legs = [self.legs[-1]]
        if len(legs) == 1:
            return legs[0].run_resilient(instance, should_stop)
        return self._race(legs, instance, should_stop)

    def _race(
        self,
        legs: Sequence[Backend],
        instance: Instance,
        external_stop: StopCheck = None,
    ) -> VerificationResult:
        stop = threading.Event()
        leg_stop = any_stop(stop.is_set, external_stop)
        cond = threading.Condition()
        exited = [0]  # legs that returned/raised (not merely abandoned)
        done: list[tuple[str, VerificationResult]] = []
        cancelled: list[str] = []
        budget_exceeded: list[str] = []
        errors: list[tuple[str, BaseException]] = []

        def leg_main(leg: Backend) -> None:
            try:
                if self.chaos is not None:
                    self.chaos.stall_leg(self.chaos_key, leg.name, leg_stop)
                result = leg.run_cancellable(instance, leg_stop)
            except Cancelled:
                with cond:
                    cancelled.append(leg.name)
            except SearchBudgetExceeded:
                # Bow out quietly; the other leg keeps running.
                with cond:
                    budget_exceeded.append(leg.name)
            except BaseException as e:  # noqa: BLE001 - re-raised below
                with cond:
                    errors.append((leg.name, e))
                stop.set()  # no point letting the other leg spin
            else:
                with cond:
                    done.append((leg.name, result))
                stop.set()
            finally:
                with cond:
                    exited[0] += 1
                    cond.notify_all()

        threads = [
            threading.Thread(target=leg_main, args=(leg,), daemon=True)
            for leg in legs
        ]
        for t in threads:
            t.start()
        # Wait for a verdict (or every leg to give up) — but never block
        # unboundedly on a wedged leg when an external stop is watching.
        with cond:
            while not done and exited[0] < len(legs):
                if external_stop is not None and external_stop():
                    break
                cond.wait(
                    timeout=_WAIT_POLL_S if external_stop is not None else None
                )
        # The race is decided (or aborted): give the remaining legs one
        # grace period to observe the stop event, then abandon them to
        # their daemon threads — no leg outlives its race by more than a
        # stop-check poll unless it has stopped polling entirely.
        stop.set()
        for t in threads:
            t.join(timeout=LEG_GRACE_S)
        abandoned = [t for t in threads if t.is_alive()]

        with cond:  # freeze the records against late leg writes
            done_now = list(done)
            errors_now = list(errors)
        if not done_now:
            if external_stop is not None and external_stop():
                raise Cancelled("portfolio race", 0)
            if errors_now:
                raise errors_now[0][1]
            # Every leg retired on budget: run the terminating leg
            # (by convention the SAT route is last) to completion.
            result = legs[-1].run_resilient(instance, external_stop)
            winner = legs[-1].name
        else:
            winner, result = done_now[0]
            for other_name, other in done_now[1:]:
                if other.holds != result.holds:
                    # A disagreement means one leg (or the shared
                    # instance) is wrong — the single most valuable bug
                    # report this engine can produce.  Dump everything
                    # a human needs to replay it before failing loudly.
                    try:
                        where = (
                            "; trace, both verdicts and their "
                            "certificates dumped to "
                            + _dump_disagreement(
                                instance,
                                [(winner, result), (other_name, other)],
                            )
                        )
                    except Exception as dump_err:  # noqa: BLE001
                        where = f"; diagnostics dump failed: {dump_err}"
                    raise RuntimeError(
                        f"portfolio legs disagree on verdict: "
                        f"{winner}={result.holds} vs "
                        f"{other_name}={other.holds}{where}"
                    )
            if errors_now:
                # A losing leg crashed but the winner is sound; surface
                # the crash in stats rather than failing the task.
                pass
        result.stats["portfolio"] = {
            "winner": winner,
            "raced": [leg.name for leg in legs],
            "cancelled": len(cancelled),
            "budget_exceeded": len(budget_exceeded),
            "errors": [name for name, _ in errors_now],
            "abandoned": len(abandoned),
        }
        return result
