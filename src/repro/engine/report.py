"""Structured execution statistics for engine runs.

Every task the executor runs (or serves from the cache) is recorded as
a :class:`TaskStats`; the per-verification aggregate is an
:class:`EngineReport`, attached to the returned
:class:`~repro.core.result.VerificationResult` as ``result.report``
and rendered by the CLI's ``--stats`` flag.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass
class TaskStats:
    """One planned task's outcome."""

    address: Any
    backend: str            # backend selected by the planner
    method: str             # method label reported by the result
    estimate: float         # planner's cost estimate
    wall_time: float = 0.0  # seconds spent deciding (0.0 for cache hits)
    cache_hit: bool = False
    #: The hit was served by the persistent store tier (a memory miss
    #: that the disk satisfied); implies ``cache_hit``.
    store_hit: bool = False
    holds: bool | None = None   # None = task skipped (early exit)
    skipped: bool = False
    unknown: bool = False       # abandoned without a verdict (see reason)
    attempts: int = 1           # 1 = first try; >1 = crash retries happened
    quarantined: bool = False   # exhausted retries, ran (or died) in-process
    detail: dict[str, Any] = field(default_factory=dict)

    def row(self) -> str:
        verdict = (
            "skipped" if self.skipped
            else "UNKNOWN" if self.unknown
            else "holds" if self.holds
            else "VIOLATED"
        )
        src = (
            "store" if self.store_hit
            else "cache" if self.cache_hit
            else "-" if self.skipped
            else "run"
        )
        if self.quarantined:
            src = "quar"
        extra = ", ".join(
            f"{k}={v}" for k, v in self.detail.items()
            if isinstance(v, (int, float, str))
        )
        return (
            f"{str(self.address):<10} {self.backend:<12} {verdict:<9} "
            f"{src:<6} {self.wall_time * 1e3:>8.2f}ms  {extra}"
        )


@dataclass
class EngineReport:
    """Aggregated statistics for one engine verification."""

    problem: str = "vmc"
    jobs: int = 1
    pool: str = "thread"
    planned: int = 0
    executed: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    #: Eviction count in the (possibly shared) cache during this run.
    cache_evictions: int = 0
    #: Hits served by the persistent store tier (subset of the memory
    #: misses, disjoint from ``cache_hits`` which counts memory only).
    store_hits: int = 0
    #: Store-loaded records that failed on-hit revalidation during this
    #: run (evicted from both tiers and recomputed, never served).
    store_revalidation_failures: int = 0
    #: Tasks prevented from running after the early exit fired: pool
    #: futures successfully cancelled plus tasks never submitted.
    cancelled: int = 0
    early_exit: bool = False
    wall_time: float = 0.0
    #: Tasks abandoned without a verdict (timeout / budget / crashed).
    unknown: int = 0
    #: Crash-retry attempts beyond each task's first try.
    retries: int = 0
    #: Task attempts that ended in a worker crash (injected or real).
    crashes: int = 0
    #: Tasks that exhausted their retries and were quarantined to
    #: in-process serial execution.
    quarantined: int = 0
    #: Tasks whose per-task deadline or the run budget expired.
    deadline_expired: int = 0
    #: Verdicts whose certificate the trusted checker validated
    #: (``--certify on``/``strict``; 0 when certification is off).
    certified: int = 0
    #: Verdicts downgraded to UNKNOWN(uncertified) under
    #: ``--certify strict``.
    uncertified: int = 0
    #: Pre-pass aggregate counters (empty when the pre-pass ran on no
    #: task): tasks / decided / downgraded / edges_inferred /
    #: ops_eliminated / ops_before / ops_after.
    prepass: dict[str, int] = field(default_factory=dict)
    #: Portfolio race aggregate (empty when no task raced): races /
    #: wins (per leg name) / cancelled_legs / budget_exceeded.
    portfolio: dict[str, Any] = field(default_factory=dict)
    #: Per-stage time breakdown in seconds.  ``load`` (trace parse,
    #: filled by the CLI), ``prepass`` (planning incl. the polynomial
    #: pre-pass), ``search`` (decision procedures), ``certify``
    #: (certificate derivation + trusted-checker validation).  The
    #: stage entries are summed across tasks, so with ``jobs > 1``
    #: they can exceed ``wall_time``.
    stage_times: dict[str, float] = field(default_factory=dict)
    #: Active data-plane kernel backend (``REPRO_KERNEL``).
    kernel: str = ""
    tasks: list[TaskStats] = field(default_factory=list)

    def record(self, task: TaskStats) -> None:
        self.tasks.append(task)
        if task.skipped:
            return
        self.executed += 1
        if task.unknown:
            self.unknown += 1
        self.retries += max(0, task.attempts - 1)
        if task.quarantined:
            self.quarantined += 1
        if task.store_hit:
            self.store_hits += 1
        elif task.cache_hit:
            self.cache_hits += 1
        else:
            self.cache_misses += 1

    @property
    def backends_used(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for t in self.tasks:
            if not t.skipped:
                counts[t.backend] = counts.get(t.backend, 0) + 1
        return counts

    def format(self) -> str:
        """Multi-line human-readable rendering (the ``--stats`` output)."""
        lines = [
            f"engine: problem={self.problem} jobs={self.jobs} "
            f"pool={self.pool} "
            f"tasks={self.executed}/{self.planned} "
            f"cache={self.cache_hits} hit / {self.cache_misses} miss / "
            f"{self.cache_evictions} evicted "
            f"cancelled={self.cancelled} "
            f"early_exit={'yes' if self.early_exit else 'no'} "
            f"wall={self.wall_time * 1e3:.2f}ms",
        ]
        if self.store_hits or self.store_revalidation_failures:
            lines.append(
                f"store: hits={self.store_hits} "
                f"revalidation_failures={self.store_revalidation_failures}"
            )
        if (
            self.unknown or self.retries or self.crashes
            or self.quarantined or self.deadline_expired
        ):
            lines.append(
                f"resilience: unknown={self.unknown} "
                f"retries={self.retries} crashes={self.crashes} "
                f"quarantined={self.quarantined} "
                f"deadline_expired={self.deadline_expired}"
            )
        if self.certified or self.uncertified:
            lines.append(
                f"certify: certified={self.certified} "
                f"uncertified={self.uncertified}"
            )
        if self.prepass.get("tasks"):
            pp = self.prepass
            before = pp.get("ops_before", 0)
            after = pp.get("ops_after", 0)
            ratio = f" ({after / before:.2f})" if before else ""
            lines.append(
                f"prepass: tasks={pp.get('tasks', 0)} "
                f"decided={pp.get('decided', 0)} "
                f"downgraded={pp.get('downgraded', 0)} "
                f"edges_inferred={pp.get('edges_inferred', 0)} "
                f"ops_eliminated={pp.get('ops_eliminated', 0)} "
                f"kernel={after}/{before}{ratio}"
            )
        if self.stage_times or self.kernel:
            parts = [
                f"{name}={self.stage_times[name] * 1e3:.2f}ms"
                for name in ("load", "prepass", "search", "certify")
                if name in self.stage_times
            ]
            if self.kernel:
                parts.append(f"kernel={self.kernel}")
            lines.append("stages: " + " ".join(parts))
        if self.portfolio.get("races"):
            pf = self.portfolio
            wins = ", ".join(
                f"{leg}={n}" for leg, n in sorted(pf.get("wins", {}).items())
            )
            lines.append(
                f"portfolio: races={pf.get('races', 0)} "
                f"wins[{wins}] "
                f"cancelled_legs={pf.get('cancelled_legs', 0)} "
                f"budget_exceeded={pf.get('budget_exceeded', 0)}"
            )
        lines.append(
            f"{'address':<10} {'backend':<12} {'verdict':<9} "
            f"{'source':<6} {'time':>10}"
        )
        lines.extend(t.row() for t in self.tasks)
        return "\n".join(lines)
