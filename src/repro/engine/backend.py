"""The :class:`Backend` interface and the built-in deciders.

A backend wraps one decision algorithm for VMC (per-address coherence)
or VSC (sequential consistency).  The paper's Figure 5.3 is a dispatch
table — "which restriction holds ⇒ which algorithm decides the
instance" — and this module turns each row into an object with

* ``applicable(instance)`` — can this algorithm decide the instance at
  all (the hard precondition, checked when a caller *forces* a method);
* ``auto_applicable(instance)`` — should the router pick it
  automatically (e.g. the exact search is always *able* to run, but the
  router only picks it while the estimated state count is modest);
* ``cost_estimate(instance)`` — a unitless work estimate, used by the
  planner to order per-address tasks cheapest-first;
* ``tier`` — the Figure 5.3 routing priority: among auto-applicable
  backends the registry selects the lowest tier, reproducing the
  paper's ladder top to bottom.

New deciders plug in by subclassing :class:`Backend` and registering an
instance with a :class:`~repro.engine.registry.BackendRegistry` — the
router never needs to change (see ``docs/engine.md``).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from math import log2
from typing import Sequence

from repro.core import exact, readmap, single_op, writeorder
from repro.core.encode import sat_vmc, sat_vsc
from repro.core.result import VerificationResult
from repro.core.types import Address, Execution, Operation
from repro.util.control import StopCheck

# With k processes the frontier search visits O(n^k) states; keep exact
# search for instances whose worst-case state count is modest.
EXACT_STATE_BUDGET = 2_000_000


def estimated_states(execution: Execution) -> float:
    """Upper bound on the frontier-search state count (see core.exact)."""
    est = 1.0
    for h in execution.histories:
        est *= len(h) + 1
        if est > 1e18:
            break
    return est


class BackendInapplicableError(ValueError):
    """A forced backend cannot decide the given instance.

    Subclasses :class:`ValueError` so callers that treated the old
    dispatcher's errors generically keep working; carries the backend
    and the names of the backends that *would* apply so the CLI can
    print an actionable message.
    """

    def __init__(self, backend: "Backend", instance: "Instance",
                 applicable: list[str], detail: str = ""):
        self.backend_name = backend.name
        self.applicable = applicable
        where = (
            f" at address {instance.address!r}"
            if instance.address is not None
            else ""
        )
        msg = (
            f"backend {backend.name!r} is not applicable to this "
            f"instance{where}"
        )
        if detail:
            msg += f" ({detail})"
        msg += f"; applicable backends: {', '.join(applicable) or '<none>'}"
        super().__init__(msg)


@dataclass
class Instance:
    """One unit of verification work handed to a backend.

    For VMC this is a single-address sub-execution (the Section 3
    observation that coherence decomposes per address); for VSC it is
    the whole execution.  ``write_order`` carries the memory system's
    write serialization when available (Section 5.2).
    """

    execution: Execution
    address: Address | None = None
    write_order: Sequence[Operation] | None = None
    problem: str = "vmc"
    #: Ordering hints from the pre-pass — (uid, uid) pairs that hold in
    #: every legal schedule.  Backends may use them to prune (the exact
    #: search) or to strengthen the encoding (unit clauses); ignoring
    #: them is always correct.
    order_hints: tuple[tuple[tuple[int, int], tuple[int, int]], ...] | None = None
    #: Produce a checkable certificate alongside the verdict (the
    #: engine's ``--certify`` modes): SAT backends log a DRAT-style
    #: proof on the *plain* encoding — untrusted pre-pass hints are
    #: dropped so the refutation matches the CNF an auditor re-derives
    #: from the trace alone.  Backends without certificate support
    #: ignore the flag; :func:`repro.engine.certify.ensure_certificate`
    #: fills the gap afterwards.
    certify: bool = False
    _states: float | None = field(default=None, repr=False)

    @property
    def num_ops(self) -> int:
        return self.execution.num_ops

    @property
    def states(self) -> float:
        if self._states is None:
            self._states = estimated_states(self.execution)
        return self._states


class Backend(abc.ABC):
    """One decision algorithm behind the unified verification engine."""

    #: Unique name; also the ``method=`` / ``--method`` spelling.
    name: str = ""
    #: Alternative ``method=`` spellings resolving to this backend.
    aliases: tuple[str, ...] = ()
    #: "vmc" or "vsc".
    problem: str = "vmc"
    #: Figure 5.3 routing priority — lower wins among auto-applicable.
    tier: int = 100

    @abc.abstractmethod
    def applicable(self, instance: Instance) -> bool:
        """Whether this backend can decide ``instance`` at all."""

    def auto_applicable(self, instance: Instance) -> bool:
        """Whether the router may pick this backend unforced."""
        return self.applicable(instance)

    @abc.abstractmethod
    def cost_estimate(self, instance: Instance) -> float:
        """Unitless work estimate, for cheapest-first task ordering."""

    @abc.abstractmethod
    def run(self, instance: Instance) -> VerificationResult:
        """Decide the instance.  Must be thread-safe and side-effect
        free — the executor may call it from worker threads."""

    def run_cancellable(
        self, instance: Instance, should_stop: StopCheck = None
    ) -> VerificationResult:
        """Decide the instance, polling ``should_stop`` when supported.

        Backends whose algorithm supports cooperative cancellation (the
        exact search, CDCL) override this; the default ignores the stop
        check and runs to completion, which is always correct — the
        portfolio executor just cannot abort such a leg early.  Unlike
        :meth:`run`, budget exhaustion (``SearchBudgetExceeded``) is
        allowed to propagate so the racing caller can let the other leg
        finish instead of silently escalating inside the losing leg.
        """
        return self.run(instance)

    def run_resilient(
        self, instance: Instance, should_stop: StopCheck = None
    ) -> VerificationResult:
        """The executor's deadline-aware entry point: :meth:`run`'s full
        semantics (budget exhaustion escalates inline, never a task
        error) *plus* cooperative cancellation.

        When ``should_stop`` fires, :class:`~repro.util.control.
        Cancelled` propagates to the executor, which records a sound
        UNKNOWN — the abandoned work proves nothing either way.
        """
        if should_stop is None:
            return self.run(instance)
        try:
            return self.run_cancellable(instance, should_stop)
        except exact.SearchBudgetExceeded:
            return self.run(instance)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r} tier={self.tier}>"


def _nlogn(n: int) -> float:
    return n * log2(n + 2) + 1.0


# ---------------------------------------------------------------------
# Built-in VMC backends (Figure 5.3, top to bottom)
# ---------------------------------------------------------------------
class WriteOrderBackend(Backend):
    """Section 5.2: the write serialization is supplied — polynomial."""

    name = "write-order"
    problem = "vmc"
    tier = 0

    def applicable(self, instance: Instance) -> bool:
        return instance.write_order is not None

    def cost_estimate(self, instance: Instance) -> float:
        return _nlogn(instance.num_ops)

    def run(self, instance: Instance) -> VerificationResult:
        if instance.write_order is None:
            raise BackendInapplicableError(
                self, instance, [], "no write-order was supplied"
            )
        return writeorder.writeorder_vmc(instance.execution, instance.write_order)


class SingleOpBackend(Backend):
    """Figure 5.3 row 1: at most one operation per process."""

    name = "single-op"
    problem = "vmc"
    tier = 1

    def applicable(self, instance: Instance) -> bool:
        return single_op.applicable(instance.execution)

    def cost_estimate(self, instance: Instance) -> float:
        return float(instance.num_ops) + 1.0

    def run(self, instance: Instance) -> VerificationResult:
        return single_op.single_op_vmc(instance.execution)


class ReadMapBackend(Backend):
    """Figure 5.3 row 5: every value written at most once."""

    name = "readmap"
    problem = "vmc"
    tier = 2

    def applicable(self, instance: Instance) -> bool:
        return readmap.applicable(instance.execution)

    def auto_applicable(self, instance: Instance) -> bool:
        # The read-map is only *forced* when no write re-creates the
        # initial value (otherwise initial-value reads have two possible
        # sources); the router must fall through to the exact search.
        if not readmap.applicable(instance.execution):
            return False
        sub = instance.execution
        addrs = sub.addresses()
        if not addrs:
            return True
        d_i = sub.initial_value(addrs[0])
        return all(
            op.value_written != d_i for op in sub.all_ops() if op.kind.writes
        )

    def cost_estimate(self, instance: Instance) -> float:
        return 2.0 * instance.num_ops + 1.0

    def run(self, instance: Instance) -> VerificationResult:
        return readmap.readmap_vmc(instance.execution)


class ExactBackend(Backend):
    """Memoized frontier search — polynomial for constant processes.

    ``max_states`` caps the search; when the cap is hit, :meth:`run`
    escalates to the ``fallback_solver`` SAT route instead of raising
    (budget exhaustion is a routing event, never a task error), while
    :meth:`run_cancellable` lets :class:`SearchBudgetExceeded` propagate
    so a racing portfolio can simply retire this leg.
    """

    name = "exact"
    problem = "vmc"
    tier = 3

    def __init__(self, max_states: int | None = None,
                 fallback_solver: str = "cdcl"):
        self.max_states = max_states
        self.fallback_solver = fallback_solver

    def applicable(self, instance: Instance) -> bool:
        return True

    def auto_applicable(self, instance: Instance) -> bool:
        return instance.states <= EXACT_STATE_BUDGET

    def cost_estimate(self, instance: Instance) -> float:
        return min(instance.states, 1e18)

    def run(self, instance: Instance) -> VerificationResult:
        try:
            return exact.exact_vmc(
                instance.execution,
                max_states=self.max_states,
                order_hints=instance.order_hints,
            )
        except exact.SearchBudgetExceeded as e:
            result = sat_vmc(
                instance.execution,
                solver=self.fallback_solver,
                order_hints=instance.order_hints,
                certify=instance.certify,
            )
            result.stats["fallback_from"] = "exact"
            result.stats["exact_states"] = e.states
            return result

    def run_cancellable(
        self, instance: Instance, should_stop: StopCheck = None
    ) -> VerificationResult:
        return exact.exact_vmc(
            instance.execution,
            max_states=self.max_states,
            order_hints=instance.order_hints,
            should_stop=should_stop,
        )

    def run_resilient(
        self, instance: Instance, should_stop: StopCheck = None
    ) -> VerificationResult:
        if should_stop is None:
            return self.run(instance)
        try:
            return self.run_cancellable(instance, should_stop)
        except exact.SearchBudgetExceeded as e:
            # Same escalation as run(), but the SAT route inherits the
            # deadline — an exhausted budget must not shed the clock.
            result = sat_vmc(
                instance.execution,
                solver=self.fallback_solver,
                order_hints=instance.order_hints,
                should_stop=should_stop,
                certify=instance.certify,
            )
            result.stats["fallback_from"] = "exact"
            result.stats["exact_states"] = e.states
            return result


class SatBackend(Backend):
    """CNF + SAT for the NP-complete general case."""

    problem = "vmc"

    def __init__(self, solver: str = "cdcl", tier: int = 4,
                 aliases: tuple[str, ...] = ()):
        self.solver = solver
        self.name = f"sat-{solver}"
        self.tier = tier
        self.aliases = aliases

    def applicable(self, instance: Instance) -> bool:
        return True

    def cost_estimate(self, instance: Instance) -> float:
        n = instance.num_ops
        # O(n^3) transitivity clauses dominate encoding; keep the
        # estimate above the exact search's within its budget so the
        # ladder is preserved, and monotone in n for task ordering.
        return float(EXACT_STATE_BUDGET) + n**3

    def run(self, instance: Instance) -> VerificationResult:
        return sat_vmc(
            instance.execution,
            solver=self.solver,
            order_hints=instance.order_hints,
            certify=instance.certify,
        )

    def run_cancellable(
        self, instance: Instance, should_stop: StopCheck = None
    ) -> VerificationResult:
        return sat_vmc(
            instance.execution,
            solver=self.solver,
            order_hints=instance.order_hints,
            should_stop=should_stop,
            certify=instance.certify,
        )


# ---------------------------------------------------------------------
# Built-in VSC backends
# ---------------------------------------------------------------------
class ExactVscBackend(Backend):
    """Frontier search over all addresses (Gibbons–Korach cell)."""

    name = "exact"
    problem = "vsc"
    tier = 0

    def __init__(self, max_states: int | None = None,
                 fallback_solver: str = "cdcl"):
        self.max_states = max_states
        self.fallback_solver = fallback_solver

    def applicable(self, instance: Instance) -> bool:
        return True

    def auto_applicable(self, instance: Instance) -> bool:
        return instance.states <= EXACT_STATE_BUDGET

    def cost_estimate(self, instance: Instance) -> float:
        return min(instance.states, 1e18)

    def run(self, instance: Instance) -> VerificationResult:
        try:
            return exact.exact_vsc(
                instance.execution,
                max_states=self.max_states,
                order_hints=instance.order_hints,
            )
        except exact.SearchBudgetExceeded as e:
            result = sat_vsc(
                instance.execution,
                solver=self.fallback_solver,
                order_hints=instance.order_hints,
                certify=instance.certify,
            )
            result.stats["fallback_from"] = "exact"
            result.stats["exact_states"] = e.states
            return result

    def run_cancellable(
        self, instance: Instance, should_stop: StopCheck = None
    ) -> VerificationResult:
        return exact.exact_vsc(
            instance.execution,
            max_states=self.max_states,
            order_hints=instance.order_hints,
            should_stop=should_stop,
        )

    def run_resilient(
        self, instance: Instance, should_stop: StopCheck = None
    ) -> VerificationResult:
        if should_stop is None:
            return self.run(instance)
        try:
            return self.run_cancellable(instance, should_stop)
        except exact.SearchBudgetExceeded as e:
            result = sat_vsc(
                instance.execution,
                solver=self.fallback_solver,
                order_hints=instance.order_hints,
                should_stop=should_stop,
                certify=instance.certify,
            )
            result.stats["fallback_from"] = "exact"
            result.stats["exact_states"] = e.states
            return result


class SatVscBackend(Backend):
    """CNF + SAT over all addresses."""

    problem = "vsc"

    def __init__(self, solver: str = "cdcl", tier: int = 1,
                 aliases: tuple[str, ...] = ()):
        self.solver = solver
        self.name = f"sat-{solver}"
        self.tier = tier
        self.aliases = aliases

    def applicable(self, instance: Instance) -> bool:
        return True

    def cost_estimate(self, instance: Instance) -> float:
        n = instance.num_ops
        return float(EXACT_STATE_BUDGET) + n**3

    def run(self, instance: Instance) -> VerificationResult:
        return sat_vsc(
            instance.execution,
            solver=self.solver,
            order_hints=instance.order_hints,
            certify=instance.certify,
        )

    def run_cancellable(
        self, instance: Instance, should_stop: StopCheck = None
    ) -> VerificationResult:
        return sat_vsc(
            instance.execution,
            solver=self.solver,
            order_hints=instance.order_hints,
            should_stop=should_stop,
            certify=instance.certify,
        )
