"""Disk-backed content-addressed result store.

The in-memory :class:`~repro.engine.cache.ResultCache` proves that a
large fraction of campaign work is *the same instance up to renaming* —
but it forgets everything between runs.  This module persists the same
canonical entries on disk, keyed by a SHA-256 fingerprint of the
canonical key, so warm re-runs, sibling processes, and whole batch
campaigns never solve an instance twice.

Layout (``store_dir/``)::

    store.meta            {"version": 1, "n_shards": N}
    shards/00/records.bin append-only record log for shard 0
    shards/00/.lock       flock target (never replaced, unlike the log)
    ...

The first fingerprint byte picks the shard (``fp[0] % n_shards``), so a
batch runner can partition work by fingerprint and give every worker a
disjoint set of shards to write.

Record log format (``serialize_bin`` conventions):

* 16-byte header: magic ``REPROSTO``, u16 version, u16 reserved,
  u32 generation (bumped by compaction so concurrent readers know to
  rebuild their index);
* records: u8 type + u32 payload length + u32 CRC-32, then the payload.
  ``RECORD`` payloads are the 32-byte fingerprint followed by a pickled
  entry dict (including the full canonical key — a hash collision or a
  stale record is rejected by key equality, never served); ``TOUCH``
  and ``TOMBSTONE`` payloads are the bare fingerprint.

Durability and concurrency:

* writes are buffered in the process and appended in one batch by
  :meth:`ResultStore.flush` — one exclusive ``flock`` + one ``fsync``
  per shard per batch, not per entry (the executor flushes once per
  engine run);
* a torn or truncated tail (crash mid-append) is *skipped* on read with
  a byte-offset diagnostic, and truncated away by the next writer while
  it holds the exclusive lock (only then is "torn" distinguishable from
  "another writer's append in flight");
* ``TOUCH`` records propagate LRU recency across processes; compaction
  (triggered when the store exceeds ``max_mb``) rewrites overweight
  shards newest-last, dropping the least recently used entries.

Trust: the store itself only guarantees *integrity of transport*
(CRC + key equality).  Verdict-level trust is the caller's business —
:class:`~repro.engine.cache.ResultCache` re-materializes store hits
through the executor's on-hit validation seam, so under ``--certify``
every loaded verdict is re-checked by ``certify.validate_result`` and
corrupt or stale records are evicted and recomputed, never served.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import struct
import threading
import time
import zlib
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Hashable

try:  # pragma: no cover - Linux/macOS always have fcntl
    import fcntl
except ImportError:  # pragma: no cover
    fcntl = None  # type: ignore[assignment]

if TYPE_CHECKING:
    from repro.engine.cache import CanonicalInstance
    from repro.engine.chaos import ChaosSpec

MAGIC = b"REPROSTO"
VERSION = 1
#: Shard-file header: magic, version, reserved, generation.
_HEADER = struct.Struct("<8sHHI")
#: Record header: type, payload length, payload CRC-32.
_REC = struct.Struct("<BII")
#: Sanity cap on a single record payload (a canonical entry is KBs).
MAX_PAYLOAD = 1 << 26

REC_RECORD = 1
REC_TOUCH = 2
REC_TOMBSTONE = 3
_REC_TYPES = (REC_RECORD, REC_TOUCH, REC_TOMBSTONE)

_FP_LEN = 32

#: Optional wall-clock timestamp trailing a TOUCH fingerprint (entries
#: carry theirs in the pickled dict under ``"ts"``).  Readers slice the
#: fingerprint off the front, so logs written before timestamps existed
#: — and by writers that omit them — stay readable; the quota report
#: simply counts those entries as untimed.
_TS = struct.Struct("<d")


def fingerprint_key(key: Hashable) -> bytes:
    """The 32-byte content address of a canonical cache key.

    Canonical keys are nested tuples of ints, strings and ``None``
    (see :func:`repro.engine.cache.canonicalize`), so ``repr`` is a
    deterministic encoding — independent of ``PYTHONHASHSEED``,
    process, and platform.
    """
    return hashlib.sha256(repr(key).encode("utf-8")).digest()


@dataclass
class StoreStats:
    hits: int = 0
    misses: int = 0
    stores: int = 0
    #: Entries dropped by LRU compaction.
    evictions: int = 0
    #: Entries dropped by explicit invalidation (failed revalidation).
    tombstones: int = 0
    #: Torn/corrupt tails skipped on read (one per distinct offset).
    torn_records: int = 0
    compactions: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def summary(self) -> str:
        return (
            f"{self.hits} hit / {self.misses} miss "
            f"({self.hit_rate:.0%}), {self.stores} stored, "
            f"{self.evictions} evicted, {self.tombstones} tombstoned, "
            f"{self.torn_records} torn skipped"
        )

    def as_dict(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "evictions": self.evictions,
            "tombstones": self.tombstones,
            "torn_records": self.torn_records,
            "compactions": self.compactions,
        }


class StoreFormatError(ValueError):
    """A shard file whose header is not a REPROSTO log at all.

    Torn *records* are recoverable and never raise — this fires only
    when the file exists but was clearly never written by the store.
    """

    def __init__(self, message: str, path: str):
        super().__init__(f"{path}: {message}")
        self.path = path


class _Flock:
    """A (shared or exclusive) flock on a never-replaced lock file."""

    def __init__(self, path: str, exclusive: bool):
        self._path = path
        self._exclusive = exclusive
        self._fd: int | None = None

    def __enter__(self) -> "_Flock":
        self._fd = os.open(self._path, os.O_RDWR | os.O_CREAT, 0o644)
        if fcntl is not None:
            fcntl.flock(
                self._fd,
                fcntl.LOCK_EX if self._exclusive else fcntl.LOCK_SH,
            )
        return self

    def __exit__(self, *exc: Any) -> None:
        if self._fd is not None:
            if fcntl is not None:
                fcntl.flock(self._fd, fcntl.LOCK_UN)
            os.close(self._fd)
            self._fd = None


class _Shard:
    """In-memory view of one shard's record log."""

    __slots__ = (
        "path", "lock_path", "index", "recency", "recency_ts", "seq",
        "scanned", "generation", "torn_at", "pending",
    )

    def __init__(self, path: str, lock_path: str):
        self.path = path
        self.lock_path = lock_path
        #: fingerprint -> entry dict (the live view after tombstones).
        self.index: dict[bytes, dict[str, Any]] = {}
        #: fingerprint -> last-seen sequence number (LRU recency).
        self.recency: dict[bytes, int] = {}
        #: fingerprint -> last-touched wall-clock time, where known
        #: (quota reporting only — eviction order stays on ``recency``,
        #: which is total even across clock skew).
        self.recency_ts: dict[bytes, float] = {}
        self.seq = 0
        #: Byte offset scanned up to (end of the last good record).
        self.scanned = 0
        self.generation = -1
        #: Offset of the torn tail already diagnosed (avoid recounting
        #: the same tail on every refresh while a writer is in flight).
        self.torn_at = -1
        #: Encoded records buffered for the next flush.
        self.pending: list[bytes] = []

    def reset(self) -> None:
        self.index.clear()
        self.recency.clear()
        self.recency_ts.clear()
        self.seq = 0
        self.scanned = 0
        self.generation = -1
        self.torn_at = -1


def _encode(rtype: int, payload: bytes) -> bytes:
    return _REC.pack(rtype, len(payload), zlib.crc32(payload)) + payload


class ResultStore:
    """A sharded append-only store of canonical verification results.

    Thread-safe within a process; safe across processes via per-shard
    file locking (single writer per shard, readers lock-free up to a
    stale-view refresh).  ``max_mb`` caps the on-disk footprint with
    LRU-style compaction; ``chaos`` injects the ``slow-store`` /
    ``corrupt-store`` faults (see :mod:`repro.engine.chaos`).
    """

    def __init__(
        self,
        path: str | os.PathLike,
        max_mb: float | None = None,
        n_shards: int = 16,
        chaos: "ChaosSpec | None" = None,
    ):
        if n_shards < 1 or n_shards > 256:
            raise ValueError(f"n_shards must be in [1, 256], got {n_shards}")
        self.path = os.fspath(path)
        self.max_bytes = None if max_mb is None else int(max_mb * 1024 * 1024)
        self.chaos = chaos if chaos is not None and (
            chaos.slow_store > 0 or chaos.corrupt_store > 0
        ) else None
        self.stats = StoreStats()
        #: Human-readable torn-record diagnostics (also for tests).
        self.diagnostics: list[str] = []
        self._lock = threading.Lock()
        os.makedirs(os.path.join(self.path, "shards"), exist_ok=True)
        self.n_shards = self._load_meta(n_shards)
        self._shards = [
            _Shard(
                os.path.join(self.path, "shards", f"{i:02x}", "records.bin"),
                os.path.join(self.path, "shards", f"{i:02x}", ".lock"),
            )
            for i in range(self.n_shards)
        ]
        for shard in self._shards:
            os.makedirs(os.path.dirname(shard.path), exist_ok=True)

    # ------------------------------------------------------------------
    # Meta
    # ------------------------------------------------------------------
    def _load_meta(self, n_shards: int) -> int:
        """The shard count is a store property, not a handle property:
        an existing store's meta wins over the constructor argument."""
        meta_path = os.path.join(self.path, "store.meta")
        try:
            with open(meta_path, encoding="utf-8") as fh:
                meta = json.load(fh)
            if meta.get("version") != VERSION:
                raise StoreFormatError(
                    f"unsupported store version {meta.get('version')!r}",
                    meta_path,
                )
            return int(meta["n_shards"])
        except FileNotFoundError:
            tmp = meta_path + ".tmp"
            with open(tmp, "w", encoding="utf-8") as fh:
                json.dump({"version": VERSION, "n_shards": n_shards}, fh)
            try:
                # Atomic publish; a concurrent creator's identical meta
                # winning the race is fine.
                os.replace(tmp, meta_path)
            except OSError:
                os.unlink(tmp)
            return n_shards

    # ------------------------------------------------------------------
    # Addressing
    # ------------------------------------------------------------------
    def shard_of(self, fp: bytes) -> int:
        """First fingerprint byte picks the shard."""
        return fp[0] % self.n_shards

    def _key_of(self, canon: "CanonicalInstance | Hashable") -> Hashable:
        key = getattr(canon, "key", canon)
        return key

    # ------------------------------------------------------------------
    # Scanning
    # ------------------------------------------------------------------
    def _read_header(self, fh, shard: _Shard) -> int | None:
        """Validate the header; returns the generation or ``None`` when
        the file is empty / shorter than a header (treated as new)."""
        fh.seek(0)
        raw = fh.read(_HEADER.size)
        if len(raw) < _HEADER.size:
            return None
        magic, version, _reserved, generation = _HEADER.unpack(raw)
        if magic != MAGIC:
            raise StoreFormatError(
                f"bad magic {magic!r}; not a result-store shard", shard.path
            )
        if version != VERSION:
            raise StoreFormatError(
                f"unsupported shard version {version}", shard.path
            )
        return generation

    def _apply(self, shard: _Shard, rtype: int, payload: bytes) -> None:
        shard.seq += 1
        fp = payload[:_FP_LEN]
        if rtype == REC_RECORD:
            try:
                entry = pickle.loads(payload[_FP_LEN:])
            except Exception:
                # Counted by the caller as torn (CRC passed but the
                # pickle is not loadable — same recovery: skip).
                raise _TornRecord("unpicklable entry payload")
            shard.index[fp] = entry
            shard.recency[fp] = shard.seq
            ts = entry.get("ts")
            if isinstance(ts, float):
                shard.recency_ts[fp] = ts
        elif rtype == REC_TOUCH:
            if fp in shard.index:
                shard.recency[fp] = shard.seq
                if len(payload) >= _FP_LEN + _TS.size:
                    shard.recency_ts[fp] = _TS.unpack_from(
                        payload, _FP_LEN
                    )[0]
        elif rtype == REC_TOMBSTONE:
            shard.index.pop(fp, None)
            shard.recency.pop(fp, None)
            shard.recency_ts.pop(fp, None)

    def _scan(self, shard: _Shard, fh) -> None:
        """Advance ``shard``'s view to the end of the good prefix."""
        size = os.fstat(fh.fileno()).st_size
        if size < shard.scanned:
            shard.reset()  # compacted underneath us
        gen = self._read_header(fh, shard)
        if gen is None:
            shard.scanned = 0
            return
        if shard.generation != -1 and gen != shard.generation:
            shard.reset()
        shard.generation = gen
        good = max(shard.scanned, _HEADER.size)
        if size <= good:
            shard.scanned = good
            return
        fh.seek(good)
        data = fh.read(size - good)
        off = 0
        n = len(data)
        while off < n:
            if off + _REC.size > n:
                self._torn(shard, good + off, "truncated record header")
                break
            rtype, length, crc = _REC.unpack_from(data, off)
            if rtype not in _REC_TYPES or length > MAX_PAYLOAD:
                self._torn(
                    shard, good + off,
                    f"bad record header (type={rtype}, len={length})",
                )
                break
            end = off + _REC.size + length
            if end > n:
                self._torn(shard, good + off, "truncated record payload")
                break
            payload = data[off + _REC.size:end]
            if zlib.crc32(payload) != crc:
                self._torn(shard, good + off, "payload CRC mismatch")
                break
            try:
                self._apply(shard, rtype, payload)
            except _TornRecord as e:
                self._torn(shard, good + off, str(e))
                break
            off = end
        shard.scanned = good + off

    def _torn(self, shard: _Shard, offset: int, why: str) -> None:
        if shard.torn_at == offset:
            return  # same in-flight tail as last refresh
        shard.torn_at = offset
        self.stats.torn_records += 1
        self.diagnostics.append(
            f"{shard.path}: torn record at byte {offset}: {why}; "
            f"skipping tail"
        )

    def _refresh(self, shard: _Shard) -> None:
        try:
            with _Flock(shard.lock_path, exclusive=False):
                with open(shard.path, "rb") as fh:
                    self._scan(shard, fh)
        except FileNotFoundError:
            pass

    # ------------------------------------------------------------------
    # Read path
    # ------------------------------------------------------------------
    def lookup(self, canon: "CanonicalInstance") -> dict[str, Any] | None:
        """Return the stored entry for ``canon`` or ``None``.

        The returned dict is a private copy with keys ``holds``,
        ``method``, ``reason``, ``schedule_idx``, ``stats``,
        ``certificate``.  A fingerprint match with a different full key
        (hash collision / stale format) is a miss, never served.
        """
        key = self._key_of(canon)
        fp = fingerprint_key(key)
        if self.chaos is not None:
            delay = self.chaos.store_delay(fp.hex(), "lookup")
            if delay > 0:
                time.sleep(delay)
        with self._lock:
            shard = self._shards[self.shard_of(fp)]
            entry = shard.index.get(fp)
            if entry is None:
                self._refresh(shard)
                entry = shard.index.get(fp)
            if entry is None or entry.get("key") != key:
                self.stats.misses += 1
                return None
            self.stats.hits += 1
            # Cross-process LRU: recency travels as a TOUCH record
            # (timestamped, so quota reports can age entries).
            now = time.time()
            shard.seq += 1
            shard.recency[fp] = shard.seq
            shard.recency_ts[fp] = now
            shard.pending.append(_encode(REC_TOUCH, fp + _TS.pack(now)))
            out = dict(entry)
            out["stats"] = dict(entry.get("stats") or {})
        if self.chaos is not None and self.chaos.corrupts_store_record(fp.hex()):
            _tamper_entry(out)
        return out

    def contains(self, canon: "CanonicalInstance | Hashable") -> bool:
        """Uncounted probe (the ``batch --dry-run`` predictor)."""
        key = self._key_of(canon)
        fp = fingerprint_key(key)
        with self._lock:
            shard = self._shards[self.shard_of(fp)]
            entry = shard.index.get(fp)
            if entry is None:
                self._refresh(shard)
                entry = shard.index.get(fp)
            return entry is not None and entry.get("key") == key

    def __len__(self) -> int:
        with self._lock:
            for shard in self._shards:
                self._refresh(shard)
            return sum(len(s.index) for s in self._shards)

    def entries(self) -> list[dict[str, Any]]:
        """All live entries (tests / tooling; copies, freshest view)."""
        out: list[dict[str, Any]] = []
        with self._lock:
            for shard in self._shards:
                self._refresh(shard)
                out.extend(dict(entry) for entry in shard.index.values())
        return out

    # ------------------------------------------------------------------
    # Write path
    # ------------------------------------------------------------------
    def put(
        self,
        canon: "CanonicalInstance",
        *,
        holds: bool,
        method: str,
        reason: str,
        schedule_idx: list[int] | None,
        stats: dict[str, Any],
        certificate: Any = None,
    ) -> None:
        """Buffer one entry for the next :meth:`flush`.

        The entry is visible to this process immediately; other
        processes see it after the flush.  Payloads are pickled here so
        later caller-side mutation cannot leak into the log.
        """
        key = self._key_of(canon)
        fp = fingerprint_key(key)
        entry = {
            "key": key,
            "holds": bool(holds),
            "method": method,
            "reason": reason,
            "schedule_idx": list(schedule_idx) if schedule_idx else None,
            "stats": {
                k: v for k, v in (stats or {}).items()
                if k not in ("cache_hit", "store_hit", "t_certify")
            },
            "certificate": certificate,
            "ts": time.time(),
        }
        payload = fp + pickle.dumps(entry, protocol=4)
        with self._lock:
            shard = self._shards[self.shard_of(fp)]
            shard.seq += 1
            shard.index[fp] = entry
            shard.recency[fp] = shard.seq
            shard.recency_ts[fp] = entry["ts"]
            shard.pending.append(_encode(REC_RECORD, payload))
            self.stats.stores += 1

    def invalidate(self, canon: "CanonicalInstance") -> None:
        """Evict an entry whose verdict failed revalidation (tombstone
        persists the eviction so no later process trusts it either)."""
        key = self._key_of(canon)
        fp = fingerprint_key(key)
        with self._lock:
            shard = self._shards[self.shard_of(fp)]
            present = shard.index.pop(fp, None)
            shard.recency.pop(fp, None)
            shard.recency_ts.pop(fp, None)
            if present is not None or self._on_disk(shard, fp):
                shard.pending.append(_encode(REC_TOMBSTONE, fp))
                self.stats.tombstones += 1

    def _on_disk(self, shard: _Shard, fp: bytes) -> bool:
        self._refresh(shard)
        return fp in shard.index

    # ------------------------------------------------------------------
    # Durability
    # ------------------------------------------------------------------
    def flush(self) -> None:
        """Append all buffered records — one exclusive lock and one
        ``fsync`` per dirty shard — then compact if over budget."""
        with self._lock:
            for shard in self._shards:
                if shard.pending:
                    self._flush_shard(shard)
            if self.max_bytes is not None:
                self._maybe_compact()

    def _flush_shard(self, shard: _Shard) -> None:
        records = b"".join(shard.pending)
        shard.pending.clear()
        if self.chaos is not None:
            delay = self.chaos.store_delay(
                os.path.basename(os.path.dirname(shard.path)), "flush"
            )
            if delay > 0:
                time.sleep(delay)
        with _Flock(shard.lock_path, exclusive=True):
            try:
                fh = open(shard.path, "r+b")
            except FileNotFoundError:
                fh = open(shard.path, "w+b")
            with fh:
                if os.fstat(fh.fileno()).st_size < _HEADER.size:
                    fh.seek(0)
                    fh.truncate(0)
                    fh.write(_HEADER.pack(MAGIC, VERSION, 0, 0))
                    # Flush before any fstat: a buffered header would
                    # read as an empty file and spuriously reset the
                    # shard's in-memory view.
                    fh.flush()
                    shard.generation = 0
                    shard.scanned = _HEADER.size
                # Catch up on other writers' appends, then cut any torn
                # tail: we hold the exclusive lock, so an invalid tail
                # cannot be an append in flight — it is a crash residue.
                self._scan(shard, fh)
                if os.fstat(fh.fileno()).st_size > shard.scanned:
                    fh.truncate(shard.scanned)
                fh.seek(shard.scanned)
                fh.write(records)
                fh.flush()
                os.fsync(fh.fileno())
                # Re-scan over the appended records rather than trusting
                # offset arithmetic: applying them is idempotent, and it
                # repairs the view even when a concurrent compaction
                # reset it mid-flush.
                self._scan(shard, fh)
                shard.torn_at = -1

    def total_bytes(self) -> int:
        total = 0
        for shard in self._shards:
            try:
                total += os.stat(shard.path).st_size
            except FileNotFoundError:
                pass
        return total

    # ------------------------------------------------------------------
    # Quota observability
    # ------------------------------------------------------------------
    def quota_report(self) -> dict[str, Any]:
        """Per-shard occupancy and LRU ages, for quota tuning.

        Returns ``{"shards": [...], "totals": {...}}``; each shard row
        carries ``shard`` (hex id), ``entries``, ``bytes``,
        ``budget_bytes`` (the per-shard compaction budget, ``None``
        without a ``max_mb`` cap), ``pct`` of that budget, and
        ``lru_age_s`` / ``mru_age_s`` — seconds since the least / most
        recently used live entry was touched.  Entries written before
        timestamps existed have no age and are counted in ``untimed``.
        """
        now = time.time()
        budget = (
            max(self.max_bytes // self.n_shards, _HEADER.size)
            if self.max_bytes is not None
            else None
        )
        rows: list[dict[str, Any]] = []
        with self._lock:
            for i, shard in enumerate(self._shards):
                self._refresh(shard)
                try:
                    size = os.stat(shard.path).st_size
                except FileNotFoundError:
                    size = 0
                timed = [
                    shard.recency_ts[fp]
                    for fp in shard.index
                    if fp in shard.recency_ts
                ]
                rows.append({
                    "shard": f"{i:02x}",
                    "entries": len(shard.index),
                    "bytes": size,
                    "budget_bytes": budget,
                    "pct": (
                        round(100.0 * size / budget, 1)
                        if budget else None
                    ),
                    "lru_age_s": (
                        round(max(0.0, now - min(timed)), 3)
                        if timed else None
                    ),
                    "mru_age_s": (
                        round(max(0.0, now - max(timed)), 3)
                        if timed else None
                    ),
                    "untimed": len(shard.index) - len(timed),
                })
        return {
            "shards": rows,
            "totals": {
                "entries": sum(r["entries"] for r in rows),
                "bytes": sum(r["bytes"] for r in rows),
                "max_bytes": self.max_bytes,
            },
        }

    # ------------------------------------------------------------------
    # Compaction
    # ------------------------------------------------------------------
    def _maybe_compact(self) -> None:
        if self.max_bytes is None or self.total_bytes() <= self.max_bytes:
            return
        budget = max(self.max_bytes // self.n_shards, _HEADER.size)
        for shard in self._shards:
            try:
                size = os.stat(shard.path).st_size
            except FileNotFoundError:
                continue
            if size > budget:
                self._compact_shard(shard, budget)

    def compact(self) -> int:
        """Force LRU compaction of every overweight shard (requires a
        ``max_mb`` budget); returns the number of evicted entries."""
        if self.max_bytes is None:
            return 0
        before = self.stats.evictions
        with self._lock:
            for shard in self._shards:
                if shard.pending:
                    self._flush_shard(shard)
            self._maybe_compact()
        return self.stats.evictions - before

    def _compact_shard(self, shard: _Shard, budget: int) -> None:
        """Rewrite one shard keeping the most recently used entries.

        Runs under the exclusive lock; publishes atomically via
        ``os.replace`` with a bumped generation so concurrent readers
        rebuild their index instead of trusting stale offsets.
        """
        with _Flock(shard.lock_path, exclusive=True):
            try:
                with open(shard.path, "rb") as fh:
                    self._scan(shard, fh)
            except FileNotFoundError:
                return
            by_recency = sorted(
                shard.index, key=lambda fp: shard.recency.get(fp, 0)
            )
            encoded = {
                fp: _encode(
                    REC_RECORD,
                    fp + pickle.dumps(shard.index[fp], protocol=4),
                )
                for fp in by_recency
            }
            kept: list[bytes] = []
            used = _HEADER.size
            for fp in reversed(by_recency):  # newest first
                rec_len = len(encoded[fp])
                if kept and used + rec_len > budget:
                    break
                used += rec_len
                kept.append(fp)
            kept.reverse()  # write oldest-first so recency order survives
            evicted = [fp for fp in by_recency if fp not in set(kept)]
            generation = shard.generation + 1 if shard.generation >= 0 else 1
            tmp = shard.path + ".compact"
            with open(tmp, "wb") as fh:
                fh.write(_HEADER.pack(MAGIC, VERSION, 0, generation))
                for fp in kept:
                    fh.write(encoded[fp])
                fh.flush()
                os.fsync(fh.fileno())
                new_size = fh.tell()
            os.replace(tmp, shard.path)
            for fp in evicted:
                shard.index.pop(fp, None)
                shard.recency.pop(fp, None)
                shard.recency_ts.pop(fp, None)
            shard.scanned = new_size
            shard.generation = generation
            shard.torn_at = -1
            self.stats.evictions += len(evicted)
            self.stats.compactions += 1

    # ------------------------------------------------------------------
    def close(self) -> None:
        self.flush()

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


class _TornRecord(Exception):
    """Internal: a CRC-valid record whose payload is not loadable."""


def _tamper_entry(entry: dict[str, Any]) -> None:
    """The ``corrupt-store`` fault: flip the verdict and strip the
    material a flipped verdict would need, exactly what on-disk bit rot
    or a malicious store looks like.  The on-hit revalidation seam must
    reject the result under ``--certify on|strict`` (a flipped HOLDS has
    no witness; a flipped VIOLATED carries no refutation certificate) —
    certification ``off`` serving it is the documented trust gap."""
    entry["holds"] = not entry.get("holds")
    entry["reason"] = f"[chaos corrupt-store] {entry.get('reason', '')}".strip()
    entry["schedule_idx"] = None
    entry["certificate"] = None
