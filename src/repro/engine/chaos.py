"""Deterministic fault injection at the engine's execution seams.

``repro.memsys.faults`` injects faults into the *simulated memory
system* to prove the verifier catches them; this module turns the same
discipline on the verification engine itself.  A :class:`ChaosSpec`
describes seeded fault probabilities at the seams where a production
run actually fails:

===========  =====================  =====================================
kind         seam                   simulates
===========  =====================  =====================================
crash        worker, before decide  a worker process dying mid-task
stall        worker, before decide  a hung backend / scheduler stall
lost         parent, on harvest     a completed result dropped on the
                                    pool boundary (lost IPC message)
slow-cache   parent, cache I/O      slow shared-cache reads/writes
leg-stall    portfolio leg start    one race leg scheduled late / slowly
bad-verdict  worker, after decide   a buggy solver reporting the
                                    opposite verdict
bad-cert     worker, after decide   a corrupted / tampered certificate
slow-store   store lookup/flush     a persistent store on slow or
                                    contended disk
corrupt-store  store, on load       on-disk bit rot / a tampered store
                                    record (flipped verdict, stripped
                                    proof material)
conn-drop    service, on respond    a client connection dying before
                                    the daemon's response is written
                                    (dropped mid-frame / network reset)
===========  =====================  =====================================

The last two are *semantic* faults: unlike crashes and stalls they
produce a wrong answer, not a slow one, so no amount of retrying
recovers from them.  They exist to make the certification layer's
guarantee falsifiable — ``--certify strict`` must catch every injected
flip or tampering (see :func:`tamper_result` and
``tests/engine/test_chaos.py``), while certification ``off`` must
*never* catch them, documenting exactly what uncertified runs trust.

Injections are **deterministic**: whether a fault fires at a given seam
is a pure function of ``(seed, site, task key, attempt)`` — a SHA-256
roll, independent of wall clock, pool kind, or completion order.  The
same spec over the same corpus injects the same faults on every run, on
every machine, so the differential suite can assert the strong property
the ISSUE demands: *verdicts with chaos enabled equal verdicts with
chaos disabled wherever both decide*.  Faults are attempt-dependent, so
a retried task re-rolls — retries can genuinely recover, exactly like a
real transient worker death.

The spec grammar (CLI ``verify --chaos SPEC``, gated behind the
``REPRO_CHAOS`` environment variable so a stray flag can never inject
faults into a production run)::

    SPEC    := field ("," field)*
    field   := KIND "=" RATE | "seed" "=" INT
             | "stall-s" "=" SECONDS | "slow-s" "=" SECONDS
    KIND    := "crash" | "stall" | "lost" | "slow-cache" | "leg-stall"
             | "bad-verdict" | "bad-cert" | "slow-store" | "corrupt-store"
             | "conn-drop"
    RATE    := float in [0, 1]

Example: ``--chaos crash=0.2,stall=0.1,lost=0.1,seed=7``.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, fields, replace

from repro.util.control import Cancelled, StopCheck

#: The environment variable that must be set (to anything non-empty)
#: before the CLI accepts ``--chaos``.
CHAOS_ENV = "REPRO_CHAOS"

#: How long a leg-stall sleeps between stop-check polls: a stalled leg
#: is *slow*, not dead, so it must still observe cancellation promptly.
_LEG_POLL_S = 0.005


class ChaosCrash(RuntimeError):
    """An injected worker crash (stands in for a dead worker process)."""

    def __init__(self, key: str, attempt: int):
        super().__init__(f"injected crash for task {key} (attempt {attempt})")
        self.key = key
        self.attempt = attempt

    def __reduce__(self):
        # Default exception pickling replays ``args`` (the message)
        # into ``__init__``, which takes (key, attempt) — without this
        # the crash cannot cross the process-pool boundary intact.
        return (ChaosCrash, (self.key, self.attempt))


@dataclass(frozen=True)
class ChaosSpec:
    """Seeded fault-injection probabilities (see module docs).

    Frozen and containing only numbers, so it pickles with the tasks it
    haunts into process-pool workers.
    """

    crash: float = 0.0
    stall: float = 0.0
    lost: float = 0.0
    slow_cache: float = 0.0
    leg_stall: float = 0.0
    bad_verdict: float = 0.0
    bad_cert: float = 0.0
    slow_store: float = 0.0
    corrupt_store: float = 0.0
    conn_drop: float = 0.0
    stall_s: float = 0.05
    slow_s: float = 0.02
    seed: int = 0

    _RATES = (
        "crash", "stall", "lost", "slow_cache", "leg_stall",
        "bad_verdict", "bad_cert", "slow_store", "corrupt_store",
        "conn_drop",
    )

    def __post_init__(self) -> None:
        for name in self._RATES:
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(
                    f"chaos rate {name}={rate} must be in [0, 1]"
                )
        if self.stall_s < 0 or self.slow_s < 0:
            raise ValueError("chaos durations must be >= 0")

    @classmethod
    def parse(cls, text: str) -> "ChaosSpec":
        """Parse the ``--chaos`` spec grammar; raises ``ValueError``
        with the accepted fields on any malformed input."""
        spec = cls()
        known = {f.name.replace("_", "-"): f.name for f in fields(cls)}
        for field_text in text.split(","):
            field_text = field_text.strip()
            if not field_text:
                continue
            key, sep, value = field_text.partition("=")
            name = known.get(key.strip())
            if not sep or name is None:
                raise ValueError(
                    f"bad chaos field {field_text!r}; expected "
                    f"KEY=VALUE with KEY one of {', '.join(sorted(known))}"
                )
            try:
                parsed = int(value) if name == "seed" else float(value)
            except ValueError:
                raise ValueError(
                    f"bad chaos value in {field_text!r}: {value!r} is not "
                    f"a number"
                )
            spec = replace(spec, **{name: parsed})
        return spec

    def describe(self) -> str:
        """The spec back in its own grammar (non-default fields only)."""
        default = ChaosSpec()
        parts = [
            f"{f.name.replace('_', '-')}={getattr(self, f.name)!r}"
            for f in fields(self)
            if getattr(self, f.name) != getattr(default, f.name)
        ]
        return ",".join(parts).replace("'", "") or "<no-op>"

    def any_enabled(self) -> bool:
        return any(getattr(self, name) > 0.0 for name in self._RATES)

    # ------------------------------------------------------------------
    # The deterministic roll and the per-seam queries
    # ------------------------------------------------------------------
    def _roll(self, site: str, key: str, attempt: int) -> float:
        """A uniform [0, 1) draw, a pure function of its arguments."""
        digest = hashlib.sha256(
            f"{self.seed}|{site}|{key}|{attempt}".encode()
        ).digest()
        return int.from_bytes(digest[:8], "big") / 2**64

    def crashes(self, key: str, attempt: int) -> bool:
        """Should this (task, attempt) crash its worker?"""
        return self._roll("crash", key, attempt) < self.crash

    def stalls(self, key: str, attempt: int) -> float:
        """Seconds this (task, attempt) stalls before deciding (0 = no)."""
        if self._roll("stall", key, attempt) < self.stall:
            return self.stall_s
        return 0.0

    def loses_result(self, key: str, attempt: int) -> bool:
        """Should the parent drop this completed result on harvest?"""
        return self._roll("lost", key, attempt) < self.lost

    def cache_delay(self, key: str, io: str) -> float:
        """Seconds of injected latency on a cache lookup/store (0 = no)."""
        if self._roll(f"slow-cache-{io}", key, 0) < self.slow_cache:
            return self.slow_s
        return 0.0

    def leg_stall_s(self, key: str, leg: str) -> float:
        """Seconds a portfolio leg is stalled before starting (0 = no)."""
        if self._roll(f"leg-stall-{leg}", key, 0) < self.leg_stall:
            return self.stall_s
        return 0.0

    def flips_verdict(self, key: str, attempt: int) -> bool:
        """Should this (task, attempt) report the *opposite* verdict?
        (Simulates a buggy or corrupted solver — the fault the
        certification layer exists to catch.)"""
        return self._roll("bad-verdict", key, attempt) < self.bad_verdict

    def corrupts_certificate(self, key: str, attempt: int) -> bool:
        """Should this (task, attempt) tamper with its certificate?"""
        return self._roll("bad-cert", key, attempt) < self.bad_cert

    def store_delay(self, key: str, io: str) -> float:
        """Seconds of injected latency on a persistent-store lookup or
        flush (0 = no)."""
        if self._roll(f"slow-store-{io}", key, 0) < self.slow_store:
            return self.slow_s
        return 0.0

    def drops_connection(self, key: str, attempt: int = 0) -> bool:
        """Should the service drop this client's connection instead of
        writing the response?  (Simulates a peer reset / a client dying
        mid-frame — the daemon must survive it and keep serving; the
        *request's* verdict is simply never delivered, which is always
        sound.)"""
        return self._roll("conn-drop", key, attempt) < self.conn_drop

    def corrupts_store_record(self, key: str) -> bool:
        """Should this store record come back corrupted on load?

        Keyed by the record's fingerprint only (no attempt): bit rot is
        a property of the record, not of who reads it — every load of a
        rotten record sees the corruption, so a store that keeps serving
        it would keep being caught."""
        return self._roll("corrupt-store", key, 0) < self.corrupt_store

    # ------------------------------------------------------------------
    # Injection helpers for the seams
    # ------------------------------------------------------------------
    def before_decide(self, key: str, attempt: int) -> None:
        """Worker-side seam: maybe stall, maybe crash (crash wins —
        a dead worker does not get to finish its stall)."""
        if self.crashes(key, attempt):
            raise ChaosCrash(key, attempt)
        delay = self.stalls(key, attempt)
        if delay > 0:
            time.sleep(delay)

    def stall_leg(
        self, key: str, leg: str, should_stop: StopCheck = None
    ) -> None:
        """Portfolio seam: stall a race leg *cooperatively* — the leg is
        slow, not dead, so it keeps polling ``should_stop`` while
        stalled and raises ``Cancelled`` the moment the race is over."""
        remaining = self.leg_stall_s(key, leg)
        while remaining > 0:
            if should_stop is not None and should_stop():
                raise Cancelled(f"chaos-stalled leg {leg}", 0)
            step = min(_LEG_POLL_S, remaining)
            time.sleep(step)
            remaining -= step

    def on_cache_io(self, key: str, io: str) -> None:
        """Parent-side seam: injected latency on cache lookup/store."""
        delay = self.cache_delay(key, io)
        if delay > 0:
            time.sleep(delay)


def tamper_result(spec: ChaosSpec, key: str, attempt: int, result):
    """Apply the semantic faults to a freshly decided result, in place.

    ``bad-verdict`` flips holds <-> violated without touching the
    witness or certificate, exactly what a sign bug in a solver looks
    like.  ``bad-cert`` corrupts whatever certificate material the
    result carries — duplicating a witness op, emptying a cycle,
    pointing an infeasibility claim at a non-existent operation, or
    stripping a RUP proof's empty clause.  Every corruption is chosen
    so the trusted checker *must* reject it; whether anyone looks is
    the certify mode's business, not chaos's.

    UNKNOWN results pass through untouched: they assert nothing, so
    there is no verdict to corrupt.
    """
    if result.unknown:
        return result
    if spec.flips_verdict(key, attempt):
        result.holds = not result.holds
        result.reason = f"[chaos bad-verdict] {result.reason}".strip()
    if spec.corrupts_certificate(key, attempt):
        _corrupt_certificate(result)
    return result


def _corrupt_certificate(result) -> None:
    from repro.core.result import Certificate

    cert = result.certificate
    if result.holds or (cert is not None and cert.kind == "witness"):
        if result.schedule:
            result.schedule = list(result.schedule) + [result.schedule[0]]
        else:
            result.schedule = None
        return
    if cert is None:
        return  # nothing attached (certification off) — nothing to corrupt
    if cert.kind == "cycle":
        steps, _cycle = cert.payload
        result.certificate = Certificate("cycle", (steps, ()))
    elif cert.kind == "infeasible":
        result.certificate = Certificate(
            "infeasible", ("read-impossible", (-99, -99))
        )
    elif cert.kind == "rup":
        result.certificate = Certificate(
            "rup",
            tuple(line for line in cert.payload if line[1] != ()),
        )
