"""Task execution: serial or thread-pooled, cache-aware, early-exiting.

``jobs=1`` runs the plan in order on the calling thread — fully
deterministic, the right mode for debugging and the default.
``jobs>1`` fans tasks out over a :class:`concurrent.futures`
thread pool, exploiting the per-address independence of coherence
(paper Section 3).  In both modes the executor stops launching work
after the first violated task when ``early_exit`` is set: one
incoherent address already decides the aggregate verdict.

Verdicts are identical in both modes — every backend is deterministic
and tasks share no state — though with ``early_exit`` the two modes may
*report* different subsets of per-address results for an incoherent
execution (whichever tasks finished before the exit fired).
"""

from __future__ import annotations

import concurrent.futures
from time import perf_counter

from repro.core.result import VerificationResult
from repro.engine.cache import ResultCache, canonicalize
from repro.engine.planner import PlannedTask
from repro.engine.report import EngineReport, TaskStats


def run_task(
    task: PlannedTask, cache: ResultCache | None
) -> tuple[VerificationResult, bool, float]:
    """Decide one task, consulting ``cache`` first.

    Returns ``(result, cache_hit, seconds)``.
    """
    t0 = perf_counter()
    canon = None
    if cache is not None:
        canon = canonicalize(
            task.instance.execution,
            task.instance.write_order,
            task.instance.problem,
            task.backend.name,
        )
        hit = cache.lookup(canon)
        if hit is not None:
            hit.address = task.address
            return hit, True, perf_counter() - t0
    result = task.backend.run(task.instance)
    if cache is not None and canon is not None:
        cache.store(canon, result)
    result.address = task.address
    result.stats.setdefault("cache_hit", False)
    return result, False, perf_counter() - t0


def execute_plan(
    tasks: list[PlannedTask],
    jobs: int = 1,
    cache: ResultCache | None = None,
    early_exit: bool = True,
    problem: str = "vmc",
) -> tuple[dict, EngineReport]:
    """Run a plan; returns ``(results_by_address, report)``.

    ``results_by_address`` only contains the tasks that actually ran
    (early exit may skip the tail of the plan).
    """
    start = perf_counter()
    report = EngineReport(problem=problem, jobs=max(1, jobs), planned=len(tasks))
    outcomes: dict[int, tuple[VerificationResult, bool, float]] = {}

    if jobs <= 1 or len(tasks) <= 1:
        for task in tasks:
            outcomes[task.order] = run_task(task, cache)
            if early_exit and not outcomes[task.order][0].holds:
                report.early_exit = len(outcomes) < len(tasks)
                break
    else:
        with concurrent.futures.ThreadPoolExecutor(
            max_workers=min(jobs, len(tasks))
        ) as pool:
            futures = {
                pool.submit(run_task, task, cache): task for task in tasks
            }
            violated = False
            for fut in concurrent.futures.as_completed(futures):
                task = futures[fut]
                outcomes[task.order] = fut.result()
                if early_exit and not outcomes[task.order][0].holds:
                    violated = True
                    break
            if violated:
                cancelled = [f for f in futures if f.cancel()]
                report.early_exit = bool(cancelled)
                # In-flight tasks finish during pool shutdown; harvest
                # them so their results are not silently discarded.
                for fut, task in futures.items():
                    if task.order not in outcomes and not fut.cancelled():
                        try:
                            outcomes[task.order] = fut.result()
                        except concurrent.futures.CancelledError:
                            pass

    results: dict = {}
    for task in tasks:
        got = outcomes.get(task.order)
        if got is None:
            report.record(
                TaskStats(
                    address=task.address,
                    backend=task.backend.name,
                    method=task.backend.name,
                    estimate=task.estimate,
                    skipped=True,
                )
            )
            continue
        result, cache_hit, seconds = got
        results[task.address] = result
        report.record(
            TaskStats(
                address=task.address,
                backend=task.backend.name,
                method=result.method,
                estimate=task.estimate,
                wall_time=seconds,
                cache_hit=cache_hit,
                holds=result.holds,
                detail={
                    k: v for k, v in result.stats.items() if k != "cache_hit"
                },
            )
        )
    report.wall_time = perf_counter() - start
    return results, report
