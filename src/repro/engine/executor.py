"""Task execution: serial, thread-pooled or process-pooled; cache-aware,
early-exiting, and resilient.

``jobs=1`` runs the plan in order on the calling thread — fully
deterministic, the right mode for debugging and the default.
``jobs>1`` fans tasks out over a :class:`concurrent.futures` pool,
exploiting the per-address independence of coherence (paper Section 3):

* ``pool="thread"`` — cheap to spin up, but the pure-Python backends
  hold the GIL, so threads mostly overlap I/O and cache waits;
* ``pool="process"`` — true multi-core scaling.  Tasks (including their
  pre-pass state) are pickled into workers; the result cache stays in
  the parent, which resolves hits and pre-pass-decided tasks inline
  before anything is submitted, and stores worker results on
  completion.

Submission is windowed (``2 × jobs`` tasks in flight) so an early exit
has something left to cancel: after the first *violated* task the
executor cancels every not-yet-started future, stops submitting, and
counts the avoided work in ``EngineReport.cancelled``.  In-flight tasks
are harvested so their results are not silently discarded.

Resilience (:class:`ResiliencePolicy`) hardens the run against the
failure modes of long campaigns:

* **deadlines** — each task runs under ``task_timeout`` (observed
  cooperatively through the backends' stop checks) and the whole run
  under the ``timeout`` wall-clock budget; expiry yields a sound
  UNKNOWN result with a recorded reason, never a hang or exception;
* **crash recovery** — a dead worker (``BrokenProcessPool``) rebuilds
  the pool, and the victim tasks are retried up to ``retries`` times
  with exponential backoff; a task that keeps killing workers is
  *quarantined*: run once in-process (one bad pickle cannot sink a
  sweep), and reported UNKNOWN(crashed) if it still fails;
* **Ctrl-C** — ``KeyboardInterrupt`` shuts the pool down with
  ``cancel_futures=True`` before re-raising, so no workers are
  orphaned;
* **chaos** — a :class:`~repro.engine.chaos.ChaosSpec` injects seeded
  crashes, stalls, lost results and slow cache I/O at exactly these
  seams, so tests can prove the above without real worker deaths.

Verdicts are identical in all modes — every backend is deterministic
and tasks share no state — though with ``early_exit`` the modes may
*report* different subsets of per-address results for an incoherent
execution (whichever tasks finished before the exit fired).
"""

from __future__ import annotations

import concurrent.futures
import time
from collections import deque
from dataclasses import dataclass
from time import perf_counter

from repro.core.result import VerificationResult
from repro.engine.cache import CanonicalInstance, ResultCache, canonicalize
from repro.engine.certify import (
    CERTIFY_MODES,
    CertificationError,
    ensure_certificate,
    validate_result,
)
from repro.engine.chaos import ChaosCrash, ChaosSpec, tamper_result
from repro.engine.planner import PlannedTask
from repro.engine.portfolio import PORTFOLIO_MIN_STATES, PortfolioBackend
from repro.engine.prepass import EXPONENTIAL_TIER
from repro.engine.report import EngineReport, TaskStats
from repro.util.control import Cancelled
from repro.util.deadline import Deadline

POOL_KINDS = ("thread", "process")

#: Exceptions that mean "the worker died", not "the task is wrong":
#: retried with backoff, then quarantined.  Anything else (including a
#: portfolio verdict disagreement) stays a hard error and propagates.
RETRYABLE = (ChaosCrash, concurrent.futures.BrokenExecutor)

#: Longest single retry-backoff sleep, so exponential backoff cannot
#: dominate a run that has a wall-clock budget to respect.
MAX_BACKOFF_S = 1.0


@dataclass(frozen=True)
class ResiliencePolicy:
    """Degrade-gracefully knobs for one engine run.

    The default policy is inert for healthy runs — no deadlines, no
    chaos — but still recovers crashed workers (``retries=2``), because
    a ``BrokenProcessPool`` should never cost a whole sweep.
    """

    #: Per-run wall-clock budget in seconds (``verify --timeout``).
    timeout: float | None = None
    #: Per-task soft deadline in seconds (``verify --task-timeout``).
    task_timeout: float | None = None
    #: Crash retries per task before quarantine (``verify --retries``).
    retries: int = 2
    #: Base of the exponential retry backoff (doubles per attempt).
    backoff_s: float = 0.05
    #: Deterministic fault injection (``verify --chaos``); None = off.
    chaos: ChaosSpec | None = None


#: The inert-by-default policy used when the caller passes nothing.
NO_RESILIENCE = ResiliencePolicy()


@dataclass
class _Outcome:
    """One task's execution record (richer than the public result)."""

    result: VerificationResult
    cache_hit: bool
    seconds: float
    attempts: int = 1
    crashes: int = 0
    quarantined: bool = False


def _is_heavy(task: PlannedTask) -> bool:
    """Whether a task carries exponential-tier work worth a process.

    Pre-pass-decided tasks cost nothing; small exact searches finish in
    microseconds.  Only surviving exponential-tier tasks with a
    non-trivial state space justify paying process-pool pickling — and
    under the GIL they are also the ones a thread pool cannot speed up.
    """
    if task.prepass is not None and task.prepass.decided is not None:
        return False
    if isinstance(task.backend, PortfolioBackend):
        return True
    threshold = EXPONENTIAL_TIER if task.instance.problem == "vmc" else 0
    return (
        task.backend.tier >= threshold
        and task.run_instance.states > PORTFOLIO_MIN_STATES
    )


def resolve_pool(pool: str, tasks: list[PlannedTask], jobs: int) -> str:
    """Resolve ``pool="auto"`` to a concrete pool kind.

    Processes win only when there is CPU-bound work to parallelise:
    with ``jobs > 1`` and at least one heavy exponential-tier task the
    GIL makes a thread pool *slower* than serial, so auto picks
    ``process``; otherwise threads (cheap startup, no pickling).
    """
    if pool != "auto":
        return pool
    if jobs > 1 and any(_is_heavy(t) for t in tasks):
        return "process"
    return "thread"


def _task_key(task: PlannedTask) -> str:
    """Stable identity for chaos rolls and diagnostics."""
    return f"{task.address!r}#{task.order}"


def _decide_task(
    task: PlannedTask,
    task_timeout: float | None = None,
    chaos: ChaosSpec | None = None,
    attempt: int = 0,
    timeout_reason: str = "timeout",
    certify: str = "off",
) -> tuple[VerificationResult, float]:
    """Run one task to a finished result — no cache I/O, only picklable
    state, so this is the unit shipped to process-pool workers.

    The deadline is rebuilt worker-side from ``task_timeout`` seconds
    (monotonic clocks do not travel across process boundaries), so
    queue wait does not count against a task's soft deadline.  Expiry
    returns UNKNOWN(``timeout_reason``) — "budget" when the run budget,
    not the task's own allowance, was the binding constraint.

    With ``certify`` enabled the decided result leaves here carrying a
    certificate (:func:`~repro.engine.certify.ensure_certificate`);
    *validation* stays parent-side in :func:`_finalize`, so a worker
    can never vouch for its own verdict.  Chaos's semantic faults
    (``bad-verdict`` / ``bad-cert``) tamper *after* certification —
    they model a corrupted producer, and must be caught downstream.
    """
    t0 = perf_counter()
    if chaos is not None:
        chaos.before_decide(_task_key(task), attempt)
        if isinstance(task.backend, PortfolioBackend):
            task.backend.chaos = chaos
            task.backend.chaos_key = _task_key(task)
    deadline = Deadline.after(task_timeout)
    stop = deadline.as_stop_check() if deadline is not None else None
    task.run_instance.certify = certify != "off"
    pp = task.prepass
    if pp is not None and pp.decided is not None:
        result = pp.decided
    else:
        try:
            result = task.backend.run_resilient(task.run_instance, stop)
        except Cancelled as e:
            result = VerificationResult.make_unknown(
                method=task.backend.name,
                reason=timeout_reason,
                detail=f"{e.where} abandoned after {task_timeout:g}s",
                address=task.address,
            )
            return result, perf_counter() - t0
        if pp is not None and not result.unknown:
            result = pp.finish(result)
    if certify != "off" and not result.unknown:
        cert = result.certificate
        if (
            cert is not None
            and cert.kind == "rup"
            and task.run_instance.execution is not task.instance.execution
        ):
            # The proof refutes the pre-pass *residual's* CNF; the
            # auditor re-derives the CNF from the original trace, so the
            # proof does not transfer.  Drop it and re-derive below.
            # (Cycle/infeasible certificates survive read elimination —
            # residual ops are original ops and writes are never
            # eliminated — so only RUP proofs pay this.)
            result.certificate = None
        if cert is not None and cert.kind == "order" and (
            task.instance.write_order is None
            or tuple(op.uid for op in task.instance.write_order)
            != tuple(cert.payload)
        ):
            # An order certificate refutes the instance *relative to a
            # supplied write-order*.  The pre-pass downgrade path runs
            # the write-order backend against an order it *derived*
            # (forced by unique values) — sound, but the auditor can
            # only re-check orders the instance itself supplies.  Drop
            # the certificate and re-refute the raw trace below.
            result.certificate = None
        t_cert = perf_counter()
        try:
            result = ensure_certificate(
                task.instance.execution, result, task.instance.problem, stop
            )
        except Cancelled as e:
            result = VerificationResult.make_unknown(
                method=result.method,
                reason=timeout_reason,
                detail=f"{e.where} abandoned while deriving a certificate",
                address=task.address,
            )
            return result, perf_counter() - t0
        result.stats["t_certify"] = (
            result.stats.get("t_certify", 0.0) + perf_counter() - t_cert
        )
    if chaos is not None and not result.unknown:
        result = tamper_result(chaos, _task_key(task), attempt, result)
    return result, perf_counter() - t0


def _effective_timeout(
    policy: ResiliencePolicy, run_deadline: Deadline | None
) -> tuple[float | None, str]:
    """The task deadline to ship to a worker right now, and the UNKNOWN
    reason to use if it expires: the run budget caps the per-task
    allowance, and when the budget is the binding constraint the
    outcome is UNKNOWN(budget), not UNKNOWN(timeout)."""
    if run_deadline is None:
        return policy.task_timeout, "timeout"
    remaining = run_deadline.remaining()
    if policy.task_timeout is None or remaining < policy.task_timeout:
        return remaining, "budget"
    return policy.task_timeout, "timeout"


def _unknown_outcome(
    task: PlannedTask, reason: str, detail: str = "",
    attempts: int = 1, crashes: int = 0, quarantined: bool = False,
) -> _Outcome:
    return _Outcome(
        result=VerificationResult.make_unknown(
            method=task.backend.name, reason=reason, detail=detail,
            address=task.address,
        ),
        cache_hit=False,
        seconds=0.0,
        attempts=attempts,
        crashes=crashes,
        quarantined=quarantined,
    )


def _backoff(policy: ResiliencePolicy, attempt: int,
             run_deadline: Deadline | None) -> None:
    """Exponential backoff before a crash retry, capped and clipped to
    the run budget (waiting must never blow the deadline by itself)."""
    delay = min(MAX_BACKOFF_S, policy.backoff_s * (2 ** attempt))
    if delay <= 0:
        return
    if run_deadline is not None:
        run_deadline.sleep(delay)
    else:
        time.sleep(delay)


def _canon(
    task: PlannedTask, cache: ResultCache | None
) -> CanonicalInstance | None:
    if cache is None:
        return None
    return canonicalize(
        task.instance.execution,
        task.instance.write_order,
        task.instance.problem,
        task.backend.name,
    )


def _finalize(
    task: PlannedTask,
    canon: CanonicalInstance | None,
    result: VerificationResult,
    cache: ResultCache | None,
    chaos: ChaosSpec | None = None,
    certify: str = "off",
) -> VerificationResult:
    # The trusted-checker gate: with certification enabled every
    # decided verdict is validated here — in the parent, against the
    # *original* execution, before it can reach the cache or the caller.
    # ``on`` makes a failure loud (producer or checker is wrong; the
    # run must not quietly pick a side); ``strict`` degrades to a sound
    # UNKNOWN(uncertified) so sweeps survive an uncertifiable verdict.
    if certify != "off" and not result.unknown:
        t_cert = perf_counter()
        check = validate_result(
            task.instance.execution, result, task.instance.problem,
            write_order=task.instance.write_order,
        )
        result.stats["t_certify"] = (
            result.stats.get("t_certify", 0.0) + perf_counter() - t_cert
        )
        result.stats["certified"] = bool(check)
        if not check:
            if certify == "strict":
                result = VerificationResult.make_unknown(
                    method=result.method,
                    reason="uncertified",
                    detail=check.reason,
                    address=task.address,
                )
            else:
                raise CertificationError(
                    f"task {_task_key(task)} failed certification: "
                    f"{check.reason}"
                )
    # UNKNOWN is not a verdict: caching it would replay resource
    # exhaustion as if it were a property of the instance.
    if cache is not None and canon is not None and not result.unknown:
        if chaos is not None:
            chaos.on_cache_io(_task_key(task), "store")
        cache.store(canon, result)
    result.address = task.address
    result.stats.setdefault("cache_hit", False)
    return result


def _cache_lookup(
    task: PlannedTask,
    cache: ResultCache | None,
    chaos: ChaosSpec | None,
    certify: str = "off",
) -> tuple[CanonicalInstance | None, VerificationResult | None]:
    canon = _canon(task, cache)
    if canon is None:
        return None, None
    if chaos is not None:
        chaos.on_cache_io(_task_key(task), "lookup")
    hit = cache.lookup(canon)
    if hit is None:
        return canon, None
    hit.address = task.address
    # On-hit validation.  Witness hits are *always* re-replayed against
    # the current execution — the cached schedule was computed for an
    # isomorphic instance, and serving it unchecked would launder a
    # stale or corrupted entry into a verdict.  Refutation certificates
    # are re-checked whenever certification is enabled (their uids /
    # variable numberings may not survive the isomorphism).  Any
    # failure drops the entry and recomputes: a cache miss, never a
    # wrong answer.
    if hit.holds or certify != "off":
        check = validate_result(
            task.instance.execution, hit, task.instance.problem,
            write_order=task.instance.write_order,
        )
        if not check:
            cache.invalidate(canon)
            return canon, None
        if certify != "off":
            hit.stats["certified"] = True
    return canon, hit


def run_task(
    task: PlannedTask, cache: ResultCache | None, certify: str = "off"
) -> tuple[VerificationResult, bool, float]:
    """Decide one task, consulting ``cache`` first.

    Returns ``(result, cache_hit, seconds)``.  The non-resilient entry
    point kept for direct callers; the executor proper goes through
    :func:`_run_task_resilient`.
    """
    out = _run_task_resilient(task, cache, NO_RESILIENCE, None, certify)
    return out.result, out.cache_hit, out.seconds


def _run_task_resilient(
    task: PlannedTask,
    cache: ResultCache | None,
    policy: ResiliencePolicy,
    run_deadline: Deadline | None,
    certify: str = "off",
) -> _Outcome:
    """Cache-checked, deadline-capped, crash-retried serial execution."""
    t0 = perf_counter()
    canon, hit = _cache_lookup(task, cache, policy.chaos, certify)
    if hit is not None:
        return _Outcome(hit, True, perf_counter() - t0)
    timeout, reason = _effective_timeout(policy, run_deadline)
    attempt = 0
    crashes = 0
    while True:
        try:
            result, _seconds = _decide_task(
                task, timeout, policy.chaos, attempt, reason, certify
            )
            break
        except RETRYABLE as e:
            crashes += 1
            if attempt >= policy.retries:
                return _unknown_outcome(
                    task, "crashed", f"gave up after {crashes} crashes: {e}",
                    attempts=attempt + 1, crashes=crashes, quarantined=True,
                )
            _backoff(policy, attempt, run_deadline)
            attempt += 1
    result = _finalize(task, canon, result, cache, policy.chaos, certify)
    return _Outcome(
        result, False, perf_counter() - t0,
        attempts=attempt + 1, crashes=crashes,
    )


def _quarantine(
    task: PlannedTask,
    cache: ResultCache | None,
    policy: ResiliencePolicy,
    run_deadline: Deadline | None,
    attempt: int,
    crashes: int,
    certify: str = "off",
) -> _Outcome:
    """A task that exhausted its pool retries runs once in-process —
    a poisoned pickle or a worker-killing input cannot sink the sweep.
    If it *still* dies, it is reported UNKNOWN(crashed)."""
    t0 = perf_counter()
    timeout, reason = _effective_timeout(policy, run_deadline)
    try:
        result, _seconds = _decide_task(
            task, timeout, policy.chaos, attempt, reason, certify
        )
    except RETRYABLE as e:
        return _unknown_outcome(
            task, "crashed", f"gave up after {crashes + 1} crashes: {e}",
            attempts=attempt + 1, crashes=crashes + 1, quarantined=True,
        )
    canon = _canon(task, cache)
    result = _finalize(task, canon, result, cache, policy.chaos, certify)
    return _Outcome(
        result, False, perf_counter() - t0,
        attempts=attempt + 1, crashes=crashes, quarantined=True,
    )


def execute_plan(
    tasks: list[PlannedTask],
    jobs: int = 1,
    cache: ResultCache | None = None,
    early_exit: bool = True,
    problem: str = "vmc",
    pool: str = "thread",
    resilience: ResiliencePolicy | None = None,
    certify: str = "off",
) -> tuple[dict, EngineReport]:
    """Run a plan; returns ``(results_by_address, report)``.

    ``results_by_address`` only contains the tasks that actually ran
    (early exit may skip the tail of the plan; a run-budget expiry
    instead records UNKNOWN(budget) results, so partial coverage is
    visible rather than silent).

    ``certify`` is one of :data:`~repro.engine.certify.CERTIFY_MODES`:
    with ``"on"`` or ``"strict"`` every decided verdict must carry a
    certificate the trusted checker validates before the result is
    cached or returned.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if pool not in POOL_KINDS and pool != "auto":
        raise ValueError(
            f"unknown pool kind {pool!r}; choose from "
            f"{POOL_KINDS + ('auto',)}"
        )
    if certify not in CERTIFY_MODES:
        raise ValueError(
            f"unknown certify mode {certify!r}; choose from {CERTIFY_MODES}"
        )
    policy = resilience or NO_RESILIENCE
    pool = resolve_pool(pool, tasks, jobs)
    start = perf_counter()
    run_deadline = Deadline.after(policy.timeout)
    report = EngineReport(
        problem=problem, jobs=jobs, pool=pool, planned=len(tasks)
    )
    evictions_before = cache.stats.evictions if cache is not None else 0
    store_reval_before = (
        cache.stats.store_revalidation_failures if cache is not None else 0
    )
    outcomes: dict[int, _Outcome] = {}

    if jobs <= 1 or len(tasks) <= 1:
        for task in tasks:
            if run_deadline is not None and run_deadline.expired():
                outcomes[task.order] = _unknown_outcome(
                    task, "budget",
                    f"run budget {policy.timeout:g}s exhausted before "
                    f"the task started",
                )
                continue
            outcomes[task.order] = _run_task_resilient(
                task, cache, policy, run_deadline, certify
            )
            if early_exit and outcomes[task.order].result.violated:
                break
    else:
        _run_pooled(
            tasks, jobs, cache, early_exit, pool, outcomes, report,
            policy, run_deadline, certify,
        )

    results: dict = {}
    violated = False
    certify_s = 0.0
    decide_s = 0.0
    for task in tasks:
        got = outcomes.get(task.order)
        if got is None:
            report.record(
                TaskStats(
                    address=task.address,
                    backend=task.backend.name,
                    method=task.backend.name,
                    estimate=task.estimate,
                    skipped=True,
                )
            )
            continue
        result = got.result
        violated = violated or result.violated
        results[task.address] = result
        certify_s += result.stats.pop("t_certify", 0.0)
        decide_s += got.seconds
        report.crashes += got.crashes
        if result.unknown and result.unknown_reason in ("timeout", "budget"):
            report.deadline_expired += 1
        if result.stats.get("certified"):
            report.certified += 1
        elif result.unknown and result.unknown_reason == "uncertified":
            report.uncertified += 1
        decided_by_prepass = (
            task.prepass is not None
            and task.prepass.decided is not None
            and not result.unknown
        )
        report.record(
            TaskStats(
                address=task.address,
                backend="prepass" if decided_by_prepass else task.backend.name,
                method=result.method,
                estimate=task.estimate,
                wall_time=got.seconds,
                cache_hit=got.cache_hit,
                store_hit=bool(result.stats.get("store_hit")),
                holds=None if result.unknown else result.holds,
                unknown=result.unknown,
                attempts=got.attempts,
                quarantined=got.quarantined,
                detail={
                    k: v
                    for k, v in result.stats.items()
                    if k not in ("cache_hit", "store_hit")
                },
            )
        )
    report.early_exit = early_exit and violated and len(outcomes) < len(tasks)
    _aggregate_portfolio(tasks, outcomes, report)
    prepassed = [t.prepass for t in tasks if t.prepass is not None]
    if prepassed:
        report.prepass = {
            "tasks": len(prepassed),
            "decided": sum(1 for p in prepassed if p.decided is not None),
            "downgraded": sum(1 for p in prepassed if p.downgraded),
            "edges_inferred": sum(p.edges_inferred for p in prepassed),
            "ops_eliminated": sum(p.ops_eliminated for p in prepassed),
            "ops_before": sum(p.ops_before for p in prepassed),
            "ops_after": sum(p.ops_after for p in prepassed),
        }
    if cache is not None:
        report.cache_evictions = cache.stats.evictions - evictions_before
        report.store_revalidation_failures = (
            cache.stats.store_revalidation_failures - store_reval_before
        )
        # fsync-on-batch: one durability point per engine run, not per
        # entry (a no-op without a store tier).
        cache.flush_store()
    report.stage_times["search"] = max(0.0, decide_s - certify_s)
    if certify != "off":
        report.stage_times["certify"] = certify_s
    from repro.core import kernels

    report.kernel = kernels.backend().name
    report.wall_time = perf_counter() - start
    return results, report


def _aggregate_portfolio(
    tasks: list[PlannedTask],
    outcomes: dict[int, _Outcome],
    report: EngineReport,
) -> None:
    """Fold per-task race records into the report's portfolio summary.

    Cache hits are excluded — a hit replays a verdict, not a race."""
    races = 0
    wins: dict[str, int] = {}
    cancelled = 0
    budget_exceeded = 0
    for task in tasks:
        got = outcomes.get(task.order)
        if got is None:
            continue
        record = got.result.stats.get("portfolio")
        if got.cache_hit or not isinstance(record, dict):
            continue
        races += 1
        winner = record.get("winner", "?")
        wins[winner] = wins.get(winner, 0) + 1
        cancelled += record.get("cancelled", 0)
        budget_exceeded += record.get("budget_exceeded", 0)
    if races:
        report.portfolio = {
            "races": races,
            "wins": wins,
            "cancelled_legs": cancelled,
            "budget_exceeded": budget_exceeded,
        }


class _LostResult(RuntimeError):
    """Chaos dropped a completed result on the pool boundary; the task
    must be retried exactly as if the worker had died."""


def _run_pooled(
    tasks: list[PlannedTask],
    jobs: int,
    cache: ResultCache | None,
    early_exit: bool,
    pool: str,
    outcomes: dict[int, _Outcome],
    report: EngineReport,
    policy: ResiliencePolicy,
    run_deadline: Deadline | None,
    certify: str = "off",
) -> None:
    """Windowed pool execution shared by both pool kinds.

    Cache lookups, cache stores, and pre-pass-decided tasks are handled
    in the parent — the cache's lock does not pickle, and a decided
    task needs no worker anyway.  Only undecided work crosses the pool
    boundary.

    Failure handling: a retryable failure (dead worker, injected crash,
    lost result) requeues the victim with backoff up to
    ``policy.retries`` attempts, then quarantines it in-process; a
    broken pool is rebuilt once per break with every in-flight task
    requeued (the victim cannot be told apart from its innocent
    neighbours).  ``KeyboardInterrupt`` cancels all futures, drains the
    pool, and re-raises — no orphaned workers.
    """
    executor_cls = (
        concurrent.futures.ProcessPoolExecutor
        if pool == "process"
        else concurrent.futures.ThreadPoolExecutor
    )
    max_workers = min(jobs, len(tasks))
    window = 2 * jobs
    chaos = policy.chaos
    # (task, attempt, crashes) triples; retries re-enter at the front.
    pending: deque[tuple[PlannedTask, int, int]] = deque(
        (t, 0, 0) for t in tasks
    )
    in_flight: dict[
        concurrent.futures.Future,
        tuple[PlannedTask, CanonicalInstance | None, int, int],
    ] = {}
    violated = False
    budget_out = False
    executor = executor_cls(max_workers=max_workers)
    try:
        while (pending or in_flight) and not violated:
            if run_deadline is not None and run_deadline.expired():
                budget_out = True
                break
            while pending and len(in_flight) < window and not violated:
                task, attempt, crashes = pending.popleft()
                canon, hit = _cache_lookup(task, cache, chaos, certify)
                if hit is not None:
                    outcomes[task.order] = _Outcome(hit, True, 0.0)
                    violated = early_exit and hit.violated
                    continue
                if task.prepass is not None and task.prepass.decided is not None:
                    # Decided in the parent, so chaos must not ride into
                    # _decide_task (an injected crash would surface here
                    # as a hard error, not a retryable worker death);
                    # the semantic faults still apply, explicitly.
                    result, seconds = _decide_task(task, certify=certify)
                    if chaos is not None and not result.unknown:
                        result = tamper_result(
                            chaos, _task_key(task), attempt, result
                        )
                    result = _finalize(
                        task, canon, result, cache, chaos, certify
                    )
                    outcomes[task.order] = _Outcome(result, False, seconds)
                    violated = early_exit and result.violated
                    continue
                timeout, reason = _effective_timeout(policy, run_deadline)
                fut = executor.submit(
                    _decide_task, task, timeout, chaos, attempt, reason,
                    certify,
                )
                in_flight[fut] = (task, canon, attempt, crashes)
            if violated or not in_flight:
                continue
            wait_s = (
                None if run_deadline is None
                else max(0.01, min(0.25, run_deadline.remaining()))
            )
            done, _running = concurrent.futures.wait(
                in_flight,
                timeout=wait_s,
                return_when=concurrent.futures.FIRST_COMPLETED,
            )
            for fut in done:
                task, canon, attempt, crashes = in_flight.pop(fut)
                try:
                    result, seconds = fut.result()
                    if chaos is not None and chaos.loses_result(
                        _task_key(task), attempt
                    ):
                        raise _LostResult(_task_key(task))
                except RETRYABLE + (_LostResult,) as e:
                    crashes += 1
                    if isinstance(e, concurrent.futures.BrokenExecutor):
                        # The pool is dead: rebuild it and requeue every
                        # in-flight task — their futures are broken too.
                        executor.shutdown(wait=False, cancel_futures=True)
                        executor = executor_cls(max_workers=max_workers)
                        for other in list(in_flight):
                            t2, _c2, a2, cr2 = in_flight.pop(other)
                            pending.appendleft((t2, a2 + 1, cr2 + 1))
                    if attempt >= policy.retries:
                        outcomes[task.order] = _quarantine(
                            task, cache, policy, run_deadline,
                            attempt + 1, crashes, certify,
                        )
                        violated = (
                            early_exit and outcomes[task.order].result.violated
                        )
                    else:
                        _backoff(policy, attempt, run_deadline)
                        pending.appendleft((task, attempt + 1, crashes))
                    continue
                result = _finalize(task, canon, result, cache, chaos, certify)
                outcomes[task.order] = _Outcome(
                    result, False, seconds,
                    attempts=attempt + 1, crashes=crashes,
                )
                if early_exit and result.violated:
                    violated = True
        if violated or budget_out:
            # Cancel whatever has not started; count never-submitted
            # tasks too — both are work the exit avoided.
            for fut in list(in_flight):
                if fut.cancel():
                    report.cancelled += 1
                    del in_flight[fut]
            if violated:
                report.cancelled += len(pending)
            # In-flight tasks finish during pool shutdown (their worker-
            # side deadlines are capped by the run budget, so this is
            # bounded); harvest them so results are not discarded.
            for fut, (task, canon, attempt, crashes) in list(in_flight.items()):
                try:
                    result, seconds = fut.result()
                except concurrent.futures.CancelledError:
                    continue
                except RETRYABLE + (_LostResult,):
                    outcomes[task.order] = _unknown_outcome(
                        task, "crashed", "worker died during wind-down",
                        attempts=attempt + 1, crashes=crashes + 1,
                    )
                    continue
                result = _finalize(task, canon, result, cache, chaos, certify)
                outcomes[task.order] = _Outcome(
                    result, False, seconds,
                    attempts=attempt + 1, crashes=crashes,
                )
            if budget_out:
                # Tasks that never ran (queued or cancelled on the pool)
                # are UNKNOWN(budget), not silently skipped: partial
                # coverage must be visible.
                for task in tasks:
                    if task.order not in outcomes:
                        outcomes[task.order] = _unknown_outcome(
                            task, "budget",
                            f"run budget {policy.timeout:g}s exhausted "
                            f"before the task started",
                        )
    except KeyboardInterrupt:
        # Ctrl-C must not orphan workers: cancel everything that has
        # not started, drain what has, then re-raise to the caller.
        executor.shutdown(wait=True, cancel_futures=True)
        raise
    finally:
        executor.shutdown(wait=True, cancel_futures=True)
