"""Task execution: serial, thread-pooled or process-pooled; cache-aware,
early-exiting.

``jobs=1`` runs the plan in order on the calling thread — fully
deterministic, the right mode for debugging and the default.
``jobs>1`` fans tasks out over a :class:`concurrent.futures` pool,
exploiting the per-address independence of coherence (paper Section 3):

* ``pool="thread"`` — cheap to spin up, but the pure-Python backends
  hold the GIL, so threads mostly overlap I/O and cache waits;
* ``pool="process"`` — true multi-core scaling.  Tasks (including their
  pre-pass state) are pickled into workers; the result cache stays in
  the parent, which resolves hits and pre-pass-decided tasks inline
  before anything is submitted, and stores worker results on
  completion.

Submission is windowed (``2 × jobs`` tasks in flight) so an early exit
has something left to cancel: after the first violated task the
executor cancels every not-yet-started future, stops submitting, and
counts the avoided work in ``EngineReport.cancelled``.  In-flight tasks
are harvested so their results are not silently discarded.

Verdicts are identical in all modes — every backend is deterministic
and tasks share no state — though with ``early_exit`` the modes may
*report* different subsets of per-address results for an incoherent
execution (whichever tasks finished before the exit fired).
"""

from __future__ import annotations

import concurrent.futures
from collections import deque
from time import perf_counter

from repro.core.result import VerificationResult
from repro.engine.cache import CanonicalInstance, ResultCache, canonicalize
from repro.engine.planner import PlannedTask
from repro.engine.portfolio import PORTFOLIO_MIN_STATES, PortfolioBackend
from repro.engine.prepass import EXPONENTIAL_TIER
from repro.engine.report import EngineReport, TaskStats

POOL_KINDS = ("thread", "process")


def _is_heavy(task: PlannedTask) -> bool:
    """Whether a task carries exponential-tier work worth a process.

    Pre-pass-decided tasks cost nothing; small exact searches finish in
    microseconds.  Only surviving exponential-tier tasks with a
    non-trivial state space justify paying process-pool pickling — and
    under the GIL they are also the ones a thread pool cannot speed up.
    """
    if task.prepass is not None and task.prepass.decided is not None:
        return False
    if isinstance(task.backend, PortfolioBackend):
        return True
    threshold = EXPONENTIAL_TIER if task.instance.problem == "vmc" else 0
    return (
        task.backend.tier >= threshold
        and task.run_instance.states > PORTFOLIO_MIN_STATES
    )


def resolve_pool(pool: str, tasks: list[PlannedTask], jobs: int) -> str:
    """Resolve ``pool="auto"`` to a concrete pool kind.

    Processes win only when there is CPU-bound work to parallelise:
    with ``jobs > 1`` and at least one heavy exponential-tier task the
    GIL makes a thread pool *slower* than serial, so auto picks
    ``process``; otherwise threads (cheap startup, no pickling).
    """
    if pool != "auto":
        return pool
    if jobs > 1 and any(_is_heavy(t) for t in tasks):
        return "process"
    return "thread"


def _decide_task(task: PlannedTask) -> tuple[VerificationResult, float]:
    """Run one task to a finished result — no cache I/O, only picklable
    state, so this is the unit shipped to process-pool workers."""
    t0 = perf_counter()
    pp = task.prepass
    if pp is not None and pp.decided is not None:
        result = pp.decided
    else:
        result = task.backend.run(task.run_instance)
        if pp is not None:
            result = pp.finish(result)
    return result, perf_counter() - t0


def _canon(
    task: PlannedTask, cache: ResultCache | None
) -> CanonicalInstance | None:
    if cache is None:
        return None
    return canonicalize(
        task.instance.execution,
        task.instance.write_order,
        task.instance.problem,
        task.backend.name,
    )


def _finalize(
    task: PlannedTask,
    canon: CanonicalInstance | None,
    result: VerificationResult,
    cache: ResultCache | None,
) -> VerificationResult:
    if cache is not None and canon is not None:
        cache.store(canon, result)
    result.address = task.address
    result.stats.setdefault("cache_hit", False)
    return result


def run_task(
    task: PlannedTask, cache: ResultCache | None
) -> tuple[VerificationResult, bool, float]:
    """Decide one task, consulting ``cache`` first.

    Returns ``(result, cache_hit, seconds)``.
    """
    t0 = perf_counter()
    canon = _canon(task, cache)
    if canon is not None:
        hit = cache.lookup(canon)
        if hit is not None:
            hit.address = task.address
            return hit, True, perf_counter() - t0
    result, _seconds = _decide_task(task)
    _finalize(task, canon, result, cache)
    return result, False, perf_counter() - t0


def execute_plan(
    tasks: list[PlannedTask],
    jobs: int = 1,
    cache: ResultCache | None = None,
    early_exit: bool = True,
    problem: str = "vmc",
    pool: str = "thread",
) -> tuple[dict, EngineReport]:
    """Run a plan; returns ``(results_by_address, report)``.

    ``results_by_address`` only contains the tasks that actually ran
    (early exit may skip the tail of the plan).
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if pool not in POOL_KINDS and pool != "auto":
        raise ValueError(
            f"unknown pool kind {pool!r}; choose from "
            f"{POOL_KINDS + ('auto',)}"
        )
    pool = resolve_pool(pool, tasks, jobs)
    start = perf_counter()
    report = EngineReport(
        problem=problem, jobs=jobs, pool=pool, planned=len(tasks)
    )
    evictions_before = cache.stats.evictions if cache is not None else 0
    outcomes: dict[int, tuple[VerificationResult, bool, float]] = {}

    if jobs <= 1 or len(tasks) <= 1:
        for task in tasks:
            outcomes[task.order] = run_task(task, cache)
            if early_exit and not outcomes[task.order][0].holds:
                break
    else:
        _run_pooled(tasks, jobs, cache, early_exit, pool, outcomes, report)

    results: dict = {}
    violated = False
    for task in tasks:
        got = outcomes.get(task.order)
        if got is None:
            report.record(
                TaskStats(
                    address=task.address,
                    backend=task.backend.name,
                    method=task.backend.name,
                    estimate=task.estimate,
                    skipped=True,
                )
            )
            continue
        result, cache_hit, seconds = got
        violated = violated or not result.holds
        results[task.address] = result
        decided_by_prepass = (
            task.prepass is not None and task.prepass.decided is not None
        )
        report.record(
            TaskStats(
                address=task.address,
                backend="prepass" if decided_by_prepass else task.backend.name,
                method=result.method,
                estimate=task.estimate,
                wall_time=seconds,
                cache_hit=cache_hit,
                holds=result.holds,
                detail={
                    k: v for k, v in result.stats.items() if k != "cache_hit"
                },
            )
        )
    report.early_exit = early_exit and violated and len(outcomes) < len(tasks)
    _aggregate_portfolio(tasks, outcomes, report)
    prepassed = [t.prepass for t in tasks if t.prepass is not None]
    if prepassed:
        report.prepass = {
            "tasks": len(prepassed),
            "decided": sum(1 for p in prepassed if p.decided is not None),
            "downgraded": sum(1 for p in prepassed if p.downgraded),
            "edges_inferred": sum(p.edges_inferred for p in prepassed),
            "ops_eliminated": sum(p.ops_eliminated for p in prepassed),
            "ops_before": sum(p.ops_before for p in prepassed),
            "ops_after": sum(p.ops_after for p in prepassed),
        }
    if cache is not None:
        report.cache_evictions = cache.stats.evictions - evictions_before
    report.wall_time = perf_counter() - start
    return results, report


def _aggregate_portfolio(
    tasks: list[PlannedTask],
    outcomes: dict[int, tuple[VerificationResult, bool, float]],
    report: EngineReport,
) -> None:
    """Fold per-task race records into the report's portfolio summary.

    Cache hits are excluded — a hit replays a verdict, not a race."""
    races = 0
    wins: dict[str, int] = {}
    cancelled = 0
    budget_exceeded = 0
    for task in tasks:
        got = outcomes.get(task.order)
        if got is None:
            continue
        result, cache_hit, _seconds = got
        record = result.stats.get("portfolio")
        if cache_hit or not isinstance(record, dict):
            continue
        races += 1
        winner = record.get("winner", "?")
        wins[winner] = wins.get(winner, 0) + 1
        cancelled += record.get("cancelled", 0)
        budget_exceeded += record.get("budget_exceeded", 0)
    if races:
        report.portfolio = {
            "races": races,
            "wins": wins,
            "cancelled_legs": cancelled,
            "budget_exceeded": budget_exceeded,
        }


def _run_pooled(
    tasks: list[PlannedTask],
    jobs: int,
    cache: ResultCache | None,
    early_exit: bool,
    pool: str,
    outcomes: dict[int, tuple[VerificationResult, bool, float]],
    report: EngineReport,
) -> None:
    """Windowed pool execution shared by both pool kinds.

    Cache lookups, cache stores, and pre-pass-decided tasks are handled
    in the parent — the cache's lock does not pickle, and a decided
    task needs no worker anyway.  Only undecided work crosses the pool
    boundary.
    """
    executor_cls = (
        concurrent.futures.ProcessPoolExecutor
        if pool == "process"
        else concurrent.futures.ThreadPoolExecutor
    )
    window = 2 * jobs
    pending = deque(tasks)
    in_flight: dict[
        concurrent.futures.Future, tuple[PlannedTask, CanonicalInstance | None]
    ] = {}
    violated = False
    with executor_cls(max_workers=min(jobs, len(tasks))) as executor:
        while (pending or in_flight) and not violated:
            while pending and len(in_flight) < window and not violated:
                task = pending.popleft()
                t0 = perf_counter()
                canon = _canon(task, cache)
                if canon is not None:
                    hit = cache.lookup(canon)
                    if hit is not None:
                        hit.address = task.address
                        outcomes[task.order] = (hit, True, perf_counter() - t0)
                        violated = early_exit and not hit.holds
                        continue
                if task.prepass is not None and task.prepass.decided is not None:
                    result, seconds = _decide_task(task)
                    _finalize(task, canon, result, cache)
                    outcomes[task.order] = (result, False, seconds)
                    violated = early_exit and not result.holds
                    continue
                in_flight[executor.submit(_decide_task, task)] = (task, canon)
            if violated or not in_flight:
                continue
            done, _running = concurrent.futures.wait(
                in_flight, return_when=concurrent.futures.FIRST_COMPLETED
            )
            for fut in done:
                task, canon = in_flight.pop(fut)
                result, seconds = fut.result()
                _finalize(task, canon, result, cache)
                outcomes[task.order] = (result, False, seconds)
                if early_exit and not result.holds:
                    violated = True
        if violated:
            # Cancel whatever has not started; count never-submitted
            # tasks too — both are work the early exit avoided.
            for fut in list(in_flight):
                if fut.cancel():
                    report.cancelled += 1
                    del in_flight[fut]
            report.cancelled += len(pending)
            # In-flight tasks finish during pool shutdown; harvest them
            # so their results are not silently discarded.
            for fut, (task, canon) in list(in_flight.items()):
                try:
                    result, seconds = fut.result()
                except concurrent.futures.CancelledError:
                    continue
                _finalize(task, canon, result, cache)
                outcomes[task.order] = (result, False, seconds)
