"""The classic litmus tests, with expected verdicts per model.

Each test is a tiny execution encoding a *candidate outcome* (the read
values encode what was observed); a model "allows" the test when some
model-consistent execution produces those values.  The expected
verdicts follow the standard tables (SPARC V9 manual, Adve & Gharachorloo's
tutorial):

=============  ====  ====  ====  ====
test            SC    TSO   PSO   RMO
=============  ====  ====  ====  ====
SB              ✗     ✓     ✓     ✓
SB+fwd          ✗     ✓     ✓     ✓
MP              ✗     ✗     ✓     ✓
LB              ✗     ✗     ✗     ✓
CoRR            ✗     ✗     ✗     ✗
CoWW            ✗     ✗     ✗     ✗
IRIW            ✗     ✗     ✗     ✓*
2+2W            ✗     ✗     ✓     ✓
WRC             ✗     ✗     ✗     ✓
S               ✗     ✗     ✓     ✓
R               ✗     ✓     ✓     ✓
CoWR            ✓     ✓     ✓     ✓
CoRW1           ✗     ✗     ✗     ✗
=============  ====  ====  ====  ====

(*) IRIW under RMO: our table-driven RMO has a single memory order, so
IRIW is allowed only through read reordering, which RMO's relaxed R→R
permits.  Checkers used per model: SC → exact VSC; TSO/PSO →
operational buffer search; RMO → the axiomatic table checker.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.types import Execution
from repro.core.builder import parse_trace
from repro.core.exact import exact_vsc
from repro.consistency.axiomatic import relaxed_schedule_exists
from repro.consistency.models import RMO
from repro.consistency.pso import pso_holds
from repro.consistency.tso import tso_holds


@dataclass(frozen=True)
class LitmusTest:
    """A named candidate outcome and which models allow it.

    ``final`` optionally constrains end-of-run memory (several classic
    shapes — 2+2W, S, R — are about final values, not read values).
    """

    name: str
    trace: str
    allowed: dict[str, bool]  # model name -> allowed?
    description: str = ""
    final: tuple = ()  # ((addr, value), ...) — hashable for frozen=True

    def execution(self) -> Execution:
        initial = {a: 0 for a in ("x", "y")}
        return parse_trace(
            self.trace, initial=initial, final=dict(self.final) or None
        )


LITMUS_TESTS: list[LitmusTest] = [
    LitmusTest(
        "SB",
        """
        P0: W(x,1) R(y,0)
        P1: W(y,1) R(x,0)
        """,
        {"SC": False, "TSO": True, "PSO": True, "RMO": True},
        "store buffering: both reads miss the other's store",
    ),
    LitmusTest(
        "SB+fwd",
        """
        P0: W(x,1) R(x,1) R(y,0)
        P1: W(y,1) R(y,1) R(x,0)
        """,
        {"SC": False, "TSO": True, "PSO": True, "RMO": True},
        "store buffering with own stores forwarded from the buffer",
    ),
    LitmusTest(
        "MP",
        """
        P0: W(x,1) W(y,1)
        P1: R(y,1) R(x,0)
        """,
        {"SC": False, "TSO": False, "PSO": True, "RMO": True},
        "message passing: flag seen but payload missed",
    ),
    LitmusTest(
        "LB",
        """
        P0: R(x,1) W(y,1)
        P1: R(y,1) W(x,1)
        """,
        {"SC": False, "TSO": False, "PSO": False, "RMO": True},
        "load buffering: each read sees the other's later store",
    ),
    LitmusTest(
        "CoRR",
        """
        P0: W(x,1)
        P1: R(x,1) R(x,0)
        """,
        {"SC": False, "TSO": False, "PSO": False, "RMO": False},
        "coherence read-read: new value then old value of one location",
    ),
    LitmusTest(
        "CoWW",
        """
        P0: W(x,1) W(x,2)
        P1: R(x,2) R(x,1)
        """,
        {"SC": False, "TSO": False, "PSO": False, "RMO": False},
        "coherence write-write: observers disagree with write order",
    ),
    LitmusTest(
        "IRIW",
        """
        P0: W(x,1)
        P1: W(y,1)
        P2: R(x,1) R(y,0)
        P3: R(y,1) R(x,0)
        """,
        {"SC": False, "TSO": False, "PSO": False, "RMO": True},
        "independent reads of independent writes in opposite orders",
    ),
    LitmusTest(
        "2+2W",
        """
        P0: W(x,1) W(y,2)
        P1: W(y,1) W(x,2)
        """,
        {"SC": False, "TSO": False, "PSO": True, "RMO": True},
        "write-write: final x==1 and y==1 (checked via final values)",
        final=(("x", 1), ("y", 1)),
    ),
    LitmusTest(
        "WRC",
        """
        P0: W(x,1)
        P1: R(x,1) W(y,1)
        P2: R(y,1) R(x,0)
        """,
        {"SC": False, "TSO": False, "PSO": False, "RMO": True},
        "write-to-read causality: P2 sees the flag but misses the "
        "payload; forbidden on every multi-copy-atomic model with "
        "in-order reads, admitted only once R->R relaxes",
    ),
    LitmusTest(
        "S",
        """
        P0: W(x,2) W(y,1)
        P1: R(y,1) W(x,1)
        """,
        {"SC": False, "TSO": False, "PSO": True, "RMO": True},
        "the S shape: final x must be 2 while P1's write lands between",
        final=(("x", 2),),
    ),
    LitmusTest(
        "R",
        """
        P0: W(x,1) W(y,1)
        P1: W(y,2) R(x,0)
        """,
        {"SC": False, "TSO": True, "PSO": True, "RMO": True},
        "the R shape: W->R relaxation on P1 suffices",
        final=(("y", 2),),
    ),
    LitmusTest(
        "CoWR",
        """
        P0: W(x,1) R(x,2)
        P1: W(x,2)
        """,
        {"SC": True, "TSO": True, "PSO": True, "RMO": True},
        "read from another write after own write: allowed when P1's "
        "write intervenes",
    ),
    LitmusTest(
        "CoRW1",
        """
        P0: R(x,1) W(x,1)
        """,
        {"SC": False, "TSO": False, "PSO": False, "RMO": False},
        "a read cannot observe the program-order-later write it "
        "precedes (same location)",
    ),
]


def _execution_for(test: LitmusTest) -> Execution:
    return test.execution()


_CHECKERS: dict[str, Callable[[Execution], object]] = {
    "SC": lambda ex: exact_vsc(ex),
    "TSO": lambda ex: tso_holds(ex),
    "PSO": lambda ex: pso_holds(ex),
    "RMO": lambda ex: relaxed_schedule_exists(ex, RMO),
}


def check_litmus(test: LitmusTest, model: str) -> bool:
    """Run ``model``'s checker on ``test``; True = outcome allowed."""
    if model not in _CHECKERS:
        raise ValueError(f"no checker wired for model {model!r}")
    return bool(_CHECKERS[model](_execution_for(test)))


def litmus_table() -> str:
    """The observed allow/forbid table, for the examples and benches."""
    models = ["SC", "TSO", "PSO", "RMO"]
    lines = [f"{'test':>8}  " + "  ".join(f"{m:>4}" for m in models)]
    for t in LITMUS_TESTS:
        row = [f"{t.name:>8}"]
        for m in models:
            allowed = check_litmus(t, m)
            row.append(f"{'yes' if allowed else 'no':>4}")
        lines.append("  ".join(row))
    return "\n".join(lines)
