"""Section 6.2's restriction theorem, as a checkable property.

"All of the hardware-implemented memory consistency models in the
literature reduce to memory coherence for executions that access only
one shared location."  For the models in this library that is a
theorem about the checkers: on a single-address execution, each model
checker must return exactly the coherence verdict, because

* every model keeps same-location program order, and
* every model serializes writes per location,

so with one location the model's constraints collapse to "a serial
order of all operations, respecting program order, where reads see the
last write" — the definition of a coherent schedule (with the wrinkle
that TSO/PSO forwarding lets a read observe the processor's own not-
yet-ordered store; on a single location FIFO draining makes the
observable histories coincide with coherent ones).

The function here is used by property tests and by the Figure 5.3/6.x
benchmark harness to certify the reduction hook NP-hardness rides on.
"""

from __future__ import annotations

from typing import Callable

from repro.core.result import VerificationResult
from repro.core.types import Execution
from repro.core.vmc import verify_coherence
from repro.consistency.axiomatic import relaxed_schedule_exists
from repro.consistency.models import MODELS, MemoryModel
from repro.consistency.tso import tso_holds
from repro.consistency.pso import pso_holds


def verifier_for(model_name: str) -> Callable[[Execution], VerificationResult]:
    """The strongest *result-returning* checker for each model.

    Every returned callable produces a
    :class:`~repro.core.result.VerificationResult`, so callers (the CLI
    in particular) can print witnesses and methods uniformly.
    ``"coherence"`` routes through the unified engine like the plain
    ``verify`` path.
    """
    if model_name in ("coherence", "COHERENCE"):
        from repro.engine import verify_vmc

        return verify_vmc
    if model_name == "SC":
        from repro.core.vsc import verify_sequential_consistency

        return verify_sequential_consistency
    if model_name == "TSO":
        return tso_holds
    if model_name == "PSO":
        return pso_holds
    if model_name in MODELS:
        model: MemoryModel = MODELS[model_name]
        return lambda ex: relaxed_schedule_exists(ex, model)
    raise ValueError(f"unknown model {model_name!r}")


def checker_for(model_name: str) -> Callable[[Execution], bool]:
    """The boolean form of :func:`verifier_for`."""
    verifier = verifier_for(model_name)
    return lambda ex: bool(verifier(ex))


def restriction_agrees_with_coherence(
    execution: Execution, model_name: str
) -> tuple[bool, bool]:
    """Return (model verdict, coherence verdict) for a single-address
    execution; the Section 6.2 claim is that they are equal."""
    if not execution.is_single_address():
        raise ValueError("the restriction argument is about one location")
    model_ok = checker_for(model_name)(execution)
    coh_ok = bool(verify_coherence(execution))
    return model_ok, coh_ok
