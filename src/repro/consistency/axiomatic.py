"""The generic (table-driven) relaxed-consistency checker.

Searches for a *memory order* — one total order of all operations in
which every read returns the latest same-address write — that respects
only the program-order pairs the model enforces, plus same-address
program order (all hardware models keep that; it is the coherence
component).

States are (per-process issued-sets, memory contents); because relaxed
models let operations issue out of program order, the per-process state
is a set rather than a prefix and the search is exponential in the
per-process operation count.  That is fine for its purpose — litmus
tests and small traces; for SC specifically prefer
:func:`repro.core.exact.exact_vsc`, whose prefix states are linear.

No store forwarding is modelled here: a read sees only globally
performed writes.  The operational TSO/PSO checkers model forwarding;
litmus tests pin the cases where the two disagree.
"""

from __future__ import annotations

from repro.core.types import Execution, OpKind, Operation
from repro.core.result import VerificationResult
from repro.consistency.models import MemoryModel


def relaxed_schedule_exists(
    execution: Execution,
    model: MemoryModel,
    max_states: int | None = 2_000_000,
) -> VerificationResult:
    """Does a model-respecting memory order exist for the execution?"""
    histories = [h.operations for h in execution.histories]
    k = len(histories)
    addr_list = execution.constrained_addresses()
    addr_idx = {a: i for i, a in enumerate(addr_list)}
    initial = tuple(execution.initial_value(a) for a in addr_list)
    final_req = [execution.final_value(a) for a in addr_list]
    total = sum(len(h) for h in histories)

    # Precompute, per op, the set of po-predecessors that must issue
    # first (enforced kind pair, same address, or sync fences).
    blockers: list[list[list[int]]] = []
    for h in histories:
        per_op: list[list[int]] = []
        for i, op in enumerate(h):
            need = [
                j
                for j in range(i)
                if h[j].addr == op.addr
                or model.enforces(h[j].kind, op.kind)
            ]
            per_op.append(need)
        blockers.append(per_op)

    start = (tuple(frozenset() for _ in range(k)), initial)
    visited = {start}
    stack = [(start, list(_enabled(start, histories, blockers)))]
    trail: list[Operation] = []
    states = 0

    def final_ok(values) -> bool:
        return all(r is None or values[i] == r for i, r in enumerate(final_req))

    if total == 0:
        ok = final_ok(initial)
        return VerificationResult(
            holds=ok, method=f"axiomatic-{model.name}", schedule=[] if ok else None
        )

    while stack:
        (issued, values), options = stack[-1]
        if len(trail) == total:
            if final_ok(values):
                return VerificationResult(
                    holds=True,
                    method=f"axiomatic-{model.name}",
                    schedule=list(trail),
                    stats={"states": states},
                )
            stack.pop()
            if trail:
                trail.pop()
            continue
        progressed = False
        while options:
            p, i = options.pop()
            op = histories[p][i]
            new_values = values
            if not op.kind.is_sync:
                ai = addr_idx[op.addr]
                if op.kind.reads and op.value_read != values[ai]:
                    continue
                if op.kind.writes:
                    new_values = (
                        values[:ai] + (op.value_written,) + values[ai + 1 :]
                    )
            new_issued = tuple(
                s | {i} if q == p else s for q, s in enumerate(issued)
            )
            state = (new_issued, new_values)
            if state in visited:
                continue
            visited.add(state)
            states += 1
            if max_states is not None and states > max_states:
                raise RuntimeError(
                    f"axiomatic search exceeded {max_states} states"
                )
            stack.append((state, list(_enabled(state, histories, blockers))))
            trail.append(op)
            progressed = True
            break
        if not progressed and stack and not stack[-1][1]:
            stack.pop()
            if trail:
                trail.pop()

    return VerificationResult(
        holds=False,
        method=f"axiomatic-{model.name}",
        reason=f"no {model.name}-consistent memory order exists",
        stats={"states": states},
    )


def _enabled(state, histories, blockers):
    issued_sets, _ = state
    for p, h in enumerate(histories):
        issued = issued_sets[p]
        for i in range(len(h)):
            if i in issued:
                continue
            if all(j in issued for j in blockers[p][i]):
                yield (p, i)
