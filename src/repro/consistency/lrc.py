"""Lazy Release Consistency on properly-locked traces (Figure 6.1).

LRC makes a writer's updates visible to the *next acquirer* of the same
lock.  For a trace in which **every** data operation sits in its own
acquire/release section of one global lock — the Figure 6.1 wrapping —
the critical sections must appear atomic and totally ordered by the
lock, with each section seeing the updates of all earlier sections.
That total order is exactly a legal schedule of the data operations:

* single shared location  → LRC-adherence ≡ VMC of the stripped trace;
* multiple locations      → LRC-adherence ≡ VSC of the stripped trace.

So the checker is one strip away from the coherence/SC verifiers, which
is precisely the paper's point: models that relax coherence become
NP-Hard to verify the moment the programmer uses the synchronization
the model provides.
"""

from __future__ import annotations

from repro.core.types import Address, Execution, OpKind
from repro.core.result import VerificationResult
from repro.core.vmc import verify_coherence
from repro.core.vsc import verify_sequential_consistency
from repro.reductions.sync_wrap import critical_sections


def lrc_holds(
    execution: Execution, lock: Address = "lock", method: str = "auto"
) -> VerificationResult:
    """Decide LRC-adherence of a fully-locked execution.

    Requires every data operation to be inside an acquire/release
    section of ``lock`` (the Figure 6.1 shape) — checked up front; a
    trace with unlocked data accesses raises ``ValueError`` because its
    LRC verdict would depend on data-race semantics this checker does
    not model.
    """
    sections = critical_sections(execution, lock)
    locked_ops = sum(len(s) for s in sections)
    data_ops = sum(
        1 for op in execution.all_ops() if not op.kind.is_sync
    )
    if locked_ops != data_ops:
        raise ValueError(
            f"{data_ops - locked_ops} data operations are outside "
            f"critical sections of {lock!r}; this checker requires the "
            f"fully-locked Figure 6.1 shape"
        )
    stripped = execution.drop_sync_ops()
    if stripped.is_single_address():
        result = verify_coherence(stripped, method=method)
    else:
        result = verify_sequential_consistency(stripped, method=method)
    result.method = f"lrc/{result.method}"
    return result
