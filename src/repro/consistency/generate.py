"""Outcome enumeration: classify *every* candidate result of a program.

Litmus tools (herd, diy) take a small concurrent program and list which
final outcomes each memory model admits.  This module does the same on
top of the library's checkers:

* a *program skeleton* is an execution whose reads carry the
  placeholder :data:`UNKNOWN` instead of observed values;
* :func:`enumerate_outcomes` instantiates every assignment of candidate
  values to the unknown reads (values written to that address plus its
  initial value) and classifies each candidate execution under the
  requested models;
* :func:`outcome_table` renders the classic allowed/forbidden matrix.

This is exponential in the number of reads — litmus-sized programs
only, like the tools it mirrors.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.consistency.restrict import checker_for
from repro.core.types import Execution, OpKind, Operation

#: Placeholder read value in program skeletons.
UNKNOWN = ("?",)


def skeleton(text: str, initial: dict | None = None) -> Execution:
    """Parse a program skeleton: the trace format with ``R(addr,?)``
    reads.  (Plain values are allowed too and stay fixed.)"""
    from repro.core.builder import parse_trace

    normalized = text.replace("?)", "'?')").replace("'?'", "__unknown__")
    ex = parse_trace(normalized, initial=initial)
    histories = []
    for h in ex.histories:
        ops = []
        for op in h:
            if op.kind is OpKind.READ and op.value_read == "__unknown__":
                ops.append(
                    Operation(
                        OpKind.READ, op.addr, op.proc, op.index,
                        value_read=UNKNOWN,
                    )
                )
            else:
                ops.append(op)
        histories.append(ops)
    return Execution.from_ops(histories, initial=ex.initial, final=ex.final)


@dataclass(frozen=True)
class Outcome:
    """One candidate result: read uid -> observed value, plus verdicts."""

    reads: tuple  # ((proc, index, addr, value), ...)
    verdicts: tuple  # ((model, allowed), ...)

    def value_of(self, proc: int, index: int):
        for p, i, _, v in self.reads:
            if (p, i) == (proc, index):
                return v
        raise KeyError((proc, index))

    def allowed_under(self, model: str) -> bool:
        for m, ok in self.verdicts:
            if m == model:
                return ok
        raise KeyError(model)

    def label(self) -> str:
        return " ".join(f"P{p}:r{i}({a})={v}" for p, i, a, v in self.reads)


def _candidate_values(execution: Execution, addr) -> list:
    values = [execution.initial_value(addr)]
    for op in execution.all_ops():
        if op.kind.writes and op.addr == addr and op.value_written not in values:
            values.append(op.value_written)
    return values


def _instantiations(program: Execution, max_outcomes: int):
    """Yield ``(assignment, execution)`` for every candidate result.

    ``assignment`` maps each unknown read's uid to the value it
    observes in the candidate execution.
    """
    unknown_reads = [
        op
        for op in program.all_ops()
        if op.kind is OpKind.READ and op.value_read == UNKNOWN
    ]
    candidates = [_candidate_values(program, op.addr) for op in unknown_reads]
    total = 1
    for c in candidates:
        total *= len(c)
    if total > max_outcomes:
        raise ValueError(
            f"{total} candidate outcomes exceed the cap ({max_outcomes})"
        )
    for combo in itertools.product(*candidates):
        histories = [list(h.operations) for h in program.histories]
        assignment = dict(zip((op.uid for op in unknown_reads), combo))
        for p, h in enumerate(histories):
            for i, op in enumerate(h):
                if op.uid in assignment:
                    histories[p][i] = Operation(
                        OpKind.READ, op.addr, op.proc, op.index,
                        value_read=assignment[op.uid],
                    )
        yield assignment, Execution.from_ops(
            histories, initial=program.initial, final=program.final
        )


def candidate_executions(
    program: Execution, max_outcomes: int = 4096
) -> list[Execution]:
    """Every candidate execution of a skeleton (unknown reads replaced
    by each possible observed value).  The candidates cover coherent
    and incoherent results alike, which makes them a natural corpus
    for differential backend testing."""
    return [ex for _, ex in _instantiations(program, max_outcomes)]


def enumerate_outcomes(
    program: Execution,
    models: list[str] = ("SC", "TSO", "PSO", "RMO"),
    max_outcomes: int = 4096,
) -> list[Outcome]:
    """Instantiate and classify every candidate outcome of a skeleton."""
    unknown_reads = [
        op
        for op in program.all_ops()
        if op.kind is OpKind.READ and op.value_read == UNKNOWN
    ]
    checkers = {m: checker_for(m) for m in models}
    outcomes: list[Outcome] = []
    for assignment, candidate in _instantiations(program, max_outcomes):
        verdicts = tuple(
            (m, bool(checkers[m](candidate))) for m in models
        )
        reads = tuple(
            (op.proc, op.index, op.addr, assignment[op.uid])
            for op in unknown_reads
        )
        outcomes.append(Outcome(reads=reads, verdicts=verdicts))
    return outcomes


def outcome_table(
    program: Execution, models: list[str] = ("SC", "TSO", "PSO", "RMO")
) -> str:
    """The classic per-outcome allowed/forbidden matrix."""
    outcomes = enumerate_outcomes(program, models=models)
    width = max((len(o.label()) for o in outcomes), default=10)
    lines = [
        f"{'outcome':<{width}}  " + "  ".join(f"{m:>4}" for m in models)
    ]
    for o in outcomes:
        row = [f"{o.label():<{width}}"]
        for m in models:
            row.append(f"{'yes' if o.allowed_under(m) else 'no':>4}")
        lines.append("  ".join(row))
    return "\n".join(lines)
