"""Operational PSO checker.

SPARC partial store order: like TSO but the store buffer is FIFO only
*per address* — stores to different addresses may drain in either
order, which is exactly the relaxation that makes the MP litmus test
observable.  Implementation shares the engine in
:mod:`repro.consistency.tso` with per-address drain candidates.
"""

from __future__ import annotations

from repro.core.types import Execution
from repro.core.result import VerificationResult
from repro.consistency.tso import _buffered_search


def pso_holds(
    execution: Execution, max_states: int | None = 2_000_000
) -> VerificationResult:
    """Decide PSO-consistency of an execution by exhaustive search."""
    return _buffered_search(
        execution, per_address=True, name="PSO", max_states=max_states
    )
