"""Operational TSO checker: exhaustive store-buffer simulation.

SPARC/x86 total store order, modelled operationally:

* each processor owns a FIFO store buffer;
* a store enters the buffer; the buffer head may drain to memory at any
  time (a nondeterministic "flush" action);
* a load first forwards from the youngest same-address entry of its own
  buffer, else reads memory;
* an atomic RMW and any sync operation require the issuing processor's
  buffer to be empty (they drain it), and act on memory directly.

An execution is TSO-consistent iff some interleaving of
issue/drain actions reproduces every recorded read value (and the final
memory values, if the execution constrains them).  The checker explores
all interleavings with memoization — exact, intended for litmus-scale
traces (state count grows with buffer contents × positions).
"""

from __future__ import annotations

from repro.core.types import Execution, OpKind
from repro.core.result import VerificationResult


def tso_holds(
    execution: Execution, max_states: int | None = 2_000_000
) -> VerificationResult:
    """Decide TSO-consistency of an execution by exhaustive search."""
    return _buffered_search(execution, per_address=False, name="TSO", max_states=max_states)


def _buffered_search(
    execution: Execution,
    per_address: bool,
    name: str,
    max_states: int | None,
) -> VerificationResult:
    """Shared engine for TSO (one FIFO) and PSO (FIFO per address)."""
    histories = [h.operations for h in execution.histories]
    k = len(histories)
    addr_list = execution.constrained_addresses()
    addr_idx = {a: i for i, a in enumerate(addr_list)}
    initial = tuple(execution.initial_value(a) for a in addr_list)
    final_req = [execution.final_value(a) for a in addr_list]
    total = sum(len(h) for h in histories)

    # State: (pcs, buffers, memory).
    #  TSO buffer: tuple of (addr_index, value) oldest-first.
    #  PSO buffer: same representation; FIFO discipline applies per
    #  address, so any entry whose address has no older entry may drain.
    start = (tuple([0] * k), tuple(() for _ in range(k)), initial)
    visited = {start}
    states = 0

    def final_ok(memory) -> bool:
        return all(r is None or memory[i] == r for i, r in enumerate(final_req))

    def forwarded(buffer, ai):
        for a, v in reversed(buffer):
            if a == ai:
                return (v,)
        return None

    def drain_candidates(buffer):
        """Indices of buffer entries allowed to drain next."""
        if not buffer:
            return []
        if not per_address:
            return [0]
        seen: set[int] = set()
        out = []
        for idx, (a, _) in enumerate(buffer):
            if a not in seen:
                out.append(idx)
                seen.add(a)
        return out

    stack = [start]
    while stack:
        state = stack.pop()
        pcs, buffers, memory = state
        if all(pcs[p] == len(histories[p]) for p in range(k)) and all(
            not b for b in buffers
        ):
            if final_ok(memory):
                return VerificationResult(
                    holds=True, method=f"operational-{name}",
                    stats={"states": states},
                )
            continue
        successors = []
        # Issue actions.
        for p in range(k):
            if pcs[p] >= len(histories[p]):
                continue
            op = histories[p][pcs[p]]
            new_pcs = pcs[:p] + (pcs[p] + 1,) + pcs[p + 1 :]
            if op.kind is OpKind.WRITE:
                ai = addr_idx[op.addr]
                nb = buffers[p] + ((ai, op.value_written),)
                successors.append((new_pcs, _set(buffers, p, nb), memory))
            elif op.kind is OpKind.READ:
                ai = addr_idx[op.addr]
                fwd = forwarded(buffers[p], ai)
                value = fwd[0] if fwd is not None else memory[ai]
                if value == op.value_read:
                    successors.append((new_pcs, buffers, memory))
            elif op.kind is OpKind.RMW:
                if buffers[p]:
                    continue  # atomics drain the buffer first
                ai = addr_idx[op.addr]
                if memory[ai] == op.value_read:
                    nm = memory[:ai] + (op.value_written,) + memory[ai + 1 :]
                    successors.append((new_pcs, buffers, nm))
            else:  # sync ops fence the buffer
                if not buffers[p]:
                    successors.append((new_pcs, buffers, memory))
        # Drain actions.
        for p in range(k):
            for idx in drain_candidates(buffers[p]):
                ai, v = buffers[p][idx]
                nb = buffers[p][:idx] + buffers[p][idx + 1 :]
                nm = memory[:ai] + (v,) + memory[ai + 1 :]
                successors.append((pcs, _set(buffers, p, nb), nm))
        for s in successors:
            if s not in visited:
                visited.add(s)
                states += 1
                if max_states is not None and states > max_states:
                    raise RuntimeError(
                        f"{name} search exceeded {max_states} states"
                    )
                stack.append(s)

    return VerificationResult(
        holds=False,
        method=f"operational-{name}",
        reason=f"no {name} execution (buffer interleaving) reproduces the trace",
        stats={"states": states},
    )


def _set(buffers, p, nb):
    return buffers[:p] + (nb,) + buffers[p + 1 :]
