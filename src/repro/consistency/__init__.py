"""Memory consistency models and their trace checkers.

Section 6.2's argument is that every hardware consistency model either
(a) reduces to coherence on single-location executions, or (b) provides
synchronization primitives that force such a reduction.  This
subpackage makes the argument executable:

* :mod:`repro.consistency.models` — the model zoo (SC, TSO, PSO, RMO,
  PC, …) as ordering-requirement tables;
* :mod:`repro.consistency.axiomatic` — a generic checker: does a memory
  order exist that respects the model's enforced program-order pairs?
  (No store forwarding — the conservative axiomatic core.)
* :mod:`repro.consistency.tso` / :mod:`repro.consistency.pso` —
  *operational* checkers with real store buffers and forwarding,
  exhaustively exploring drain interleavings (exact for litmus-scale
  traces);
* :mod:`repro.consistency.lrc` — Lazy Release Consistency on
  properly-locked traces, the Figure 6.1 target;
* :mod:`repro.consistency.litmus` — the classic litmus tests (SB, MP,
  LB, CoRR, IRIW, …) with expected verdicts per model;
* :mod:`repro.consistency.restrict` — the Section 6.2 restriction
  theorem as a testable property: on one location, every model's
  checker agrees with the coherence verifier.
"""

from repro.consistency.models import (
    MODELS,
    COHERENCE_ONLY,
    PC,
    PSO_MODEL,
    RMO,
    SC,
    TSO_MODEL,
    MemoryModel,
)
from repro.consistency.axiomatic import relaxed_schedule_exists
from repro.consistency.tso import tso_holds
from repro.consistency.pso import pso_holds
from repro.consistency.lrc import lrc_holds
from repro.consistency.litmus import LITMUS_TESTS, LitmusTest, check_litmus
from repro.consistency.generate import enumerate_outcomes, outcome_table, skeleton
from repro.consistency.hierarchy import strength_chain, table_at_least_as_strong

__all__ = [
    "MemoryModel",
    "MODELS",
    "SC",
    "TSO_MODEL",
    "PSO_MODEL",
    "RMO",
    "PC",
    "COHERENCE_ONLY",
    "relaxed_schedule_exists",
    "tso_holds",
    "pso_holds",
    "lrc_holds",
    "LITMUS_TESTS",
    "LitmusTest",
    "check_litmus",
    "enumerate_outcomes",
    "outcome_table",
    "skeleton",
    "strength_chain",
    "table_at_least_as_strong",
]
