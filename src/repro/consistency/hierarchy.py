"""The strength partial order over consistency models.

A model A is *at least as strong as* B when every ordering requirement
of B is also required by A — then every A-consistent execution is
B-consistent.  Section 6.2's hardness transfer rides on the bottom of
this order: every model here sits above per-location coherence.

Two views are provided:

* :func:`table_at_least_as_strong` — the syntactic check on the
  ordering tables (sound for the axiomatic checkers);
* :func:`observed_hierarchy` — the empirical check: across a set of
  executions, the stronger model's "allowed" set must be a subset of
  the weaker's, using the library's best checker per model.  Tests run
  this over the litmus suite and random traces.
"""

from __future__ import annotations

from repro.consistency.models import MODELS, MemoryModel
from repro.core.types import Execution, OpKind

_PAIRS = [
    (OpKind.READ, OpKind.READ),
    (OpKind.READ, OpKind.WRITE),
    (OpKind.WRITE, OpKind.READ),
    (OpKind.WRITE, OpKind.WRITE),
]


def table_at_least_as_strong(a: MemoryModel, b: MemoryModel) -> bool:
    """True when A's table enforces a superset of B's orderings."""
    return all(
        a.enforces(x, y) or not b.enforces(x, y) for x, y in _PAIRS
    )


def strength_chain() -> list[str]:
    """The canonical SC ≥ TSO ≥ PSO ≥ RMO ≥ coherence chain, validated
    against the tables (raises if the registry ever breaks it)."""
    chain = ["SC", "TSO", "PSO", "RMO", "coherence"]
    for stronger, weaker in zip(chain, chain[1:]):
        if not table_at_least_as_strong(MODELS[stronger], MODELS[weaker]):
            raise AssertionError(
                f"model registry broken: {stronger} is not at least as "
                f"strong as {weaker}"
            )
    return chain


def observed_hierarchy(
    executions: list[Execution],
    stronger: str,
    weaker: str,
) -> tuple[int, list[Execution]]:
    """Check allowed(stronger) ⊆ allowed(weaker) over ``executions``.

    Returns ``(checked, violations)`` where violations are executions
    the stronger model allows but the weaker rejects (must be empty for
    a correct checker pair).
    """
    from repro.consistency.restrict import checker_for

    check_strong = checker_for(stronger)
    check_weak = checker_for(weaker)
    violations: list[Execution] = []
    for ex in executions:
        if check_strong(ex) and not check_weak(ex):
            violations.append(ex)
    return len(executions), violations
