"""The consistency-model zoo as ordering-requirement tables.

A hardware memory model is characterised (to first order — the level
Section 6.2 argues at) by which program-order pairs it keeps between
operations to *different* locations:

=======  =====  =====  =====  =====
model     R→R    R→W    W→R    W→W
=======  =====  =====  =====  =====
SC         ✓      ✓      ✓      ✓
TSO        ✓      ✓      ✗      ✓
PC         ✓      ✓      ✗      ✓
PSO        ✓      ✓      ✗      ✗
RMO        ✗      ✗      ✗      ✗
coherence  ✗      ✗      ✗      ✗
=======  =====  =====  =====  =====

Every model here keeps *same-location* program order and per-location
write serialization — that is precisely why restricting any of them to
one shared location yields memory coherence (the ``restrict`` module
tests this), which is the hook for the paper's NP-hardness transfer.

``PC`` (processor consistency) additionally relaxes store atomicity,
and ``TSO`` allows forwarding; the table-driven axiomatic checker is
conservative about both, while the operational checkers in
:mod:`repro.consistency.tso`/:mod:`repro.consistency.pso` model
buffers and forwarding exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.types import OpKind


@dataclass(frozen=True)
class MemoryModel:
    """Ordering-requirement table for one consistency model."""

    name: str
    order_rr: bool
    order_rw: bool
    order_wr: bool
    order_ww: bool
    store_forwarding: bool = False
    description: str = ""

    def enforces(self, first: OpKind, second: OpKind) -> bool:
        """Whether program order ``first ; second`` (different
        locations) must be respected by the memory order.

        An RMW has both a read and a write component, so it is ordered
        if *any* applicable component pair is ordered.  Sync operations
        (acquire/release) act as full fences.
        """
        if first.is_sync or second.is_sync:
            return True
        first_kinds = self._components(first)
        second_kinds = self._components(second)
        table = {
            (OpKind.READ, OpKind.READ): self.order_rr,
            (OpKind.READ, OpKind.WRITE): self.order_rw,
            (OpKind.WRITE, OpKind.READ): self.order_wr,
            (OpKind.WRITE, OpKind.WRITE): self.order_ww,
        }
        return any(table[(a, b)] for a in first_kinds for b in second_kinds)

    @staticmethod
    def _components(kind: OpKind) -> list[OpKind]:
        if kind is OpKind.RMW:
            return [OpKind.READ, OpKind.WRITE]
        return [kind]


SC = MemoryModel(
    "SC",
    order_rr=True,
    order_rw=True,
    order_wr=True,
    order_ww=True,
    description="Lamport sequential consistency: all program order kept",
)

TSO_MODEL = MemoryModel(
    "TSO",
    order_rr=True,
    order_rw=True,
    order_wr=False,
    order_ww=True,
    store_forwarding=True,
    description="SPARC/x86 total store order: W->R relaxed, FIFO store buffer",
)

PC = MemoryModel(
    "PC",
    order_rr=True,
    order_rw=True,
    order_wr=False,
    order_ww=True,
    description="Processor consistency: like TSO but without store atomicity",
)

PSO_MODEL = MemoryModel(
    "PSO",
    order_rr=True,
    order_rw=True,
    order_wr=False,
    order_ww=False,
    store_forwarding=True,
    description="SPARC partial store order: per-address store buffers",
)

RMO = MemoryModel(
    "RMO",
    order_rr=False,
    order_rw=False,
    order_wr=False,
    order_ww=False,
    description="Relaxed memory order: only same-address order and fences",
)

COHERENCE_ONLY = MemoryModel(
    "coherence",
    order_rr=False,
    order_rw=False,
    order_wr=False,
    order_ww=False,
    description="Per-location serialization only (the VMC property)",
)

MODELS: dict[str, MemoryModel] = {
    m.name: m for m in (SC, TSO_MODEL, PC, PSO_MODEL, RMO, COHERENCE_ONLY)
}
