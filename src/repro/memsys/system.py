"""The multiprocessor: cache controllers + snooping + scheduling.

The timing model is deliberately simple — one memory operation runs to
completion per step over an atomic bus — because the *verifiers* are
the subject of study: what matters is that fault-free runs are
sequentially consistent by construction, that the bus log yields the
per-address write-order, and that protocol faults produce precisely the
kinds of incoherent histories the paper wants to detect.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.types import INITIAL
from repro.memsys.bus import Bus
from repro.memsys.cache import Cache, CacheLine
from repro.memsys.faults import FaultConfig, FaultInjector, FaultKind
from repro.memsys.memory import MainMemory
from repro.memsys.processor import Processor, ScriptKind, ScriptOp
from repro.memsys.protocol import BusOp, LineState, make_protocol
from repro.memsys.recorder import Recorder, RunResult
from repro.util.rng import make_rng


@dataclass
class SystemConfig:
    """Geometry and policy knobs for a simulated multiprocessor."""

    num_processors: int = 2
    protocol: str = "MESI"
    num_sets: int = 8
    ways: int = 2
    line_words: int = 4
    scheduler: str = "random"  # "random" | "round-robin"
    seed: int | None = 0
    # Directory-substrate knobs (ignored by the bus system):
    num_homes: int = 2
    delay_model: str = "fixed:1"  # see interconnect.make_delay_model


class MultiprocessorSystem:
    """A bus-based SMP executing one script per processor."""

    def __init__(
        self,
        config: SystemConfig,
        scripts: list[list[ScriptOp]],
        initial_memory: dict[int, object] | None = None,
        faults: FaultConfig | None = None,
        monitor=None,
    ):
        if len(scripts) != config.num_processors:
            raise ValueError(
                f"{config.num_processors} processors but {len(scripts)} scripts"
            )
        self.config = config
        self.protocol = make_protocol(config.protocol)
        self.memory = MainMemory(initial_memory)
        self.bus = Bus()
        self.caches = [
            Cache(config.num_sets, config.ways, config.line_words)
            for _ in range(config.num_processors)
        ]
        self.processors = [Processor(i, s) for i, s in enumerate(scripts)]
        self.injector = FaultInjector(faults or FaultConfig.none())
        #: Optional live monitor (a
        #: :class:`repro.engine.streaming.StreamingVerifier`): every
        #: architectural operation is fed to it at commit time, so
        #: value corruptions are flagged *during* the run instead of by
        #: a post-hoc verification pass.  Check ``monitor.tripped``
        #: (or the returned verdicts via ``monitor.heartbeat``) after
        #: :meth:`run`.
        self.monitor = monitor
        self.recorder = Recorder(
            config.num_processors,
            observer=monitor.feed_op if monitor is not None else None,
            initial=initial_memory,
        )
        if monitor is not None and initial_memory:
            monitor.set_initial(dict(initial_memory))
        self.rng = make_rng(config.seed)
        self.steps = 0
        self._initial_snapshot = dict(initial_memory or {})
        self._rr_next = 0

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def _pick_processor(self) -> Processor | None:
        ready = [p for p in self.processors if not p.done]
        if not ready:
            return None
        if self.config.scheduler == "round-robin":
            for _ in range(len(self.processors)):
                p = self.processors[self._rr_next % len(self.processors)]
                self._rr_next += 1
                if not p.done:
                    return p
            return None
        return self.rng.choice(ready)

    def step(self) -> bool:
        """Execute one operation on one processor; False when all done."""
        proc = self._pick_processor()
        if proc is None:
            return False
        self.steps += 1
        op = proc.current()
        if op.kind is ScriptKind.LOAD:
            self._do_load(proc.proc_id, op.addr)
        elif op.kind is ScriptKind.STORE:
            self._do_store(proc.proc_id, op.addr, op.value)
        else:
            self._do_rmw(proc.proc_id, op.addr, op.value, op.expect)
        proc.advance()
        return True

    def run(self, max_steps: int | None = None) -> RunResult:
        """Run every script to completion and package the results."""
        while self.step():
            if max_steps is not None and self.steps >= max_steps:
                break
        final = self._final_values()
        self.recorder.check_final(final, self.steps)
        execution = self.recorder.build_execution(
            initial=self._initial_snapshot, final=final
        )
        from repro.memsys.faults import corrupt_write_orders

        write_orders = corrupt_write_orders(
            self.recorder.write_orders, self.injector, self.steps
        )
        result = RunResult(
            execution=execution,
            write_orders=write_orders,
            steps=self.steps,
            bus_transactions=self.bus.num_transactions,
            bus_traffic=self.bus.traffic_summary(),
            fault_events=list(self.injector.events),
            cache_stats=[vars(c.stats) for c in self.caches],
            commit_log=list(self.recorder.commit_log),
            divergences=list(self.recorder.divergences),
        )
        from repro.memsys.oracle import classify_run

        result.oracle = classify_run(result, line_words=self.config.line_words)
        return result

    # ------------------------------------------------------------------
    # Cache controller actions
    # ------------------------------------------------------------------
    def _line_base(self, addr: int) -> int:
        return (addr // self.config.line_words) * self.config.line_words

    def _evict_if_needed(self, proc: int, addr: int) -> None:
        """Make room for a fill of ``addr``, writing back dirty victims."""
        cache = self.caches[proc]
        victim = cache.victim_for(addr)
        if victim.valid and victim.state.dirty:
            base = cache.base_addr(cache.set_index(addr), victim.tag)
            self.memory.write_line(base, victim.data)
            cache.stats.writebacks += 1
            self.bus.record(BusOp.WRITEBACK, proc, base, base)
        victim.state = LineState.INVALID
        victim.data = {}
        victim.tag = -1

    def _snoop_others(
        self, requester: int, addr: int, op: BusOp
    ) -> tuple[dict[int, object] | None, int | None, bool]:
        """Let all other caches react to a transaction.

        Returns (supplied line data or None, supplier id or None,
        whether any other cache retains a valid copy afterwards).
        """
        base = self._line_base(addr)
        supplied: dict[int, object] | None = None
        supplier: int | None = None
        others_retain = False
        for q, cache in enumerate(self.caches):
            if q == requester:
                continue
            line = cache.peek(addr)
            if line is None:
                continue
            action = self.protocol.snoop(line.state, op)
            if action.supply_data and supplied is None:
                if self.injector.fire(
                    FaultKind.STALE_MEMORY,
                    self.steps,
                    q,
                    addr,
                    detail=f"lost intervention on {op.value}",
                ):
                    # The dirty holder fails to respond: memory (stale)
                    # will serve the request, and the holder's state is
                    # left unchanged.
                    others_retain = others_retain or line.state.readable
                    continue
                supplied = dict(line.data)
                supplier = q
                # Intervention also updates memory (write-back on snoop).
                self.memory.write_line(base, line.data)
                cache.stats.interventions += 1
            if action.next_state is not line.state:
                if action.next_state is LineState.INVALID and self.injector.fire(
                    FaultKind.LOST_INVALIDATION,
                    self.steps,
                    q,
                    addr,
                    detail=f"ignored {op.value}",
                ):
                    # The snooper keeps its (now stale) copy.
                    others_retain = True
                    continue
                if action.next_state is LineState.INVALID:
                    cache.stats.invalidations_received += 1
                line.state = action.next_state
            others_retain = others_retain or line.state.readable
        return supplied, supplier, others_retain

    def _fill(
        self, proc: int, addr: int, op: BusOp, state_for: str
    ) -> CacheLine:
        """Miss handling: evict, snoop, fetch, install."""
        cache = self.caches[proc]
        base = self._line_base(addr)
        self._evict_if_needed(proc, addr)
        supplied, supplier, others_retain = self._snoop_others(proc, addr, op)
        data = (
            supplied
            if supplied is not None
            else self.memory.read_line(base, self.config.line_words)
        )
        if state_for == "read":
            state = self.protocol.fill_state_after_read(others_retain)
        else:
            state = self.protocol.fill_state_after_write()
        self.bus.record(op, proc, addr, base, supplied_by=supplier)
        return cache.install(addr, state, data)

    def _do_load(self, proc: int, addr: int) -> None:
        cache = self.caches[proc]
        line = cache.find(addr)
        if line is not None and line.state.readable:
            cache.stats.hits += 1
        else:
            cache.stats.misses += 1
            line = self._fill(proc, addr, BusOp.BUS_RD, "read")
        value = line.data.get(cache.offset(addr), INITIAL)
        self.recorder.record_load(proc, addr, value, tick=self.steps)

    def _acquire_exclusive(self, proc: int, addr: int) -> CacheLine:
        """Get the line in a writable state (hit, upgrade, or RdX miss)."""
        cache = self.caches[proc]
        line = cache.find(addr)
        if line is not None and line.state.writable:
            cache.stats.hits += 1
            line.state = LineState.MODIFIED  # E -> M is silent
            return line
        if line is not None and line.state is LineState.SHARED:
            cache.stats.hits += 1
            base = self._line_base(addr)
            self._snoop_others(proc, addr, BusOp.BUS_UPGR)
            self.bus.record(BusOp.BUS_UPGR, proc, addr, base)
            line.state = LineState.MODIFIED
            return line
        cache.stats.misses += 1
        return self._fill(proc, addr, BusOp.BUS_RDX, "write")

    def _do_store(self, proc: int, addr: int, value: object) -> None:
        cache = self.caches[proc]
        line = self._acquire_exclusive(proc, addr)
        stored = value
        if self.injector.fire(FaultKind.DROPPED_WRITE, self.steps, proc, addr):
            stored = None  # the line keeps its old data
        elif self.injector.fire(FaultKind.CORRUPTED_VALUE, self.steps, proc, addr):
            stored = self.injector.corrupt(value)
        if stored is not None:
            line.data[cache.offset(addr)] = stored
        # The history records the *architectural* store; the write-order
        # records the bus-observed serialization of that store.
        self.recorder.record_store(proc, addr, value, tick=self.steps)

    def _do_rmw(
        self, proc: int, addr: int, value: object, expect: object
    ) -> None:
        cache = self.caches[proc]
        line = self._acquire_exclusive(proc, addr)
        old = line.data.get(cache.offset(addr), INITIAL)
        if expect is not None and old != expect:
            # Conditional RMW that failed: architecturally a no-op write
            # of the observed value (keeps the trace RMW-shaped).
            self.recorder.record_rmw(proc, addr, old, old, tick=self.steps)
            return
        line.data[cache.offset(addr)] = value
        self.recorder.record_rmw(proc, addr, old, value, tick=self.steps)

    # ------------------------------------------------------------------
    # Post-run state
    # ------------------------------------------------------------------
    def _final_values(self) -> dict[int, object]:
        """The value of every touched word after flushing the caches.

        Dirty copies override memory; if faults produced *multiple*
        dirty copies of a line, the most recently touched one wins (as
        a real flush-order would pick some winner).
        """
        final: dict[int, object] = {}
        touched: set[int] = set()
        for h in self.recorder.histories:
            for op in h:
                touched.add(op.addr)  # type: ignore[arg-type]
        image = self.memory.snapshot()
        best_tick: dict[int, int] = {}
        for cache in self.caches:
            for si, ways in enumerate(cache.sets):
                for line in ways:
                    if not line.valid or not line.state.dirty:
                        continue
                    base = cache.base_addr(si, line.tag)
                    for off, val in line.data.items():
                        a = base + off
                        if line.lru >= best_tick.get(a, -1):
                            best_tick[a] = line.lru
                            image[a] = val
        for a in touched:
            final[a] = image.get(a, self._initial_snapshot.get(a, INITIAL))
        return final
