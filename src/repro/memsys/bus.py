"""The snooping bus: atomic transactions and the serialization log.

The bus is the serialization point of the system.  Every transaction
(read miss, write miss, upgrade, write-back) occupies the bus
exclusively; snoopers react within the same transaction.  The bus keeps
a log of every transaction, and — key for Section 5.2 — the order of
write-intent transactions per address *is* the write-order the paper's
polynomial algorithm consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.memsys.protocol import BusOp


@dataclass(frozen=True)
class BusTransaction:
    """One bus occupancy, as recorded in the log."""

    seq: int  # global serialization number
    op: BusOp
    requester: int  # processor id
    addr: int  # the word address that triggered it
    line_base: int
    supplied_by: int | None = None  # cache that sourced data, None = memory


@dataclass
class Bus:
    """Transaction counter + log.  Arbitration is implicit: the system
    steps one processor at a time, so requests never collide; the log
    order is the bus serialization order."""

    log: list[BusTransaction] = field(default_factory=list)
    _seq: int = 0

    def record(
        self,
        op: BusOp,
        requester: int,
        addr: int,
        line_base: int,
        supplied_by: int | None = None,
    ) -> BusTransaction:
        self._seq += 1
        txn = BusTransaction(self._seq, op, requester, addr, line_base, supplied_by)
        self.log.append(txn)
        return txn

    @property
    def num_transactions(self) -> int:
        return len(self.log)

    def transactions_for_line(self, line_base: int) -> list[BusTransaction]:
        return [t for t in self.log if t.line_base == line_base]

    def traffic_summary(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for t in self.log:
            out[t.op.value] = out.get(t.op.value, 0) + 1
        return out
