"""Workload generators: the scripts the simulated processors run.

Each generator returns ``(scripts, initial_memory)`` ready for
:class:`repro.memsys.system.MultiprocessorSystem`.  Value discipline is
a knob because it decides which verification regime a trace lands in:

* ``values="unique"`` — every store writes a globally unique value, so
  the read-map is forced and the O(n) Figure 5.3 fast path applies;
* ``values="small"`` — stores draw from a small value set, producing
  the ambiguous traces where verification is genuinely hard.
"""

from __future__ import annotations

import random

from repro.memsys.processor import ScriptOp, load, rmw, store
from repro.util.rng import make_rng

Workload = tuple[list[list[ScriptOp]], dict[int, object]]


def _value_source(values: str, proc: int, rng: random.Random):
    counter = [0]

    def next_value() -> object:
        if values == "unique":
            counter[0] += 1
            return proc * 1_000_000 + counter[0]
        return rng.randrange(4)

    return next_value


def random_shared_workload(
    num_processors: int = 4,
    ops_per_processor: int = 50,
    num_addresses: int = 4,
    write_fraction: float = 0.4,
    values: str = "unique",
    seed: int | random.Random | None = 0,
) -> Workload:
    """Uniform random loads/stores over a small shared address set."""
    rng = make_rng(seed)
    scripts: list[list[ScriptOp]] = []
    for p in range(num_processors):
        nv = _value_source(values, p, rng)
        script = []
        for _ in range(ops_per_processor):
            addr = rng.randrange(num_addresses)
            if rng.random() < write_fraction:
                script.append(store(addr, nv()))
            else:
                script.append(load(addr))
        scripts.append(script)
    initial = {a: 0 for a in range(num_addresses)}
    return scripts, initial


def producer_consumer_workload(
    items: int = 20,
    num_consumers: int = 1,
    data_addr: int = 0,
    flag_addr: int = 8,
    seed: int | random.Random | None = 0,
) -> Workload:
    """A producer writes data then a flag; consumers poll then read.

    The classic message-passing idiom; under SC a consumer that saw
    flag == i must see data == payload(i).  The scripts are *oblivious*
    (no control flow), so consumers poll a fixed number of times and
    read data after each poll — a real trace with plenty of reuse.

    The payload values are offset by a seeded base so different seeds
    produce distinct (if isomorphic) traces — a campaign sweeping seeds
    gets genuinely different instances rather than one deduplicated
    fingerprint.
    """
    rng = make_rng(seed)
    payload_base = 100 + (rng.randrange(1 << 16) << 8)
    producer: list[ScriptOp] = []
    for i in range(1, items + 1):
        producer.append(store(data_addr, payload_base + i))
        producer.append(store(flag_addr, i))
    consumers = []
    for _ in range(num_consumers):
        script: list[ScriptOp] = []
        for _ in range(items):
            script.append(load(flag_addr))
            script.append(load(data_addr))
        consumers.append(script)
    initial = {data_addr: 0, flag_addr: 0}
    return [producer] + consumers, initial


def false_sharing_workload(
    num_processors: int = 4,
    ops_per_processor: int = 40,
    line_words: int = 4,
    values: str = "unique",
    seed: int | random.Random | None = 0,
) -> Workload:
    """Each processor hammers its own word of one shared line.

    No data is actually shared, yet every store invalidates everyone —
    maximal protocol traffic, so a single injected fault has many
    opportunities to corrupt an observable value.
    """
    rng = make_rng(seed)
    scripts = []
    for p in range(num_processors):
        nv = _value_source(values, p, rng)
        addr = p % line_words  # all within line 0
        script = []
        for _ in range(ops_per_processor):
            if rng.random() < 0.5:
                script.append(store(addr, nv()))
            else:
                script.append(load(addr))
        scripts.append(script)
    initial = {a: 0 for a in range(line_words)}
    return scripts, initial


def lock_contention_workload(
    num_processors: int = 4,
    acquisitions_per_processor: int = 5,
    lock_addr: int = 0,
    counter_addr: int = 8,
    spin_attempts: int = 6,
    seed: int | random.Random | None = 0,
) -> Workload:
    """Test-and-set lock protecting a shared counter.

    Scripts are oblivious, so each "acquisition" is a bounded sequence
    of conditional RMWs (test-and-set: write 1 if 0) followed by a
    counter read+write and an unlock store.  Because the interleaving
    is scheduler-driven, some acquisitions fail all their attempts —
    the trace stays well-formed either way (failed RMWs are no-op
    writes of the observed value).
    """
    scripts = []
    for p in range(num_processors):
        script: list[ScriptOp] = []
        for a in range(acquisitions_per_processor):
            for _ in range(spin_attempts):
                script.append(rmw(lock_addr, 1, expect=0))  # try lock
            script.append(load(counter_addr))
            script.append(store(counter_addr, (p + 1) * 100 + a))
            script.append(store(lock_addr, 0))  # unlock
        scripts.append(script)
    initial = {lock_addr: 0, counter_addr: 0}
    return scripts, initial
