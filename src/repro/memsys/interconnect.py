"""Split-transaction message fabric for the directory substrate.

The snooping bus in :mod:`repro.memsys.system` is atomic: one
operation per step, globally visible.  Real directory machines are
nothing like that — every coherence action is a *message* between a
core controller and a home node, in flight for several cycles, racing
other messages.  This module models that fabric:

* typed :class:`Message` objects (GetS / GetM / PutM / Inv / InvAck /
  FwdGetS / FwdGetM / Data / DataWB / NACK) between endpoints
  ``("core", i)`` and ``("home", j)``;
* per-link queues that are FIFO by default (messages on one link never
  overtake each other) but can be opened up to reordering;
* seeded :class:`DelayModel` latencies — fixed, uniform, and a NUMA
  two-tier model where crossing the socket boundary costs more;
* fault hooks: the :class:`~repro.memsys.faults.FaultInjector` gets a
  per-message opportunity to drop, duplicate, delay, or reorder
  traffic (``DROPPED_MSG`` / ``DUPLICATED_MSG`` / ``DELAYED_MSG`` /
  ``REORDERED_MSG``), and every injection is recorded for the latency
  oracle.

Delivery is a simple discrete-event loop: :meth:`Interconnect.send`
stamps an arrival tick, :meth:`Interconnect.deliver_until` pops every
message whose arrival tick has passed, in deterministic (arrival,
sequence) order.
"""

from __future__ import annotations

import enum
import heapq
from dataclasses import dataclass, field

from repro.memsys.faults import FaultInjector, FaultKind
from repro.util.rng import make_rng

#: Endpoint ids: ``("core", i)`` or ``("home", j)``.
Endpoint = tuple[str, int]


class MessageType(enum.Enum):
    GETS = "GetS"  # core -> home: read miss, want Shared
    GETM = "GetM"  # core -> home: write miss/upgrade, want Modified
    PUTM = "PutM"  # core -> home: dirty eviction, data attached
    INV = "Inv"  # home -> core: invalidate your copy
    INV_ACK = "InvAck"  # core -> home: invalidation done
    FWD_GETS = "FwdGetS"  # home -> owner: send data home, demote to S
    FWD_GETM = "FwdGetM"  # home -> owner: send data home, invalidate
    DATA = "Data"  # home -> core: grant + line data
    DATA_WB = "DataWB"  # owner -> home: forwarded dirty data
    NACK = "Nack"  # home -> core: busy, retry later


@dataclass
class Message:
    """One coherence message.  ``addr`` is the line base address,
    ``txn`` the requester-side transaction id (so stale replies from a
    timed-out attempt can be recognized and dropped), ``data`` the line
    payload where the type carries one, ``acks`` the inv-ack count a
    DATA grant tells the requester to expect (unused here — the home
    collects acks itself — kept for protocol-shape clarity)."""

    mtype: MessageType
    src: Endpoint
    dst: Endpoint
    addr: int
    txn: int = 0
    data: list | None = None
    detail: str = ""


class DelayModel:
    """Maps (src, dst) to a link latency in ticks."""

    name = "fixed"

    def delay(self, src: Endpoint, dst: Endpoint, rng) -> int:
        raise NotImplementedError

    def describe(self) -> str:
        return self.name


class FixedDelay(DelayModel):
    def __init__(self, ticks: int = 1):
        self.ticks = max(0, int(ticks))

    def delay(self, src: Endpoint, dst: Endpoint, rng) -> int:
        return self.ticks

    def describe(self) -> str:
        return f"fixed:{self.ticks}"


class UniformDelay(DelayModel):
    """Seeded uniform latency in ``[lo, hi]`` ticks."""

    name = "uniform"

    def __init__(self, lo: int = 1, hi: int = 4):
        if lo > hi:
            lo, hi = hi, lo
        self.lo = max(0, int(lo))
        self.hi = max(0, int(hi))

    def delay(self, src: Endpoint, dst: Endpoint, rng) -> int:
        return rng.randint(self.lo, self.hi)

    def describe(self) -> str:
        return f"uniform:{self.lo}:{self.hi}"


class NumaDelay(DelayModel):
    """Two-tier NUMA latency: endpoints are grouped into sockets of
    ``socket_size`` consecutive ids (cores and homes use the same
    grouping), intra-socket links cost ``local``, cross-socket links
    cost ``remote``."""

    name = "numa"

    def __init__(self, local: int = 1, remote: int = 6, socket_size: int = 4):
        self.local = max(0, int(local))
        self.remote = max(0, int(remote))
        self.socket_size = max(1, int(socket_size))

    def _socket(self, ep: Endpoint) -> int:
        return ep[1] // self.socket_size

    def delay(self, src: Endpoint, dst: Endpoint, rng) -> int:
        if self._socket(src) == self._socket(dst):
            return self.local
        return self.remote

    def describe(self) -> str:
        return f"numa:{self.local}:{self.remote}:{self.socket_size}"


def make_delay_model(spec: str | DelayModel | None) -> DelayModel:
    """Parse ``"fixed:T"`` / ``"uniform:LO:HI"`` / ``"numa:L:R[:S]"``."""
    if spec is None:
        return FixedDelay(1)
    if isinstance(spec, DelayModel):
        return spec
    parts = str(spec).split(":")
    name, args = parts[0], parts[1:]
    try:
        if name == "fixed":
            return FixedDelay(*(int(a) for a in args)) if args else FixedDelay(1)
        if name == "uniform":
            if len(args) != 2:
                raise ValueError("uniform wants uniform:LO:HI")
            return UniformDelay(int(args[0]), int(args[1]))
        if name == "numa":
            if len(args) not in (2, 3):
                raise ValueError("numa wants numa:LOCAL:REMOTE[:SOCKET_SIZE]")
            return NumaDelay(*(int(a) for a in args))
    except ValueError as exc:
        raise ValueError(f"bad delay model spec {spec!r}: {exc}") from None
    raise ValueError(
        f"unknown delay model {name!r}; choose fixed | uniform | numa"
    )


@dataclass
class InterconnectStats:
    sent: int = 0
    delivered: int = 0
    dropped: int = 0
    duplicated: int = 0
    delayed: int = 0
    reordered: int = 0
    by_type: dict[str, int] = field(default_factory=dict)


class Interconnect:
    """The message fabric.

    ``fifo=True`` (the default) enforces per-link ordering: a message's
    arrival tick is clamped to be no earlier than the previously sent
    message on the same (src, dst) link, so later sends never overtake
    earlier ones.  ``fifo=False`` lets the raw delays reorder freely.

    ``REORDERED_MSG`` injections punch a hole in the FIFO guarantee for
    one message even when ``fifo=True`` — that is precisely the fault.
    """

    def __init__(
        self,
        delay_model: DelayModel | str | None = None,
        *,
        fifo: bool = True,
        seed: int | None = 0,
        injector: FaultInjector | None = None,
    ):
        self.delay_model = make_delay_model(delay_model)
        self.fifo = fifo
        self.rng = make_rng(seed)
        self.injector = injector
        self.stats = InterconnectStats()
        self._queue: list[tuple[int, int, Message]] = []
        self._seq = 0
        self._last_arrival: dict[tuple[Endpoint, Endpoint], int] = {}

    # -- sending ------------------------------------------------------
    def send(self, msg: Message, now: int) -> None:
        self.stats.sent += 1
        key = msg.mtype.value
        self.stats.by_type[key] = self.stats.by_type.get(key, 0) + 1

        inj = self.injector
        proc = msg.src[1] if msg.src[0] == "core" else (
            msg.dst[1] if msg.dst[0] == "core" else -1
        )
        if inj is not None:
            if msg.mtype is MessageType.INV_ACK and inj.fire(
                FaultKind.DROPPED_INV_ACK, now, proc, msg.addr,
                detail=f"inv-ack {msg.src}->{msg.dst} lost",
            ):
                self.stats.dropped += 1
                return
            if inj.fire(
                FaultKind.DROPPED_MSG, now, proc, msg.addr,
                detail=f"{key} {msg.src}->{msg.dst} lost",
            ):
                self.stats.dropped += 1
                return

        arrival = now + 1 + self.delay_model.delay(msg.src, msg.dst, self.rng)
        link = (msg.src, msg.dst)

        if inj is not None and inj.fire(
            FaultKind.DELAYED_MSG, now, proc, msg.addr,
            detail=f"{key} {msg.src}->{msg.dst} delayed",
        ):
            arrival += 5 + self.rng.randint(0, 10)
            self.stats.delayed += 1

        reorder = inj is not None and inj.fire(
            FaultKind.REORDERED_MSG, now, proc, msg.addr,
            detail=f"{key} {msg.src}->{msg.dst} overtaken on link",
        )
        if self.fifo and not reorder:
            arrival = max(arrival, self._last_arrival.get(link, 0))
        elif reorder:
            # Slip behind whatever is already queued on this link.
            arrival = max(arrival, self._last_arrival.get(link, 0)) + 1 + \
                self.rng.randint(0, 3)
            self.stats.reordered += 1
        self._last_arrival[link] = max(self._last_arrival.get(link, 0), arrival)

        self._push(arrival, msg)

        if inj is not None and inj.fire(
            FaultKind.DUPLICATED_MSG, now, proc, msg.addr,
            detail=f"{key} {msg.src}->{msg.dst} duplicated",
        ):
            dup_arrival = arrival + 1 + self.rng.randint(0, 3)
            self._last_arrival[link] = max(self._last_arrival[link], dup_arrival)
            self._push(dup_arrival, msg)
            self.stats.duplicated += 1

    def _push(self, arrival: int, msg: Message) -> None:
        self._seq += 1
        heapq.heappush(self._queue, (arrival, self._seq, msg))

    # -- delivery -----------------------------------------------------
    def deliver_until(self, now: int) -> list[Message]:
        """Pop every message with arrival tick <= ``now``."""
        out = []
        while self._queue and self._queue[0][0] <= now:
            _, _, msg = heapq.heappop(self._queue)
            out.append(msg)
            self.stats.delivered += 1
        return out

    def pending(self) -> int:
        return len(self._queue)

    def next_arrival(self) -> int | None:
        return self._queue[0][0] if self._queue else None
