"""The latency oracle: is an injected fault architecturally *visible*?

A fault campaign needs ground truth.  "We injected a fault" is not the
same as "the trace is incoherent": a dropped invalidation whose stale
copy is never read again, a delayed message the protocol absorbs, even
a stale value that a read *did* return can leave the execution
perfectly schedulable (coherence only constrains per-address orders,
not timing).  Demanding that the verifier flag every injection would
demand false positives; excusing every miss would excuse real ones.

This module classifies every :class:`~repro.memsys.faults.FaultEvent`
of a run, with evidence:

* **latent** — the fault provably did not make the trace incoherent.
  Two proofs are possible: *no escape* (the recorder's golden replay
  saw no divergence on the fault's line, so the commit order itself
  schedules every operation — the run is coherent with the fault
  sealed inside the machine), or *escaped but schedulable* (a faulty
  value did reach a committed read, yet the independent checker below
  still finds a legal order — e.g. a single stale read that can be
  scheduled before the racing write).
* **visible** — the faulty value/state escaped into the committed
  trace (a golden-replay divergence on the fault's line at or after
  the injection, a corrupted final memory image, or — for
  ``REORDERED_SERIALIZATION`` — the exported write-order itself) *and*
  the checker proves the resulting (execution, write-order) pair
  incoherent.  A sound and complete verifier **must** answer VIOLATED.

The checker here is an independent reimplementation of the Section 5.2
write-order decision procedure (gap placement with a per-process
greedy), deliberately sharing no code with
:mod:`repro.core.writeorder`: the campaign contract "visible ⇒
certified VIOLATED, latent ⇒ certified HOLDS" is then a differential
test between two implementations of the same decision problem, not a
tautology.  With the write-order supplied the procedure is complete
per address, so the visible/latent split is a true dichotomy.
"""

from __future__ import annotations

from bisect import bisect_left
from collections import defaultdict
from dataclasses import dataclass, field

from repro.core.types import Execution, OpKind, Operation
from repro.memsys.faults import FaultEvent, FaultKind
from repro.memsys.recorder import Divergence, RunResult

VISIBLE = "visible"
LATENT = "latent"


@dataclass(frozen=True)
class Classification:
    """One fault event's verdict plus the evidence for it."""

    event: FaultEvent
    visible: bool
    evidence: str

    @property
    def label(self) -> str:
        return VISIBLE if self.visible else LATENT


@dataclass
class OracleReport:
    """The oracle's view of one run."""

    classifications: list[Classification] = field(default_factory=list)
    #: Addresses the independent checker proves unschedulable, with the
    #: reason.  Empty iff the run is coherent under its write-order.
    violations: dict[int, str] = field(default_factory=dict)
    divergences: list[Divergence] = field(default_factory=list)
    #: The checker found a violation but no fault was ever injected —
    #: a simulator bug (or a contract breach), never expected.
    spontaneous: bool = False

    @property
    def expected_verdict(self) -> str:
        """What a sound *and complete* verifier must say for this run."""
        return "VIOLATED" if self.violations else "HOLDS"

    @property
    def visible_events(self) -> list[Classification]:
        return [c for c in self.classifications if c.visible]

    @property
    def latent_events(self) -> list[Classification]:
        return [c for c in self.classifications if not c.visible]

    def row(self) -> dict:
        return {
            "expected": self.expected_verdict,
            "visible": len(self.visible_events),
            "latent": len(self.latent_events),
            "violating_addresses": sorted(self.violations),
            "divergences": len(self.divergences),
            "spontaneous": self.spontaneous,
        }


# ----------------------------------------------------------------------
# Independent Section 5.2 checker (per address, complete)
# ----------------------------------------------------------------------
def check_address(
    execution: Execution, addr: int, write_order: list[Operation]
) -> str | None:
    """Decide coherence of one address under its write-order.

    Returns ``None`` when an order of all operations exists (the
    instance is coherent at ``addr``), else a human-readable reason.
    Complete: with the write skeleton fixed, placing every read in its
    earliest value-matching gap at/after its program-order predecessor
    succeeds iff any placement does.
    """
    d_init = execution.initial_value(addr)
    d_final = execution.final_value(addr)

    per_proc: list[list[Operation]] = []
    writes: list[Operation] = []
    for h in execution.histories:
        ops = [o for o in h if o.addr == addr and not o.kind.is_sync]
        per_proc.append(ops)
        writes.extend(o for o in ops if o.kind.writes)

    if sorted(o.uid for o in write_order) != sorted(o.uid for o in writes):
        return "write-order is not a permutation of the writes"

    slot = {o.uid: i for i, o in enumerate(write_order)}
    for ops in per_proc:
        idx = [slot[o.uid] for o in ops if o.kind.writes]
        if any(a >= b for a, b in zip(idx, idx[1:])):
            return "write-order contradicts program order"

    values = [d_init] + [w.value_written for w in write_order]
    slots_of = defaultdict(list)
    for g, v in enumerate(values):
        slots_of[v].append(g)

    for j, w in enumerate(write_order):
        if w.kind is OpKind.RMW and w.value_read != values[j]:
            return (
                f"RMW {w.uid} at slot {j} reads {w.value_read!r} "
                f"but the pre-state there is {values[j]!r}"
            )

    if d_final is not None and values[-1] != d_final:
        return (
            f"final memory holds {d_final!r} but the last write "
            f"leaves {values[-1]!r}"
        )

    for ops in per_proc:
        cursor = 0
        placed: list[tuple[Operation, int]] = []
        for o in ops:
            if o.kind.writes:
                cursor = max(cursor, slot[o.uid] + 1)
                continue
            gaps = slots_of.get(o.value_read)
            if not gaps:
                return f"read {o.uid} returns {o.value_read!r}: never written"
            i = bisect_left(gaps, cursor)
            if i == len(gaps):
                return (
                    f"read {o.uid} returns {o.value_read!r}: no such value "
                    f"after its program-order predecessors"
                )
            cursor = gaps[i]
            placed.append((o, cursor))
        # Pair each read with the slot of its next po write: a read
        # greedily pushed past that write has no admissible gap.
        next_write_slot: dict[tuple[int, int], int] = {}
        bound = len(write_order)
        for o in reversed(ops):
            if o.kind.writes:
                bound = slot[o.uid]
            else:
                next_write_slot[o.uid] = bound
        for o, g in placed:
            if g > next_write_slot[o.uid]:
                return (
                    f"read {o.uid} cannot be served before its next "
                    f"program-order write"
                )
    return None


def check_run(
    execution: Execution, write_orders: dict[int, list[Operation]]
) -> dict[int, str]:
    """Checker verdict for every address of a run; empty dict = coherent."""
    addrs = set(write_orders)
    for h in execution.histories:
        for o in h:
            addrs.add(o.addr)
    out: dict[int, str] = {}
    for addr in sorted(addrs):
        reason = check_address(execution, addr, write_orders.get(addr, []))
        if reason is not None:
            out[addr] = reason
    return out


# ----------------------------------------------------------------------
# Classification
# ----------------------------------------------------------------------
def classify_run(run: RunResult, line_words: int = 4) -> OracleReport:
    """Classify every injection of a run as visible or latent.

    ``line_words`` is the cache-line width: a fault's blast radius is
    its line, so escapes are attributed line-wise.
    """
    violations = check_run(run.execution, run.write_orders)
    report = OracleReport(
        violations=violations, divergences=list(run.divergences)
    )
    if violations and not run.fault_events:
        report.spontaneous = True

    def line(addr: int) -> int:
        return addr // line_words

    div_by_line: dict[int, list[Divergence]] = defaultdict(list)
    for d in run.divergences:
        div_by_line[line(d.addr)].append(d)
    violating_lines = {line(a) for a in violations}

    for ev in run.fault_events:
        ev_line = line(ev.addr)
        if ev.kind is FaultKind.REORDERED_SERIALIZATION:
            escape = "perturbed the exported write-order"
        else:
            hits = [
                d for d in div_by_line.get(ev_line, []) if d.tick >= ev.step
            ]
            escape = (
                f"divergence at tick {hits[0].tick} on addr {hits[0].addr} "
                f"(expected {hits[0].expected!r}, observed "
                f"{hits[0].observed!r})"
                if hits
                else None
            )
        if escape is None:
            report.classifications.append(
                Classification(
                    ev, False,
                    "latent: no escape — commit-order replay is clean on "
                    "this line, so the commit order itself schedules the "
                    "run",
                )
            )
        elif ev_line not in violating_lines:
            report.classifications.append(
                Classification(
                    ev, False,
                    f"latent: {escape}, but the checker still finds a "
                    f"legal order (escaped-but-schedulable)",
                )
            )
        else:
            reason = violations[
                min(a for a in violations if line(a) == ev_line)
            ]
            report.classifications.append(
                Classification(
                    ev, True, f"visible: {escape}; checker: {reason}"
                )
            )

    # Safety net: the checker proved incoherence but no single event
    # was implicated (e.g. the divergence chain crossed lines).  The
    # contract "visible => VIOLATED" must stay sound, so every
    # injection of the run is conservatively marked visible.
    if violations and run.fault_events and not any(
        c.visible for c in report.classifications
    ):
        report.classifications = [
            Classification(
                c.event, True,
                "visible (unattributed): the run is provably incoherent "
                "and this injection cannot be ruled out; " + c.evidence,
            )
            for c in report.classifications
        ]
    return report
