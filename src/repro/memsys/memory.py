"""Main memory: the backing store behind the caches.

Sparse word-addressed storage.  Uninitialized words read the
distinguished :data:`repro.core.INITIAL` sentinel unless a concrete
initial image is installed, matching the paper's ``d_I[a]`` convention.
"""

from __future__ import annotations

from typing import Mapping

from repro.core.types import INITIAL


class MainMemory:
    """Word-addressed sparse memory."""

    def __init__(self, initial: Mapping[int, object] | None = None):
        self._words: dict[int, object] = dict(initial or {})
        self.reads = 0
        self.writes = 0

    def read(self, addr: int) -> object:
        self.reads += 1
        return self._words.get(addr, INITIAL)

    def write(self, addr: int, value: object) -> None:
        self.writes += 1
        self._words[addr] = value

    def read_line(self, base: int, words: int) -> dict[int, object]:
        """Data for a whole line as {word offset -> value}."""
        return {off: self.read(base + off) for off in range(words)}

    def write_line(self, base: int, data: Mapping[int, object]) -> None:
        for off, value in data.items():
            self.write(base + off, value)

    def snapshot(self) -> dict[int, object]:
        return dict(self._words)
