"""Execution recording: turning a simulator run into verifier input.

The recorder observes every completed memory operation (with the value
the processor actually saw/wrote) and every write serialization on the
bus.  After the run it produces:

* an :class:`repro.core.Execution` — per-process histories with
  observed values, initial values, and the post-run final values;
* per-address *write-orders* — the bus serialization of the writes,
  exactly the Section 5.2 augmentation;

so a run plugs directly into ``verify_coherence(execution,
write_orders=...)`` and friends.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.types import Execution, OpKind, Operation

if TYPE_CHECKING:  # pragma: no cover
    from repro.memsys.bus import Bus
    from repro.memsys.faults import FaultEvent


class Recorder:
    """Accumulates operations during a run.

    Operations are recorded at commit time in global bus order, so
    ``commit_log`` *is* the machine's commit stream — the input the
    streaming verifier (:mod:`repro.engine.streaming`) consumes.  An
    optional ``observer`` callable sees each operation as it commits
    (live monitoring); it must not mutate the operation.
    """

    def __init__(self, num_processors: int, observer=None):
        self.histories: list[list[Operation]] = [[] for _ in range(num_processors)]
        self.write_orders: dict[int, list[Operation]] = {}
        self.commit_log: list[Operation] = []
        self.observer = observer

    def _append(self, op: Operation) -> Operation:
        self.histories[op.proc].append(op)
        self.commit_log.append(op)
        if self.observer is not None:
            self.observer(op)
        return op

    def record_load(self, proc: int, addr: int, value: object) -> Operation:
        return self._append(
            Operation(
                OpKind.READ, addr, proc, len(self.histories[proc]), value_read=value
            )
        )

    def record_store(self, proc: int, addr: int, value: object) -> Operation:
        op = self._append(
            Operation(
                OpKind.WRITE, addr, proc, len(self.histories[proc]), value_written=value
            )
        )
        self.write_orders.setdefault(addr, []).append(op)
        return op

    def record_rmw(
        self, proc: int, addr: int, value_read: object, value_written: object
    ) -> Operation:
        op = self._append(
            Operation(
                OpKind.RMW,
                addr,
                proc,
                len(self.histories[proc]),
                value_read=value_read,
                value_written=value_written,
            )
        )
        self.write_orders.setdefault(addr, []).append(op)
        return op

    def build_execution(
        self,
        initial: dict[int, object],
        final: dict[int, object] | None,
    ) -> Execution:
        histories = [list(h) for h in self.histories]
        return Execution.from_ops(histories, initial=initial, final=final)


@dataclass
class RunResult:
    """Everything a verifier (or a benchmark) wants from one run."""

    execution: Execution
    write_orders: dict[int, list[Operation]]
    steps: int
    bus_transactions: int
    bus_traffic: dict[str, int]
    fault_events: list["FaultEvent"] = field(default_factory=list)
    cache_stats: list[dict] = field(default_factory=list)
    #: Every architectural operation in global commit (bus) order.
    commit_log: list[Operation] = field(default_factory=list)

    @property
    def num_ops(self) -> int:
        return self.execution.num_ops

    @property
    def faults_injected(self) -> int:
        return len(self.fault_events)

    def summary(self) -> str:
        return (
            f"run: {self.num_ops} ops on "
            f"{self.execution.num_processes} processors, {self.steps} steps, "
            f"{self.bus_transactions} bus transactions, "
            f"{self.faults_injected} faults injected"
        )
