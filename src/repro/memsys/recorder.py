"""Execution recording: turning a simulator run into verifier input.

The recorder observes every completed memory operation (with the value
the processor actually saw/wrote) and every write serialization on the
bus.  After the run it produces:

* an :class:`repro.core.Execution` — per-process histories with
  observed values, initial values, and the post-run final values;
* per-address *write-orders* — the bus serialization of the writes,
  exactly the Section 5.2 augmentation;

so a run plugs directly into ``verify_coherence(execution,
write_orders=...)`` and friends.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.types import INITIAL, Execution, OpKind, Operation

if TYPE_CHECKING:  # pragma: no cover
    from repro.memsys.bus import Bus
    from repro.memsys.faults import FaultEvent


@dataclass(frozen=True)
class Divergence:
    """One committed value that contradicts the golden replay.

    ``uid`` is the diverging operation's (proc, index), or ``None`` for
    a post-run final-memory mismatch; ``expected`` is what the commit
    order says the value should have been, ``observed`` what the
    machine actually returned/kept; ``tick`` the simulator time of the
    divergent commit (end-of-run for final mismatches).
    """

    uid: tuple[int, int] | None
    proc: int
    addr: int
    expected: object
    observed: object
    tick: int


class Recorder:
    """Accumulates operations during a run.

    Operations are recorded at commit time in global bus order, so
    ``commit_log`` *is* the machine's commit stream — the input the
    streaming verifier (:mod:`repro.engine.streaming`) consumes.  An
    optional ``observer`` callable sees each operation as it commits
    (live monitoring); it must not mutate the operation.

    The recorder also runs a **golden replay** alongside: a shadow
    memory updated with every committed write's *architectural* value.
    A committed read (or the post-run final memory) that disagrees with
    the shadow is recorded as a :class:`Divergence` — proof that a
    faulty value *escaped* into the architectural trace.  Conversely,
    when a run has no divergences the commit order itself schedules
    every operation, so the trace is provably coherent; the latency
    oracle (:mod:`repro.memsys.oracle`) builds on exactly this.
    """

    def __init__(self, num_processors: int, observer=None, initial=None):
        self.histories: list[list[Operation]] = [[] for _ in range(num_processors)]
        self.write_orders: dict[int, list[Operation]] = {}
        self.commit_log: list[Operation] = []
        self.observer = observer
        self._initial: dict[int, object] = dict(initial or {})
        self.golden: dict[int, object] = {}
        self.divergences: list[Divergence] = []

    def _append(self, op: Operation) -> Operation:
        self.histories[op.proc].append(op)
        self.commit_log.append(op)
        if self.observer is not None:
            self.observer(op)
        return op

    def _golden_value(self, addr: int) -> object:
        if addr in self.golden:
            return self.golden[addr]
        return self._initial.get(addr, INITIAL)

    def _check_read(
        self, uid: tuple[int, int], proc: int, addr: int, value: object, tick: int
    ) -> None:
        expected = self._golden_value(addr)
        if value != expected:
            self.divergences.append(
                Divergence(uid, proc, addr, expected, value, tick)
            )

    def record_load(
        self, proc: int, addr: int, value: object, tick: int = 0
    ) -> Operation:
        op = self._append(
            Operation(
                OpKind.READ, addr, proc, len(self.histories[proc]), value_read=value
            )
        )
        self._check_read(op.uid, proc, addr, value, tick)
        return op

    def record_store(
        self, proc: int, addr: int, value: object, tick: int = 0
    ) -> Operation:
        op = self._append(
            Operation(
                OpKind.WRITE, addr, proc, len(self.histories[proc]), value_written=value
            )
        )
        self.write_orders.setdefault(addr, []).append(op)
        self.golden[addr] = value
        return op

    def record_rmw(
        self,
        proc: int,
        addr: int,
        value_read: object,
        value_written: object,
        tick: int = 0,
    ) -> Operation:
        op = self._append(
            Operation(
                OpKind.RMW,
                addr,
                proc,
                len(self.histories[proc]),
                value_read=value_read,
                value_written=value_written,
            )
        )
        self.write_orders.setdefault(addr, []).append(op)
        self._check_read(op.uid, proc, addr, value_read, tick)
        self.golden[addr] = value_written
        return op

    def check_final(self, final: dict[int, object], tick: int) -> None:
        """Compare the machine's final memory against the golden replay;
        mismatches are escape evidence like any read divergence."""
        for addr, observed in final.items():
            expected = self._golden_value(addr)
            if observed != expected:
                self.divergences.append(
                    Divergence(None, -1, addr, expected, observed, tick)
                )

    def build_execution(
        self,
        initial: dict[int, object],
        final: dict[int, object] | None,
    ) -> Execution:
        histories = [list(h) for h in self.histories]
        return Execution.from_ops(histories, initial=initial, final=final)


@dataclass
class RunResult:
    """Everything a verifier (or a benchmark) wants from one run."""

    execution: Execution
    write_orders: dict[int, list[Operation]]
    steps: int
    bus_transactions: int
    bus_traffic: dict[str, int]
    fault_events: list["FaultEvent"] = field(default_factory=list)
    cache_stats: list[dict] = field(default_factory=list)
    #: Every architectural operation in global commit (bus) order.
    commit_log: list[Operation] = field(default_factory=list)
    #: Golden-replay divergences (escape evidence for the oracle).
    divergences: list[Divergence] = field(default_factory=list)
    #: Latency-oracle classification of every injection (an
    #: :class:`repro.memsys.oracle.OracleReport`), filled by the
    #: systems' ``run()``.
    oracle: object | None = None

    @property
    def num_ops(self) -> int:
        return self.execution.num_ops

    @property
    def faults_injected(self) -> int:
        return len(self.fault_events)

    def summary(self) -> str:
        return (
            f"run: {self.num_ops} ops on "
            f"{self.execution.num_processes} processors, {self.steps} steps, "
            f"{self.bus_transactions} bus transactions, "
            f"{self.faults_injected} faults injected"
        )
