"""A multiprocessor with FIFO store buffers — a TSO machine.

The atomic-bus system is sequentially consistent by construction, so it
can never exercise the *weaker-model* checkers on realistic traces.
This system adds the one structure that separates real x86/SPARC
machines from SC: a per-processor FIFO store buffer.

* a store enters the issuing processor's buffer and drains to the
  shared memory image at a scheduler-chosen later step;
* a load first forwards from the youngest same-address entry of its own
  buffer, else reads memory;
* an atomic RMW drains the issuer's buffer, then acts on memory;

so fault-free runs are **TSO-consistent by construction** and, with
adversarial drain scheduling, frequently *not* sequentially consistent
(store-buffering outcomes appear).  The recorder output feeds
:func:`repro.consistency.tso.tso_holds` (must always accept) and
:func:`repro.core.vsc.verify_sequential_consistency` (may reject) —
the empirical counterpart of the model hierarchy.

Caches are omitted: the store buffer is the phenomenon under study, and
a write-through view of memory keeps the machine visibly TSO rather
than re-deriving the bus machine.  The per-address *drain order* is
exported as the write-order (that is TSO's memory order of stores).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.types import INITIAL
from repro.memsys.processor import Processor, ScriptKind, ScriptOp
from repro.memsys.recorder import Recorder, RunResult
from repro.util.rng import make_rng


@dataclass
class TsoConfig:
    num_processors: int = 2
    drain_probability: float = 0.35  # chance a step drains instead of issuing
    seed: int | None = 0
    max_buffer: int = 16  # issue stalls when the buffer is full


class TsoSystem:
    """Store-buffered multiprocessor (timing-abstract, one event/step)."""

    def __init__(
        self,
        config: TsoConfig,
        scripts: list[list[ScriptOp]],
        initial_memory: dict[int, object] | None = None,
    ):
        if len(scripts) != config.num_processors:
            raise ValueError(
                f"{config.num_processors} processors but {len(scripts)} scripts"
            )
        self.config = config
        self.memory: dict[int, object] = dict(initial_memory or {})
        self.processors = [Processor(i, s) for i, s in enumerate(scripts)]
        self.buffers: list[list[tuple[int, object, object]]] = [
            [] for _ in range(config.num_processors)
        ]  # entries: (addr, value, recorder-op) in FIFO order
        self.recorder = Recorder(config.num_processors)
        self.rng = make_rng(config.seed)
        self.steps = 0
        self._initial_snapshot = dict(initial_memory or {})
        self.drains = 0

    # ------------------------------------------------------------------
    def _read_memory(self, addr: int) -> object:
        return self.memory.get(addr, INITIAL)

    def _drain_one(self, proc: int) -> None:
        addr, value, op = self.buffers[proc].pop(0)
        self.memory[addr] = value
        # The drain is the store's serialization point: only now does it
        # enter the per-address write-order.
        self.recorder.write_orders.setdefault(addr, []).append(op)
        self.drains += 1

    def _forwarded(self, proc: int, addr: int):
        for a, v, _ in reversed(self.buffers[proc]):
            if a == addr:
                return (v,)
        return None

    def _issue(self, proc: Processor) -> bool:
        """Execute the processor's next instruction; False if stalled."""
        op = proc.current()
        p = proc.proc_id
        if op.kind is ScriptKind.STORE:
            if len(self.buffers[p]) >= self.config.max_buffer:
                return False
            rec = self.recorder.record_store(p, op.addr, op.value)
            # Remove the automatic write-order entry: the drain adds it
            # at serialization time instead.
            self.recorder.write_orders[op.addr].pop()
            self.buffers[p].append((op.addr, op.value, rec))
        elif op.kind is ScriptKind.LOAD:
            fwd = self._forwarded(p, op.addr)
            value = fwd[0] if fwd is not None else self._read_memory(op.addr)
            self.recorder.record_load(p, op.addr, value)
        else:  # RMW: drain, then act on memory atomically
            while self.buffers[p]:
                self._drain_one(p)
            old = self._read_memory(op.addr)
            if op.expect is not None and old != op.expect:
                # A failed conditional RMW writes back the same value;
                # its write-order slot is this serialization point.
                self.recorder.record_rmw(p, op.addr, old, old)
            else:
                self.memory[op.addr] = op.value
                self.recorder.record_rmw(p, op.addr, old, op.value)
        proc.advance()
        return True

    def step(self) -> bool:
        drainable = [p for p in range(len(self.buffers)) if self.buffers[p]]
        issuable = [p for p in self.processors if not p.done]
        if not drainable and not issuable:
            return False
        self.steps += 1
        if drainable and (
            not issuable or self.rng.random() < self.config.drain_probability
        ):
            self._drain_one(self.rng.choice(drainable))
            return True
        proc = self.rng.choice(issuable)
        if not self._issue(proc):
            # Stalled on a full buffer: force a drain to make progress.
            self._drain_one(proc.proc_id)
        return True

    def run(self, max_steps: int | None = None) -> RunResult:
        while self.step():
            if max_steps is not None and self.steps >= max_steps:
                break
        final = {}
        touched: set[int] = set()
        for h in self.recorder.histories:
            for op in h:
                touched.add(op.addr)  # type: ignore[arg-type]
        for a in touched:
            final[a] = self.memory.get(a, self._initial_snapshot.get(a, INITIAL))
        execution = self.recorder.build_execution(
            initial=self._initial_snapshot, final=final
        )
        return RunResult(
            execution=execution,
            write_orders=dict(self.recorder.write_orders),
            steps=self.steps,
            bus_transactions=self.drains,
            bus_traffic={"drains": self.drains},
        )
