"""A directory-based coherence protocol (distributed memory controllers).

The bus system in :mod:`repro.memsys.system` serializes through a
snooping bus; scalable machines instead keep a *directory* entry per
memory line recording which caches hold it:

* ``UNCACHED`` — memory is the only copy;
* ``SHARED(sharers)`` — clean copies at a set of caches;
* ``EXCLUSIVE(owner)`` — one cache may hold the line dirty.

A miss sends a request to the line's home directory, which invalidates
sharers / recalls the owner as needed, then responds.  The timing model
matches the bus system (one operation runs to completion per step) so
fault-free runs are sequentially consistent here too — but the
*serialization point* is the directory, and the per-address write-order
the verifiers consume is the order of exclusive grants plus local
commits, which this module exports exactly like the bus does.

Fault injection reuses :mod:`repro.memsys.faults`:

* ``LOST_INVALIDATION`` — a sharer misses its invalidation message;
* ``STALE_MEMORY``      — an owner recall is lost and memory responds
  with stale data;
* ``DROPPED_WRITE`` / ``CORRUPTED_VALUE`` — datapath faults at commit.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.core.types import INITIAL
from repro.memsys.cache import Cache
from repro.memsys.faults import FaultConfig, FaultInjector, FaultKind
from repro.memsys.memory import MainMemory
from repro.memsys.processor import Processor, ScriptKind, ScriptOp
from repro.memsys.protocol import LineState
from repro.memsys.recorder import Recorder, RunResult
from repro.memsys.system import SystemConfig
from repro.util.rng import make_rng


class DirState(enum.Enum):
    UNCACHED = "U"
    SHARED = "S"
    EXCLUSIVE = "E"


@dataclass
class DirectoryEntry:
    """Directory state for one memory line."""

    state: DirState = DirState.UNCACHED
    sharers: set[int] = field(default_factory=set)
    owner: int | None = None


@dataclass
class DirectoryStats:
    requests: int = 0
    invalidations_sent: int = 0
    recalls: int = 0
    lost_invalidations: int = 0
    lost_recalls: int = 0


class DirectorySystem:
    """A directory-coherent multiprocessor (same API as the bus system)."""

    def __init__(
        self,
        config: SystemConfig,
        scripts: list[list[ScriptOp]],
        initial_memory: dict[int, object] | None = None,
        faults: FaultConfig | None = None,
    ):
        if len(scripts) != config.num_processors:
            raise ValueError(
                f"{config.num_processors} processors but {len(scripts)} scripts"
            )
        self.config = config
        self.memory = MainMemory(initial_memory)
        self.caches = [
            Cache(config.num_sets, config.ways, config.line_words)
            for _ in range(config.num_processors)
        ]
        self.processors = [Processor(i, s) for i, s in enumerate(scripts)]
        self.injector = FaultInjector(faults or FaultConfig.none())
        self.recorder = Recorder(config.num_processors)
        self.rng = make_rng(config.seed)
        self.directory: dict[int, DirectoryEntry] = {}
        self.dir_stats = DirectoryStats()
        self.steps = 0
        self._initial_snapshot = dict(initial_memory or {})
        self._rr_next = 0

    # ------------------------------------------------------------------
    def _entry(self, line_base: int) -> DirectoryEntry:
        return self.directory.setdefault(line_base, DirectoryEntry())

    def _line_base(self, addr: int) -> int:
        return (addr // self.config.line_words) * self.config.line_words

    def _pick_processor(self) -> Processor | None:
        ready = [p for p in self.processors if not p.done]
        if not ready:
            return None
        if self.config.scheduler == "round-robin":
            for _ in range(len(self.processors)):
                p = self.processors[self._rr_next % len(self.processors)]
                self._rr_next += 1
                if not p.done:
                    return p
            return None
        return self.rng.choice(ready)

    def step(self) -> bool:
        proc = self._pick_processor()
        if proc is None:
            return False
        self.steps += 1
        op = proc.current()
        if op.kind is ScriptKind.LOAD:
            self._do_load(proc.proc_id, op.addr)
        elif op.kind is ScriptKind.STORE:
            self._do_store(proc.proc_id, op.addr, op.value)
        else:
            self._do_rmw(proc.proc_id, op.addr, op.value, op.expect)
        proc.advance()
        return True

    def run(self, max_steps: int | None = None) -> RunResult:
        while self.step():
            if max_steps is not None and self.steps >= max_steps:
                break
        final = self._final_values()
        execution = self.recorder.build_execution(
            initial=self._initial_snapshot, final=final
        )
        from repro.memsys.faults import corrupt_write_orders

        write_orders = corrupt_write_orders(
            self.recorder.write_orders, self.injector, self.steps
        )
        return RunResult(
            execution=execution,
            write_orders=write_orders,
            steps=self.steps,
            bus_transactions=self.dir_stats.requests,
            bus_traffic={
                "requests": self.dir_stats.requests,
                "invalidations": self.dir_stats.invalidations_sent,
                "recalls": self.dir_stats.recalls,
            },
            fault_events=list(self.injector.events),
            cache_stats=[vars(c.stats) for c in self.caches],
        )

    # ------------------------------------------------------------------
    # Directory transactions
    # ------------------------------------------------------------------
    def _recall_owner(self, entry: DirectoryEntry, base: int) -> bool:
        """Write the owner's dirty line back to memory; True on success
        (a lost recall leaves the owner untouched and memory stale)."""
        assert entry.owner is not None
        self.dir_stats.recalls += 1
        owner_cache = self.caches[entry.owner]
        line = owner_cache.peek(base)
        if self.injector.fire(
            FaultKind.STALE_MEMORY, self.steps, entry.owner, base, "lost recall"
        ):
            self.dir_stats.lost_recalls += 1
            return False
        if line is not None and line.valid:
            self.memory.write_line(base, line.data)
            line.state = LineState.SHARED
            owner_cache.stats.interventions += 1
        return True

    def _invalidate_sharers(
        self, entry: DirectoryEntry, base: int, except_proc: int
    ) -> set[int]:
        """Send invalidations; return the set that actually invalidated."""
        done: set[int] = set()
        for q in sorted(entry.sharers):
            if q == except_proc:
                done.add(q)
                continue
            self.dir_stats.invalidations_sent += 1
            if self.injector.fire(
                FaultKind.LOST_INVALIDATION, self.steps, q, base, "lost inval"
            ):
                self.dir_stats.lost_invalidations += 1
                done.add(q)  # the directory *believes* it succeeded
                continue
            line = self.caches[q].peek(base)
            if line is not None and line.valid:
                line.state = LineState.INVALID
                self.caches[q].stats.invalidations_received += 1
            done.add(q)
        return done

    def _evict_for(self, proc: int, addr: int) -> None:
        cache = self.caches[proc]
        victim = cache.victim_for(addr)
        if victim.valid:
            base = cache.base_addr(cache.set_index(addr), victim.tag)
            entry = self._entry(base)
            if victim.state.dirty:
                self.memory.write_line(base, victim.data)
                cache.stats.writebacks += 1
                if entry.owner == proc:
                    entry.state = DirState.UNCACHED
                    entry.owner = None
            else:
                entry.sharers.discard(proc)
                if entry.owner == proc:
                    entry.owner = None
                    entry.state = (
                        DirState.SHARED if entry.sharers else DirState.UNCACHED
                    )
                elif not entry.sharers and entry.state is DirState.SHARED:
                    entry.state = DirState.UNCACHED
        victim.state = LineState.INVALID
        victim.data = {}
        victim.tag = -1

    def _fetch_shared(self, proc: int, addr: int):
        """Directory read request: install a shared copy."""
        base = self._line_base(addr)
        entry = self._entry(base)
        self.dir_stats.requests += 1
        if entry.state is DirState.EXCLUSIVE and entry.owner != proc:
            self._recall_owner(entry, base)
            entry.sharers = {entry.owner} if entry.owner is not None else set()
            entry.owner = None
            entry.state = DirState.SHARED
        data = self.memory.read_line(base, self.config.line_words)
        self._evict_for(proc, addr)
        entry.sharers.add(proc)
        if entry.state is DirState.UNCACHED:
            entry.state = DirState.SHARED
        return self.caches[proc].install(addr, LineState.SHARED, data)

    def _fetch_exclusive(self, proc: int, addr: int):
        """Directory write request: install an exclusive (M) copy."""
        base = self._line_base(addr)
        entry = self._entry(base)
        self.dir_stats.requests += 1
        if entry.state is DirState.EXCLUSIVE and entry.owner != proc:
            former = entry.owner
            self._recall_owner(entry, base)
            entry.owner = None
            # The recalled owner's (now shared) copy must also go.
            entry.sharers.add(former)
        if entry.sharers:
            self._invalidate_sharers(entry, base, except_proc=proc)
        data_line = self.caches[proc].peek(addr)
        if data_line is not None and data_line.valid:
            data = dict(data_line.data)
            data_line.state = LineState.INVALID
            data_line.tag = -1
        else:
            data = self.memory.read_line(base, self.config.line_words)
        self._evict_for(proc, addr)
        entry.state = DirState.EXCLUSIVE
        entry.owner = proc
        entry.sharers = set()
        return self.caches[proc].install(addr, LineState.MODIFIED, data)

    # ------------------------------------------------------------------
    # Processor operations
    # ------------------------------------------------------------------
    def _do_load(self, proc: int, addr: int) -> None:
        cache = self.caches[proc]
        line = cache.find(addr)
        if line is not None and line.state.readable:
            cache.stats.hits += 1
        else:
            cache.stats.misses += 1
            line = self._fetch_shared(proc, addr)
        self.recorder.record_load(
            proc, addr, line.data.get(cache.offset(addr), INITIAL)
        )

    def _writable_line(self, proc: int, addr: int):
        cache = self.caches[proc]
        line = cache.find(addr)
        if line is not None and line.state.writable:
            cache.stats.hits += 1
            line.state = LineState.MODIFIED
            return line
        cache.stats.misses += 1
        return self._fetch_exclusive(proc, addr)

    def _do_store(self, proc: int, addr: int, value: object) -> None:
        cache = self.caches[proc]
        line = self._writable_line(proc, addr)
        stored = value
        if self.injector.fire(FaultKind.DROPPED_WRITE, self.steps, proc, addr):
            stored = None
        elif self.injector.fire(FaultKind.CORRUPTED_VALUE, self.steps, proc, addr):
            stored = self.injector.corrupt(value)
        if stored is not None:
            line.data[cache.offset(addr)] = stored
        self.recorder.record_store(proc, addr, value)

    def _do_rmw(self, proc: int, addr: int, value: object, expect: object) -> None:
        cache = self.caches[proc]
        line = self._writable_line(proc, addr)
        old = line.data.get(cache.offset(addr), INITIAL)
        if expect is not None and old != expect:
            self.recorder.record_rmw(proc, addr, old, old)
            return
        line.data[cache.offset(addr)] = value
        self.recorder.record_rmw(proc, addr, old, value)

    # ------------------------------------------------------------------
    def _final_values(self) -> dict[int, object]:
        final: dict[int, object] = {}
        touched: set[int] = set()
        for h in self.recorder.histories:
            for op in h:
                touched.add(op.addr)  # type: ignore[arg-type]
        image = self.memory.snapshot()
        best_tick: dict[int, int] = {}
        for cache in self.caches:
            for si, ways in enumerate(cache.sets):
                for line in ways:
                    if not line.valid or not line.state.dirty:
                        continue
                    base = cache.base_addr(si, line.tag)
                    for off, val in line.data.items():
                        a = base + off
                        if line.lru >= best_tick.get(a, -1):
                            best_tick[a] = line.lru
                            image[a] = val
        for a in touched:
            final[a] = image.get(a, self._initial_snapshot.get(a, INITIAL))
        return final
