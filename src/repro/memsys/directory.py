"""A split-transaction directory protocol over a message fabric.

Unlike the atomic bus (:mod:`repro.memsys.system`), nothing here is
instantaneous: every coherence action is a typed message on the
:mod:`repro.memsys.interconnect` fabric, in flight for several ticks,
racing other messages.  The protocol is a home-centric MSI:

* each line has a **home node** (sharded by line address across
  ``config.num_homes`` homes) holding the directory entry —
  ``U``/``S``/``M`` plus sharer set, owner, and a *transient* busy
  record while a transaction is outstanding;
* cores are blocking (one outstanding miss each) with M/S/I lines;
  M-hits commit locally, misses send GetS/GetM to the home;
* all data routes through the home: on a GetM to a shared line the
  home fans out Inv messages and sits in a transient state collecting
  InvAcks before granting; on a request to an M line it forwards
  (FwdGetS/FwdGetM) to the owner, who writes its dirty data back home
  (DataWB) for the home to complete the grant;
* a busy home NACKs other requesters, who retry with backoff —
  writeback races (a PutM crossing a Fwd in flight) resolve because
  the home accepts the PutM's data to complete the pending grant;
* dirty evictions are fire-and-forget PutM-with-data.  Per-link FIFO
  makes this safe: a core's PutM always reaches the home before any
  later request it sends for the same line.

Fault-free runs are coherent by construction: the home serializes all
transitions per line, per-link FIFO keeps grants ahead of later
invalidations, so the global commit order recorded by the
:class:`~repro.memsys.recorder.Recorder` is itself a legal
serialization (the golden replay in the recorder re-checks exactly
this every run).  The per-address write-order the verifiers consume is
the commit order of writes — the directory serialization point —
exported exactly like the bus substrate.

**Liveness under faults** is the interesting part: dropped or
reordered messages would deadlock a naive protocol, so every wait has
a watchdog — requesters re-issue timed-out transactions, the home
force-completes transactions whose InvAcks never arrive, and a
forwarded request that the owner never answers falls back to (possibly
stale) memory after a retry cap.  Each forced recovery is counted in
:class:`DirectoryStats` and is provably zero in fault-free runs; under
injection the recoveries convert liveness faults into classifiable
safety effects for the latency oracle.

Message-level fault sites (see :mod:`repro.memsys.faults`): drop /
duplicate / delay / reorder on every link, ``STALE_SHARER`` at the
invalidation fan-out, ``DROPPED_INV_ACK`` at ack send,
``DIR_STATE_CORRUPT`` at request processing, ``WB_RACE_CORRUPT`` on
writeback data, plus the datapath sites (``DROPPED_WRITE`` /
``CORRUPTED_VALUE``) at store commit for parity with the bus.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.core.types import INITIAL
from repro.memsys.cache import Cache, CacheLine
from repro.memsys.faults import FaultConfig, FaultInjector, FaultKind
from repro.memsys.interconnect import (
    Endpoint,
    Interconnect,
    Message,
    MessageType,
)
from repro.memsys.memory import MainMemory
from repro.memsys.processor import Processor, ScriptKind, ScriptOp
from repro.memsys.protocol import LineState
from repro.memsys.recorder import Recorder, RunResult
from repro.memsys.system import SystemConfig
from repro.util.rng import make_rng

#: Ticks a requester waits for any response before re-issuing.  Must
#: exceed the home's worst-case forced-grant latency (forward retries
#: plus the busy watchdog, ~3x BUSY_TIMEOUT) or requesters re-issue
#: while their grant is in flight, the late grant is dropped as stale,
#: and the home is left recording an owner that holds nothing — a
#: NACK-storm livelock under contention.
REQUEST_TIMEOUT = 160
#: Ticks the home lets a transient transaction age before forcing it.
BUSY_TIMEOUT = 40
#: Forward attempts before the home gives up on the owner.
FORWARD_RETRY_CAP = 2
#: Ticks the home defers a request from its recorded owner before
#: concluding the grant (or the owner's PutM) was lost.
OWNER_DEFER_TIMEOUT = 60


class DirState(enum.Enum):
    UNCACHED = "U"
    SHARED = "S"
    MODIFIED = "M"


@dataclass
class PendingTxn:
    """The home's transient state for one in-flight transaction."""

    kind: str  # "inv" | "fwd-gets" | "fwd-getm"
    requester: int
    txn_id: int
    base: int
    awaiting: set[int] = field(default_factory=set)
    started: int = 0
    fwd_retries: int = 0
    owner: int | None = None  # forward target, for fwd-* kinds


@dataclass
class DirectoryEntry:
    """Directory state for one memory line."""

    state: DirState = DirState.UNCACHED
    sharers: set[int] = field(default_factory=set)
    owner: int | None = None
    busy: PendingTxn | None = None
    defer_since: int | None = None


@dataclass
class DirectoryStats:
    requests: int = 0
    nacks: int = 0
    invalidations_sent: int = 0
    forwards: int = 0
    writebacks_received: int = 0
    core_retries: int = 0
    stale_messages_dropped: int = 0
    # Forced-progress recoveries — provably zero in fault-free runs;
    # nonzero means a watchdog converted a liveness fault into a
    # (classifiable) safety effect.
    forced_inv_completions: int = 0
    forced_stale_serves: int = 0
    forced_owner_clears: int = 0
    request_timeouts: int = 0

    @property
    def forced_total(self) -> int:
        return (
            self.forced_inv_completions
            + self.forced_stale_serves
            + self.forced_owner_clears
            + self.request_timeouts
        )


@dataclass
class CoreTxn:
    """A core's one outstanding transaction."""

    kind: str  # "gets" | "getm"
    op: ScriptOp
    base: int
    txn_id: int
    issued: int
    retry_at: int | None = None  # NACK backoff: resend at this tick
    nacks: int = 0
    discard: bool = False  # an Inv overtook the grant; retry on Data


class DirectorySystem:
    """An N-core directory-coherent multiprocessor (same run() API as
    the bus system).  Only the MSI protocol is supported — the
    directory has no notion of a silent E state."""

    def __init__(
        self,
        config: SystemConfig,
        scripts: list[list[ScriptOp]],
        initial_memory: dict[int, object] | None = None,
        faults: FaultConfig | None = None,
        monitor=None,
    ):
        if len(scripts) != config.num_processors:
            raise ValueError(
                f"{config.num_processors} processors but {len(scripts)} scripts"
            )
        if config.protocol not in ("MSI",):
            raise ValueError(
                f"directory substrate supports protocol MSI, not "
                f"{config.protocol!r}"
            )
        self.config = config
        self.num_homes = max(1, getattr(config, "num_homes", 1) or 1)
        self.memory = MainMemory(initial_memory)
        self.caches = [
            Cache(config.num_sets, config.ways, config.line_words)
            for _ in range(config.num_processors)
        ]
        self.processors = [Processor(i, s) for i, s in enumerate(scripts)]
        self.injector = FaultInjector(faults or FaultConfig.none())
        self.monitor = monitor
        self.recorder = Recorder(
            config.num_processors,
            observer=monitor.feed_op if monitor is not None else None,
            initial=initial_memory,
        )
        if monitor is not None and initial_memory:
            monitor.set_initial(dict(initial_memory))
        self.rng = make_rng(config.seed)
        self.network = Interconnect(
            getattr(config, "delay_model", "fixed:1"),
            fifo=True,
            seed=None if config.seed is None else config.seed + 1,
            injector=self.injector,
        )
        self.directory: dict[int, DirectoryEntry] = {}
        self.dir_stats = DirectoryStats()
        self.txns: list[CoreTxn | None] = [None] * config.num_processors
        self.tick = 0
        self.steps = 0
        self._next_txn_id = 0
        self._initial_snapshot = dict(initial_memory or {})
        self._rr_next = 0

    # ------------------------------------------------------------------
    # Address / routing helpers
    # ------------------------------------------------------------------
    def _line_base(self, addr: int) -> int:
        return (addr // self.config.line_words) * self.config.line_words

    def _home_of(self, base: int) -> Endpoint:
        return ("home", (base // self.config.line_words) % self.num_homes)

    def _entry(self, base: int) -> DirectoryEntry:
        return self.directory.setdefault(base, DirectoryEntry())

    def _txn_id(self) -> int:
        self._next_txn_id += 1
        return self._next_txn_id

    def _mem_line(self, base: int) -> dict[int, object]:
        return self.memory.read_line(base, self.config.line_words)

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def _quiescent(self) -> bool:
        return (
            all(p.done for p in self.processors)
            and all(t is None for t in self.txns)
            and self.network.pending() == 0
            and not any(e.busy for e in self.directory.values())
        )

    def step(self) -> bool:
        """Advance one tick; False once the system is fully quiescent."""
        if self._quiescent():
            return False
        self.tick += 1
        self.steps = self.tick
        for msg in self.network.deliver_until(self.tick):
            if msg.dst[0] == "home":
                self._home_handle(msg)
            else:
                self._core_handle(msg.dst[1], msg)
        for p in self._schedule_order():
            self._core_advance(p)
        self._check_timeouts()
        return True

    def _schedule_order(self) -> list[int]:
        ids = list(range(self.config.num_processors))
        if self.config.scheduler == "round-robin":
            k = self._rr_next % len(ids)
            self._rr_next += 1
            return ids[k:] + ids[:k]
        self.rng.shuffle(ids)
        return ids

    def _default_cap(self) -> int:
        total_ops = sum(len(p.script) for p in self.processors)
        return 2000 + 300 * total_ops

    def run(self, max_steps: int | None = None) -> RunResult:
        cap = max_steps if max_steps is not None else self._default_cap()
        while self.tick < cap and self.step():
            pass
        final = self._final_values()
        self.recorder.check_final(final, self.tick)
        execution = self.recorder.build_execution(
            initial=self._initial_snapshot, final=final
        )
        from repro.memsys.faults import corrupt_write_orders

        write_orders = corrupt_write_orders(
            self.recorder.write_orders, self.injector, self.tick
        )
        traffic = {
            "requests": self.dir_stats.requests,
            "nacks": self.dir_stats.nacks,
            "invalidations": self.dir_stats.invalidations_sent,
            "forwards": self.dir_stats.forwards,
            "writebacks": self.dir_stats.writebacks_received,
            "messages": self.network.stats.sent,
            "forced_recoveries": self.dir_stats.forced_total,
        }
        result = RunResult(
            execution=execution,
            write_orders=write_orders,
            steps=self.tick,
            bus_transactions=self.dir_stats.requests,
            bus_traffic=traffic,
            fault_events=list(self.injector.events),
            cache_stats=[vars(c.stats) for c in self.caches],
            commit_log=list(self.recorder.commit_log),
            divergences=list(self.recorder.divergences),
        )
        from repro.memsys.oracle import classify_run

        result.oracle = classify_run(result, line_words=self.config.line_words)
        return result

    # ------------------------------------------------------------------
    # Core side: issue, commit, message handling
    # ------------------------------------------------------------------
    def _core_advance(self, p: int) -> None:
        """One action for core ``p`` this tick: resend a backed-off
        request, or commit a hit, or issue a miss."""
        txn = self.txns[p]
        if txn is not None:
            if txn.retry_at is not None and self.tick >= txn.retry_at:
                self._resend(p, txn)
            return
        proc = self.processors[p]
        if proc.done:
            return
        op = proc.current()
        cache = self.caches[p]
        line = cache.find(op.addr)
        if op.kind is ScriptKind.LOAD:
            if line is not None and line.state.readable:
                cache.stats.hits += 1
                value = line.data.get(cache.offset(op.addr), INITIAL)
                self.recorder.record_load(p, op.addr, value, tick=self.tick)
                proc.advance()
                return
            cache.stats.misses += 1
            self._send_request(p, "gets", op)
            return
        # STORE / RMW need a writable (M) copy.
        if line is not None and line.state.writable:
            cache.stats.hits += 1
            self._commit_write(p, op, line)
            proc.advance()
            return
        if line is not None and line.state is LineState.SHARED:
            cache.stats.hits += 1  # upgrade, like the bus's BusUpgr
        else:
            cache.stats.misses += 1
        self._send_request(p, "getm", op)

    def _send_request(self, p: int, kind: str, op: ScriptOp) -> None:
        base = self._line_base(op.addr)
        txn = CoreTxn(
            kind=kind, op=op, base=base, txn_id=self._txn_id(), issued=self.tick
        )
        self.txns[p] = txn
        mtype = MessageType.GETS if kind == "gets" else MessageType.GETM
        self.network.send(
            Message(mtype, ("core", p), self._home_of(base), base, txn=txn.txn_id),
            self.tick,
        )

    def _resend(self, p: int, txn: CoreTxn) -> None:
        txn.txn_id = self._txn_id()
        txn.issued = self.tick
        txn.retry_at = None
        txn.discard = False
        mtype = MessageType.GETS if txn.kind == "gets" else MessageType.GETM
        self.network.send(
            Message(
                mtype, ("core", p), self._home_of(txn.base), txn.base,
                txn=txn.txn_id,
            ),
            self.tick,
        )
        self.dir_stats.core_retries += 1

    def _commit_write(self, p: int, op: ScriptOp, line: CacheLine) -> None:
        """Commit a store/RMW into an M line (datapath fault sites)."""
        cache = self.caches[p]
        off = cache.offset(op.addr)
        if op.kind is ScriptKind.STORE:
            stored = op.value
            if self.injector.fire(FaultKind.DROPPED_WRITE, self.tick, p, op.addr):
                stored = None
            elif self.injector.fire(
                FaultKind.CORRUPTED_VALUE, self.tick, p, op.addr
            ):
                stored = self.injector.corrupt(op.value)
            if stored is not None:
                line.data[off] = stored
            self.recorder.record_store(p, op.addr, op.value, tick=self.tick)
            return
        old = line.data.get(off, INITIAL)
        if op.expect is not None and old != op.expect:
            self.recorder.record_rmw(p, op.addr, old, old, tick=self.tick)
            return
        line.data[off] = op.value
        self.recorder.record_rmw(p, op.addr, old, op.value, tick=self.tick)

    def _evict_for_install(self, p: int, base: int) -> None:
        cache = self.caches[p]
        victim = cache.victim_for(base)
        if victim.valid:
            vbase = cache.base_addr(cache.set_index(base), victim.tag)
            if victim.state.dirty:
                cache.stats.writebacks += 1
                self.network.send(
                    Message(
                        MessageType.PUTM, ("core", p), self._home_of(vbase),
                        vbase, data=dict(victim.data),
                    ),
                    self.tick,
                )
            # Clean (S) evictions are silent: the directory's sharer
            # mask goes conservative-stale, which is why cores ack
            # invalidations even for lines they no longer hold.
        victim.state = LineState.INVALID
        victim.tag = -1
        victim.data = {}

    def _core_handle(self, p: int, msg: Message) -> None:
        handler = {
            MessageType.DATA: self._core_on_data,
            MessageType.NACK: self._core_on_nack,
            MessageType.INV: self._core_on_inv,
            MessageType.FWD_GETS: self._core_on_fwd,
            MessageType.FWD_GETM: self._core_on_fwd,
        }.get(msg.mtype)
        if handler is None:
            self.dir_stats.stale_messages_dropped += 1
            return
        handler(p, msg)

    def _core_on_data(self, p: int, msg: Message) -> None:
        txn = self.txns[p]
        if txn is None or msg.addr != txn.base:
            self.dir_stats.stale_messages_dropped += 1
            return
        if msg.txn != txn.txn_id:
            # A grant from a timed-out earlier attempt of this same
            # transaction.  Accept it iff it grants what we currently
            # need — the home has already recorded us as sharer/owner,
            # so dropping it would leave the directory pointing at a
            # core that holds nothing (and the protocol crawling
            # through force-clear watchdogs ever after).
            want = "shared" if txn.kind == "gets" else "modified"
            if msg.detail != want:
                self.dir_stats.stale_messages_dropped += 1
                return
        if txn.discard:
            # An Inv overtook this grant: the data is already stale.
            # Drop it and re-issue the request.
            self._resend(p, txn)
            return
        cache = self.caches[p]
        state = (
            LineState.SHARED if txn.kind == "gets" else LineState.MODIFIED
        )
        line = cache.peek(txn.base)
        if line is not None:
            line.data = dict(msg.data or {})
            line.state = state
            cache.find(txn.base)  # touch LRU
        else:
            self._evict_for_install(p, txn.base)
            line = cache.install(txn.base, state, msg.data or {})
        op = txn.op
        if txn.kind == "gets":
            value = line.data.get(cache.offset(op.addr), INITIAL)
            self.recorder.record_load(p, op.addr, value, tick=self.tick)
        else:
            self._commit_write(p, op, line)
        self.txns[p] = None
        self.processors[p].advance()

    def _core_on_nack(self, p: int, msg: Message) -> None:
        txn = self.txns[p]
        if txn is None or msg.txn != txn.txn_id or msg.addr != txn.base:
            self.dir_stats.stale_messages_dropped += 1
            return
        txn.nacks += 1
        # Small, core-skewed backoff to avoid lockstep retry storms.
        txn.retry_at = self.tick + 1 + min(txn.nacks, 5) + (p % 3)

    def _core_on_inv(self, p: int, msg: Message) -> None:
        cache = self.caches[p]
        line = cache.peek(msg.addr)
        if line is not None and line.valid:
            line.state = LineState.INVALID
            line.tag = -1
            line.data = {}
            cache.stats.invalidations_received += 1
        txn = self.txns[p]
        if txn is not None and txn.base == msg.addr:
            # A grant may be in flight behind this Inv (only possible
            # when links reorder); whatever data arrives is stale.
            txn.discard = True
        # Always ack — the directory may be conservatively tracking a
        # copy we silently evicted.
        self.network.send(
            Message(
                MessageType.INV_ACK, ("core", p), msg.src, msg.addr, txn=msg.txn
            ),
            self.tick,
        )

    def _core_on_fwd(self, p: int, msg: Message) -> None:
        cache = self.caches[p]
        line = cache.peek(msg.addr)
        if line is None or not line.valid:
            # Stale forward: our PutM is (or was) in flight; the home
            # resolves via the PutM data or its forward watchdog.
            self.dir_stats.stale_messages_dropped += 1
            return
        self.network.send(
            Message(
                MessageType.DATA_WB, ("core", p), msg.src, msg.addr,
                txn=msg.txn, data=dict(line.data),
            ),
            self.tick,
        )
        if msg.mtype is MessageType.FWD_GETS:
            line.state = LineState.SHARED
        else:
            line.state = LineState.INVALID
            line.tag = -1
            line.data = {}
            cache.stats.invalidations_received += 1

    # ------------------------------------------------------------------
    # Home side
    # ------------------------------------------------------------------
    def _home_handle(self, msg: Message) -> None:
        handler = {
            MessageType.GETS: self._home_on_request,
            MessageType.GETM: self._home_on_request,
            MessageType.INV_ACK: self._home_on_inv_ack,
            MessageType.DATA_WB: self._home_on_data_wb,
            MessageType.PUTM: self._home_on_putm,
        }.get(msg.mtype)
        if handler is None:
            self.dir_stats.stale_messages_dropped += 1
            return
        handler(msg)

    def _maybe_corrupt_entry(self, entry: DirectoryEntry, base: int) -> None:
        """DIR_STATE_CORRUPT site: bit-rot in the directory SRAM."""
        if entry.state is DirState.UNCACHED:
            return  # nothing to corrupt
        if entry.state is DirState.MODIFIED:
            if self.injector.fire(
                FaultKind.DIR_STATE_CORRUPT, self.tick, -1, base,
                detail=f"owner {entry.owner} forgotten, M entry demoted to U",
            ):
                entry.state = DirState.UNCACHED
                entry.owner = None
                entry.defer_since = None
            return
        if entry.sharers and self.injector.fire(
            FaultKind.DIR_STATE_CORRUPT, self.tick, -1, base,
            detail=f"sharer mask cleared (was {sorted(entry.sharers)})",
        ):
            entry.sharers.clear()
            entry.state = DirState.UNCACHED

    def _nack(self, requester: int, base: int, txn_id: int) -> None:
        self.dir_stats.nacks += 1
        self.network.send(
            Message(
                MessageType.NACK, self._home_of(base), ("core", requester),
                base, txn=txn_id,
            ),
            self.tick,
        )

    def _grant(
        self, base: int, requester: int, txn_id: int, shared: bool
    ) -> None:
        self.network.send(
            Message(
                MessageType.DATA, self._home_of(base), ("core", requester),
                base, txn=txn_id, data=self._mem_line(base),
                detail="shared" if shared else "modified",
            ),
            self.tick,
        )

    def _home_on_request(self, msg: Message) -> None:
        base = msg.addr
        p = msg.src[1]
        entry = self._entry(base)
        self.dir_stats.requests += 1
        self._maybe_corrupt_entry(entry, base)
        if entry.busy is not None:
            self._nack(p, base, msg.txn)
            return
        if entry.state is DirState.MODIFIED and entry.owner == p:
            # The recorded owner should never need to re-request: either
            # our grant or its PutM was lost.  Defer briefly (the PutM
            # may be in flight), then force-clear and serve memory.
            if entry.defer_since is None:
                entry.defer_since = self.tick
            if self.tick - entry.defer_since <= OWNER_DEFER_TIMEOUT:
                self._nack(p, base, msg.txn)
                return
            self.dir_stats.forced_owner_clears += 1
            entry.state = DirState.UNCACHED
            entry.owner = None
            entry.defer_since = None
        if msg.mtype is MessageType.GETS:
            if entry.state is DirState.MODIFIED:
                self.dir_stats.forwards += 1
                entry.busy = PendingTxn(
                    "fwd-gets", p, msg.txn, base, started=self.tick,
                    owner=entry.owner,
                )
                self.network.send(
                    Message(
                        MessageType.FWD_GETS, self._home_of(base),
                        ("core", entry.owner), base, txn=msg.txn,
                    ),
                    self.tick,
                )
                return
            entry.sharers.add(p)
            entry.state = DirState.SHARED
            self._grant(base, p, msg.txn, shared=True)
            return
        # GETM
        if entry.state is DirState.MODIFIED:
            self.dir_stats.forwards += 1
            entry.busy = PendingTxn(
                "fwd-getm", p, msg.txn, base, started=self.tick,
                owner=entry.owner,
            )
            self.network.send(
                Message(
                    MessageType.FWD_GETM, self._home_of(base),
                    ("core", entry.owner), base, txn=msg.txn,
                ),
                self.tick,
            )
            return
        targets = sorted(entry.sharers - {p})
        awaiting: set[int] = set()
        for q in targets:
            if self.injector.fire(
                FaultKind.STALE_SHARER, self.tick, q, base,
                detail="sharer dropped from invalidation fan-out",
            ):
                # The mask bit rotted: the directory no longer knows
                # about q, which keeps a stale readable copy.
                entry.sharers.discard(q)
                continue
            self.dir_stats.invalidations_sent += 1
            awaiting.add(q)
            self.network.send(
                Message(
                    MessageType.INV, self._home_of(base), ("core", q), base,
                    txn=msg.txn,
                ),
                self.tick,
            )
        if awaiting:
            entry.busy = PendingTxn(
                "inv", p, msg.txn, base, awaiting=awaiting, started=self.tick
            )
            return
        self._grant_modified(entry, base, p, msg.txn)

    def _grant_modified(
        self, entry: DirectoryEntry, base: int, requester: int, txn_id: int
    ) -> None:
        entry.state = DirState.MODIFIED
        entry.owner = requester
        entry.sharers = set()
        entry.busy = None
        entry.defer_since = None
        self._grant(base, requester, txn_id, shared=False)

    def _home_on_inv_ack(self, msg: Message) -> None:
        base = msg.addr
        q = msg.src[1]
        entry = self.directory.get(base)
        if entry is None or entry.busy is None or entry.busy.kind != "inv":
            self.dir_stats.stale_messages_dropped += 1
            return
        busy = entry.busy
        if q not in busy.awaiting:
            self.dir_stats.stale_messages_dropped += 1  # duplicate ack
            return
        busy.awaiting.discard(q)
        if not busy.awaiting:
            self._grant_modified(entry, base, busy.requester, busy.txn_id)

    def _writeback_data(
        self, base: int, q: int, data: dict | None, what: str
    ) -> None:
        """Write owner data back to memory unless the writeback race
        corrupts it (WB_RACE_CORRUPT site)."""
        self.dir_stats.writebacks_received += 1
        if self.injector.fire(
            FaultKind.WB_RACE_CORRUPT, self.tick, q, base,
            detail=f"{what} data discarded by writeback race",
        ):
            return
        if data:
            self.memory.write_line(base, data)

    def _complete_forward(self, entry: DirectoryEntry, base: int) -> None:
        """Finish a fwd-* transaction from (now-updated) memory."""
        busy = entry.busy
        assert busy is not None
        if busy.kind == "fwd-gets":
            sharers = {busy.requester}
            if busy.owner is not None and self.caches[busy.owner].peek(base):
                sharers.add(busy.owner)
            entry.state = DirState.SHARED
            entry.sharers = sharers
            entry.owner = None
            entry.busy = None
            entry.defer_since = None
            self._grant(base, busy.requester, busy.txn_id, shared=True)
        else:
            self._grant_modified(entry, base, busy.requester, busy.txn_id)

    def _home_on_data_wb(self, msg: Message) -> None:
        base = msg.addr
        q = msg.src[1]
        entry = self._entry(base)
        self._writeback_data(base, q, msg.data, "forwarded")
        busy = entry.busy
        if busy is not None and busy.kind.startswith("fwd") and busy.owner == q:
            self._complete_forward(entry, base)
        # Otherwise: a stale/duplicate writeback — memory was updated
        # (harmless or fault-attributable), protocol state untouched.

    def _home_on_putm(self, msg: Message) -> None:
        base = msg.addr
        q = msg.src[1]
        entry = self._entry(base)
        busy = entry.busy
        if busy is not None and busy.kind.startswith("fwd") and busy.owner == q:
            # The PutM crossed our Fwd in flight: use its data to
            # complete the pending transaction.
            self._writeback_data(base, q, msg.data, "racing PutM")
            busy.owner = None  # the evicting owner holds nothing now
            self._complete_forward(entry, base)
            return
        if entry.state is DirState.MODIFIED and entry.owner == q:
            self._writeback_data(base, q, msg.data, "PutM")
            entry.state = DirState.UNCACHED
            entry.owner = None
            entry.defer_since = None
            return
        self.dir_stats.stale_messages_dropped += 1

    # ------------------------------------------------------------------
    # Watchdogs
    # ------------------------------------------------------------------
    def _check_timeouts(self) -> None:
        for p, txn in enumerate(self.txns):
            if txn is None or txn.retry_at is not None:
                continue
            if self.tick - txn.issued > REQUEST_TIMEOUT:
                self.dir_stats.request_timeouts += 1
                self._resend(p, txn)
        for base, entry in self.directory.items():
            busy = entry.busy
            if busy is None or self.tick - busy.started <= BUSY_TIMEOUT:
                continue
            if busy.kind == "inv":
                # Acks never arrived (dropped Inv or dropped ack): force
                # the grant through; any sharer that kept its copy is
                # now incoherent — exactly the observable effect.
                self.dir_stats.forced_inv_completions += 1
                self._grant_modified(entry, base, busy.requester, busy.txn_id)
                continue
            if busy.fwd_retries < FORWARD_RETRY_CAP:
                busy.fwd_retries += 1
                busy.started = self.tick
                mtype = (
                    MessageType.FWD_GETS
                    if busy.kind == "fwd-gets"
                    else MessageType.FWD_GETM
                )
                self.network.send(
                    Message(
                        mtype, self._home_of(base), ("core", busy.owner),
                        base, txn=busy.txn_id,
                    ),
                    self.tick,
                )
                continue
            # The owner never answered: serve (possibly stale) memory.
            self.dir_stats.forced_stale_serves += 1
            self._complete_forward(entry, base)

    # ------------------------------------------------------------------
    # Post-run state
    # ------------------------------------------------------------------
    def _final_values(self) -> dict[int, object]:
        final: dict[int, object] = {}
        touched: set[int] = set()
        for h in self.recorder.histories:
            for op in h:
                touched.add(op.addr)  # type: ignore[arg-type]
        image = self.memory.snapshot()
        best_tick: dict[int, int] = {}
        for cache in self.caches:
            for si, ways in enumerate(cache.sets):
                for line in ways:
                    if not line.valid or not line.state.dirty:
                        continue
                    base = cache.base_addr(si, line.tag)
                    for off, val in line.data.items():
                        a = base + off
                        if line.lru >= best_tick.get(a, -1):
                            best_tick[a] = line.lru
                            image[a] = val
        for a in touched:
            final[a] = image.get(a, self._initial_snapshot.get(a, INITIAL))
        return final
