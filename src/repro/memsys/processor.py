"""Processors: blocking in-order executors of memory-op scripts.

A script is a list of :class:`ScriptOp`; each step the system picks a
processor and executes its next operation to completion (the atomic-bus
model).  Loads record the value they observed; stores carry their value
in the script; RMWs read-then-write atomically (used for locks).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class ScriptKind(enum.Enum):
    LOAD = "load"
    STORE = "store"
    RMW = "rmw"


@dataclass(frozen=True)
class ScriptOp:
    """One scripted operation.

    For ``STORE``, ``value`` is what to write.  For ``RMW``, ``value``
    is what to write and ``expect`` (optional) makes it conditional: the
    write only happens when the read returns ``expect`` (a test-and-set
    — the lock workloads use this).  An unconditional RMW has
    ``expect=None``.
    """

    kind: ScriptKind
    addr: int
    value: object = None
    expect: object = None


def load(addr: int) -> ScriptOp:
    return ScriptOp(ScriptKind.LOAD, addr)


def store(addr: int, value: object) -> ScriptOp:
    return ScriptOp(ScriptKind.STORE, addr, value)


def rmw(addr: int, value: object, expect: object = None) -> ScriptOp:
    return ScriptOp(ScriptKind.RMW, addr, value, expect)


class Processor:
    """Program counter over a script."""

    def __init__(self, proc_id: int, script: list[ScriptOp]):
        self.proc_id = proc_id
        self.script = list(script)
        self.pc = 0

    @property
    def done(self) -> bool:
        return self.pc >= len(self.script)

    def current(self) -> ScriptOp:
        if self.done:
            raise IndexError(f"processor {self.proc_id} has finished its script")
        return self.script[self.pc]

    def advance(self) -> None:
        self.pc += 1

    @property
    def remaining(self) -> int:
        return len(self.script) - self.pc
