"""Coherence protocol definitions: MSI and MESI state machines.

States follow the textbook snooping protocols:

* ``M`` (Modified) — exclusive dirty copy; must supply data on snoop.
* ``E`` (Exclusive, MESI only) — exclusive clean copy; silent upgrade
  to ``M`` on a local store.
* ``S`` (Shared) — clean, possibly replicated.
* ``I`` (Invalid).

The tables below give, per protocol, the snoop response of a cache
holding a line in a given state when it observes a bus transaction,
and the state a requester installs a line in after its own transaction.
Keeping the protocol as *data* lets the fault injector corrupt specific
transitions and keeps the cache controller generic.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class LineState(enum.Enum):
    MODIFIED = "M"
    EXCLUSIVE = "E"
    SHARED = "S"
    INVALID = "I"

    @property
    def readable(self) -> bool:
        return self is not LineState.INVALID

    @property
    def writable(self) -> bool:
        return self in (LineState.MODIFIED, LineState.EXCLUSIVE)

    @property
    def dirty(self) -> bool:
        return self is LineState.MODIFIED


class BusOp(enum.Enum):
    """Snooping bus transaction kinds."""

    BUS_RD = "BusRd"  # read miss: want a shared copy
    BUS_RDX = "BusRdX"  # write miss: want an exclusive copy
    BUS_UPGR = "BusUpgr"  # have S, want M (no data transfer)
    WRITEBACK = "WB"  # eviction of a dirty line


@dataclass(frozen=True)
class SnoopAction:
    """What a snooping cache does when it observes a transaction.

    ``next_state`` — the state the snooper transitions its line to;
    ``supply_data`` — whether the snooper sources the data
    (cache-to-cache transfer, also updating memory);
    """

    next_state: LineState
    supply_data: bool = False


M, E, S, I = (
    LineState.MODIFIED,
    LineState.EXCLUSIVE,
    LineState.SHARED,
    LineState.INVALID,
)


class Protocol:
    """A snooping protocol: snoop table + requester fill states."""

    name: str = "base"
    has_exclusive = False

    #: (holder state, observed bus op) -> SnoopAction
    SNOOP: dict[tuple[LineState, BusOp], SnoopAction] = {}

    def snoop(self, state: LineState, op: BusOp) -> SnoopAction:
        """Reaction of a cache holding ``state`` to a foreign ``op``."""
        return self.SNOOP.get((state, op), SnoopAction(state))

    def fill_state_after_read(self, others_have_copy: bool) -> LineState:
        """State a requester installs after a BusRd."""
        return S

    def fill_state_after_write(self) -> LineState:
        """State a requester installs after a BusRdX/BusUpgr."""
        return M


class MSI(Protocol):
    """Classic 3-state invalidate protocol."""

    name = "MSI"
    has_exclusive = False

    SNOOP = {
        (M, BusOp.BUS_RD): SnoopAction(S, supply_data=True),
        (M, BusOp.BUS_RDX): SnoopAction(I, supply_data=True),
        (S, BusOp.BUS_RD): SnoopAction(S),
        (S, BusOp.BUS_RDX): SnoopAction(I),
        (S, BusOp.BUS_UPGR): SnoopAction(I),
    }

    def fill_state_after_read(self, others_have_copy: bool) -> LineState:
        return S


class MESI(Protocol):
    """4-state protocol: exclusive-clean avoids an upgrade transaction
    for private data (read-then-write sequences hit silently)."""

    name = "MESI"
    has_exclusive = True

    SNOOP = {
        (M, BusOp.BUS_RD): SnoopAction(S, supply_data=True),
        (M, BusOp.BUS_RDX): SnoopAction(I, supply_data=True),
        (E, BusOp.BUS_RD): SnoopAction(S, supply_data=True),
        (E, BusOp.BUS_RDX): SnoopAction(I, supply_data=True),
        (S, BusOp.BUS_RD): SnoopAction(S),
        (S, BusOp.BUS_RDX): SnoopAction(I),
        (S, BusOp.BUS_UPGR): SnoopAction(I),
    }

    def fill_state_after_read(self, others_have_copy: bool) -> LineState:
        return S if others_have_copy else E


def make_protocol(name: str) -> Protocol:
    """Protocol factory: ``"MSI"`` or ``"MESI"``."""
    if name.upper() == "MSI":
        return MSI()
    if name.upper() == "MESI":
        return MESI()
    raise ValueError(f"unknown protocol {name!r} (want MSI or MESI)")
