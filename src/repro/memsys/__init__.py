"""Shared-memory multiprocessor simulators feeding the verifiers.

The paper's verifiers consume *executions* — per-process operation
histories with observed values — plus, for the Section 5.2 fast path,
the order in which the memory system serialized the writes.  Real
hardware traces are not available offline, so this subpackage provides
the closest synthetic equivalents, on two substrates:

* a snooping **bus** MSI/MESI multiprocessor: set-associative caches
  (:mod:`repro.memsys.cache`), an atomic snooping bus whose transaction
  log *is* the per-address write-order (:mod:`repro.memsys.bus`);
* a split-transaction **directory** MSI multiprocessor
  (:mod:`repro.memsys.directory`): home-node-sharded directories with
  transient busy states, NACK/retry, writeback races, and a message
  interconnect with per-link FIFO/reorderable queues and seeded delay
  models (:mod:`repro.memsys.interconnect`) — the write-order is
  exported at the directory's serialization point;

plus, shared by both:

* processors running scripted workloads (:mod:`repro.memsys.processor`,
  :mod:`repro.memsys.workloads`),
* a fault library spanning architectural sites (dropped/corrupted
  writes, lost invalidations) and message-level sites (drop / dup /
  delay / reorder, stale sharer masks, directory-state and
  writeback-race corruption) — :mod:`repro.memsys.faults`,
* a recorder producing :class:`repro.core.Execution` objects,
  write-orders, and golden-replay divergences
  (:mod:`repro.memsys.recorder`),
* a **latency oracle** classifying every injection as architecturally
  visible or latent, with an independent Section 5.2 checker
  (:mod:`repro.memsys.oracle`),
* ground-truth **campaigns** sweeping (site × substrate × delay model)
  cells through the batch engine and holding the verifier to the
  visible ⇒ VIOLATED / latent ⇒ HOLDS contract
  (:mod:`repro.memsys.campaign`).

Fault-free runs are coherent by construction on both substrates; the
test-suite verifies that, and verifies that injected faults the oracle
proves visible produce violations the verifiers catch — the
error-detection use case motivating the paper.
"""

from repro.memsys.system import MultiprocessorSystem, SystemConfig
from repro.memsys.directory import DirectorySystem
from repro.memsys.faults import (
    FaultConfig,
    FaultKind,
    FaultSpec,
    supported_faults,
)
from repro.memsys.interconnect import Interconnect, Message, make_delay_model
from repro.memsys.campaign import (
    SUBSTRATES,
    WORKLOADS,
    CampaignReport,
    CampaignRunCache,
    CellResult,
    campaign_table,
    run_campaign,
)
from repro.memsys.oracle import OracleReport, classify_run
from repro.memsys.workloads import (
    false_sharing_workload,
    lock_contention_workload,
    producer_consumer_workload,
    random_shared_workload,
)
from repro.memsys.recorder import Divergence, RunResult

__all__ = [
    "MultiprocessorSystem",
    "DirectorySystem",
    "SystemConfig",
    "SUBSTRATES",
    "WORKLOADS",
    "FaultConfig",
    "FaultKind",
    "FaultSpec",
    "supported_faults",
    "Interconnect",
    "Message",
    "make_delay_model",
    "CampaignReport",
    "CampaignRunCache",
    "CellResult",
    "campaign_table",
    "run_campaign",
    "OracleReport",
    "classify_run",
    "Divergence",
    "RunResult",
    "random_shared_workload",
    "producer_consumer_workload",
    "false_sharing_workload",
    "lock_contention_workload",
]
