"""A bus-based shared-memory multiprocessor simulator.

The paper's verifiers consume *executions* — per-process operation
histories with observed values — plus, for the Section 5.2 fast path,
the order in which the memory system serialized the writes.  Real
hardware traces are not available offline, so this subpackage provides
the closest synthetic equivalent: a snooping MSI/MESI multiprocessor
with

* set-associative caches (:mod:`repro.memsys.cache`),
* an atomic snooping bus whose transaction log *is* the per-address
  write-order (:mod:`repro.memsys.bus`),
* processors running scripted workloads (:mod:`repro.memsys.processor`,
  :mod:`repro.memsys.workloads`),
* protocol-level fault injection — lost invalidations, stale memory
  responses, dropped or corrupted writes (:mod:`repro.memsys.faults`),
* a recorder producing :class:`repro.core.Execution` objects and
  write-orders ready for the verifiers (:mod:`repro.memsys.recorder`).

Fault-free runs are sequentially consistent by construction (atomic
bus, blocking processors); the test-suite verifies that, and verifies
that injected protocol faults produce coherence violations the
verifiers catch — the error-detection use case motivating the paper.
"""

from repro.memsys.system import MultiprocessorSystem, SystemConfig
from repro.memsys.faults import FaultConfig, FaultKind
from repro.memsys.workloads import (
    false_sharing_workload,
    lock_contention_workload,
    producer_consumer_workload,
    random_shared_workload,
)
from repro.memsys.recorder import RunResult

__all__ = [
    "MultiprocessorSystem",
    "SystemConfig",
    "FaultConfig",
    "FaultKind",
    "RunResult",
    "random_shared_workload",
    "producer_consumer_workload",
    "false_sharing_workload",
    "lock_contention_workload",
]
