"""Fault-injection campaigns: many seeded runs, aggregated detection.

The paper motivates trace verification as an error-detection mechanism;
a single run says little because many faults are architecturally latent
(the trace stays coherent).  A campaign sweeps seeds and reports, per
fault kind, how often faults were injected, how often the verifier
caught them, and how the two substrates compare.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.engine import ResultCache, verify_many
from repro.engine.store import ResultStore
from repro.memsys.directory import DirectorySystem
from repro.memsys.faults import FaultConfig, FaultKind
from repro.memsys.system import MultiprocessorSystem, SystemConfig
from repro.memsys.workloads import random_shared_workload


@dataclass
class CampaignResult:
    """Aggregated outcome for one (fault kind, substrate) cell."""

    kind: FaultKind
    substrate: str
    runs: int = 0
    injected: int = 0
    detected: int = 0
    false_alarms: int = 0  # fault-free run flagged (must stay 0)
    #: Runs whose verification was abandoned (deadline / budget /
    #: crash quarantine) — excluded from the detection denominator.
    unknown: int = 0
    #: Runs whose verification raised; the sweep continues past them.
    errors: int = 0

    @property
    def detection_rate(self) -> float:
        return self.detected / self.injected if self.injected else 0.0

    @property
    def coverage(self) -> float:
        """Fraction of runs that produced a verdict: partial coverage
        (a failed cell in a long sweep) is visible, not silent."""
        decided = self.runs - self.unknown - self.errors
        return decided / self.runs if self.runs else 0.0

    def row(self) -> str:
        rate = f"{self.detection_rate:.0%}" if self.injected else "n/a"
        line = (
            f"{self.kind.value:<20} {self.substrate:<10} "
            f"{self.injected:>9} {self.detected:>9} {rate:>7}"
        )
        if self.unknown or self.errors:
            line += (
                f"  [coverage {self.coverage:.0%}: "
                f"{self.unknown} unknown, {self.errors} errors]"
            )
        return line


SUBSTRATES: dict[str, Callable] = {
    "bus": MultiprocessorSystem,
    "directory": DirectorySystem,
}


def run_campaign(
    kinds: list[FaultKind] | None = None,
    substrates: list[str] | None = None,
    runs_per_cell: int = 20,
    num_processors: int = 4,
    ops_per_processor: int = 40,
    num_addresses: int = 3,
    write_fraction: float = 0.35,
    fault_rate: float = 0.1,
    base_seed: int = 0,
    jobs: int = 1,
    cache: ResultCache | None = None,
    store: ResultStore | None = None,
    resilience=None,
) -> list[CampaignResult]:
    """Sweep seeds over every (fault kind, substrate) cell.

    Every run's verdict is computed via the write-order fast path (the
    deployment the paper recommends); a control run without faults is
    verified per cell and any false alarm is counted (and should never
    occur — tests assert it).

    Verification routes through the batch engine
    (:func:`repro.engine.verify_many`): each cell's runs are simulated
    first, then canonicalized and deduplicated *across the cell* before
    any solving, so fingerprint-identical per-address histories —
    which campaigns repeat constantly — are decided once.  ``jobs``
    shards the deduplicated instances over a process pool, and one
    :class:`~repro.engine.ResultCache` (created here unless supplied)
    carries hits across cells; attach a ``store``
    (:class:`~repro.engine.ResultStore`) and repeated campaigns warm-
    start from disk.

    The sweep degrades gracefully: a run whose verification is
    abandoned (under a ``resilience`` policy's deadlines) lands in the
    cell's ``unknown``, a run whose verification errored lands in
    ``errors``, and the sweep moves on — one bad cell costs its own
    coverage, never the campaign.
    """
    kinds = kinds or list(FaultKind)
    substrates = substrates or list(SUBSTRATES)
    cache = cache if cache is not None else ResultCache(store=store)
    results: list[CampaignResult] = []
    for substrate in substrates:
        system_cls = SUBSTRATES[substrate]
        for kind in kinds:
            cell = CampaignResult(kind=kind, substrate=substrate)
            runs = []
            for i in range(runs_per_cell):
                seed = base_seed + i
                scripts, init = random_shared_workload(
                    num_processors=num_processors,
                    ops_per_processor=ops_per_processor,
                    num_addresses=num_addresses,
                    write_fraction=write_fraction,
                    seed=seed,
                )
                cfg = SystemConfig(num_processors=num_processors, seed=seed)
                runs.append(system_cls(
                    cfg,
                    scripts,
                    initial_memory=init,
                    faults=FaultConfig.single(kind, seed=seed, rate=fault_rate),
                ).run())
            cell.runs += len(runs)
            outcomes = verify_many(
                [run.execution for run in runs],
                write_orders=[run.write_orders for run in runs],
                labels=[
                    f"{substrate}/{kind.value}/seed={base_seed + i}"
                    for i in range(len(runs))
                ],
                jobs=jobs,
                cache=cache,
                store=store,
                resilience=resilience,
            )
            for run, outcome in zip(runs, outcomes):
                if outcome.error is not None:
                    cell.errors += 1
                    continue
                verdict = outcome.result
                if verdict is None or verdict.unknown:
                    cell.unknown += 1
                    continue
                if run.faults_injected:
                    cell.injected += 1
                    if verdict.violated:
                        cell.detected += 1
                elif verdict.violated:
                    cell.false_alarms += 1
            results.append(cell)
    return results


def campaign_table(
    results: list[CampaignResult], cache: ResultCache | None = None
) -> str:
    """Render campaign results as the detection-rate table.

    When the sweep's shared ``cache`` is supplied, a footer reports
    aggregate cache effectiveness across the whole campaign.
    """
    lines = [
        f"{'fault kind':<20} {'substrate':<10} {'injected':>9} "
        f"{'detected':>9} {'rate':>7}"
    ]
    lines.extend(cell.row() for cell in results)
    if cache is not None:
        lines.append(f"cache: {cache.stats.summary()}")
    return "\n".join(lines)
